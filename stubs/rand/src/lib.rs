//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no crates.io access, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). Only the surface the MIRZA reproduction uses is
//! implemented: `SmallRng` (xoshiro256++ seeded by SplitMix64),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle`. All generators are deterministic for a
//! given seed, which is all the simulator requires.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of rand's
/// `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = Standard::sample(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random-access helpers on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and sampling on slices (subset: `shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ here; the real
    /// crate uses xoshiro256++ on 64-bit targets as well).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
