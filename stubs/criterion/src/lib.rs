//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Benches compile and run; each `bench_function` discards
//! `warm_up_samples` warmup executions, then times `sample_size` samples
//! and prints min/median/mean per-iteration wall-clock — enough for coarse
//! regression spotting, with none of criterion's estimators. The canonical
//! trajectory harness is `repro perfbench`, which adds stddev/p99 and
//! persists `BENCH_*.json` documents.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset: `bench_function`, `sample_size`,
/// `warm_up_time`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_samples: 1,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Criterion's warmup is time-based; the stub maps any non-zero
    /// duration to one discarded warmup sample per benchmark (zero
    /// disables warmup entirely).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_samples = usize::from(!d.is_zero());
        self
    }

    /// Runs `f` for `warm_up_samples` discarded executions, then
    /// `sample_size` timed samples, and prints min/median/mean
    /// per-iteration duration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        for _ in 0..self.warm_up_samples {
            let mut warm = Bencher::default();
            f(&mut warm);
        }
        // One sample = one closure execution; its per-iter mean is the
        // sample value, so multi-`iter` closures still average correctly.
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            total_iters += b.iters;
            if b.iters > 0 {
                samples.push(b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX));
            }
        }
        if samples.is_empty() {
            println!("bench {id:<24} no iterations");
            return self;
        }
        samples.sort();
        let min = samples[0];
        let median = median_of(&samples);
        let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1);
        println!(
            "bench {id:<24} min {min:>10.2?}  med {median:>10.2?}  mean {mean:>10.2?}  \
             ({} samples, {total_iters} iters)",
            samples.len()
        );
        self
    }

    /// Accepts (and ignores) criterion CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No-op in the stub (real criterion writes reports here).
    pub fn final_summary(&mut self) {}
}

/// Midpoint-averaged median of a sorted, non-empty slice.
fn median_of(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Times one closure invocation per `iter` call.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs and times `f` once, accumulating into the current sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Declares a bench group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_warmup_plus_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn zero_warmup_time_disables_warmup() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::ZERO)
            .sample_size(2);
        let mut runs = 0;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 2);
    }

    #[test]
    fn median_midpoint_averages_even_counts() {
        let ms = Duration::from_millis;
        assert_eq!(median_of(&[ms(1), ms(3)]), ms(2));
        assert_eq!(median_of(&[ms(1), ms(2), ms(9)]), ms(2));
    }
}
