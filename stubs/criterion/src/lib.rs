//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Benches compile and run; each `bench_function` executes
//! its closure `sample_size` times and prints a mean wall-clock duration —
//! enough for coarse regression spotting, with none of criterion's
//! statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset: `bench_function`, `sample_size`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many times each benchmark closure runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` `sample_size` times and prints the mean duration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.iters > 0 {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!("bench {id:<24} {mean:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Accepts (and ignores) criterion CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No-op in the stub (real criterion writes reports here).
    pub fn final_summary(&mut self) {}
}

/// Times one closure invocation per `iter` call.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs and times `f` once, accumulating into the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Declares a bench group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iters() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }
}
