//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements the surface the MIRZA test suite uses:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(pat in strategy, ...)`,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * integer/float range strategies, `any::<T>()`, tuple strategies,
//!   `proptest::collection::vec` and `proptest::option::of`.
//!
//! Differences from real proptest: case generation is deterministic (seeded
//! from the test name), there is no shrinking, and failures panic
//! immediately like plain `assert!`. The default case count is 64 and can be
//! overridden with the `PROPTEST_CASES` environment variable.

pub mod strategy;

pub mod test_runner;

/// Number of generated cases per property (env `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(elem, len_range)`: vectors of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(inner)`: `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The conventional glob import, mirroring real proptest.
pub mod prelude {
    /// Alias so `prop::option::of(...)` etc. resolve, as in real proptest.
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Wraps property functions into plain `#[test]`s with deterministic
/// case generation (no shrinking; failures panic immediately).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            // `#[test]` arrives as one of the captured attributes.
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::cases() {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )+
    };
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}
