//! Deterministic case-generation RNG (xoshiro256++ seeded from the test
//! name), so every property test replays the same cases on every run.

/// The generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the generator from `name` (FNV-1a hash, SplitMix64 expansion).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
