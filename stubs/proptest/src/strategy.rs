//! Value-generation strategies (subset of real proptest, no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` (uniform over the value space).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = (0u32..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b) = (1u64..=3, any::<bool>()).generate(&mut rng);
            assert!((1..=3).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let s = crate::collection::vec(0u32..10, 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = crate::option::of(0u32..10);
        let mut rng = TestRng::deterministic("opt");
        let samples: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }
}
