//! Denial-of-service analysis (Section IX): what an ALERT-storm attacker
//! costs co-running applications, analytically and in simulation.
//!
//! Run with: `cargo run --release --example dos_attack`

use mirza::core::config::MirzaConfig;
use mirza::core::rct::ResetPolicy;
use mirza::dram::address::{BankId, RegionMap, RowMapping};
use mirza::dram::time::Ps;
use mirza::dram::timing::TimingParams;
use mirza::security::dos;
use mirza::sim::prelude::*;
use mirza::workloads::attacks::RowPattern;

fn main() {
    let timing = TimingParams::ddr5_6000();

    // --- Analytic model (Table XI) -------------------------------------
    println!("analytic ACT-throughput model (Table XI):");
    println!("MINT-W   throughput   slowdown");
    for row in dos::table11(&timing) {
        println!(
            "{:<8} {:>6.1}%      {:.2}x",
            row.mint_w, row.throughput_pct, row.slowdown
        );
    }
    println!(
        "continuous ALERT storm bound: {:.1}x\n",
        dos::alert_storm_slowdown(&timing)
    );

    // --- Simulated attack (Figure 12 kernel) ---------------------------
    // 1/64-scale system: 3 benign lbm cores + 1 attacker core cycling 16
    // rows of one RCT region to keep MIRZA's queue full.
    let base = MirzaConfig::trhd_1000();
    let scaled_mirza = MirzaConfig {
        fth: base.fth / 64,
        ..base
    };
    let mut cfg = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: scaled_mirza,
            policy: ResetPolicy::Safe,
        },
        400_000,
    );
    cfg.cores = 4;
    cfg.geometry.rows_per_bank = 2048;
    cfg.t_refw = Some(Ps::from_ms(32) / 64);
    cfg.llc_sets = 256;
    cfg.footprint_divisor = 64;

    let geom = cfg.geometry;
    let mapping = RowMapping::new(base.mapping, geom.rows_per_bank, geom.subarrays_per_bank);
    let regions = RegionMap::new(geom.rows_per_bank, base.regions_per_bank);
    let pattern = RowPattern::same_region(&mapping, &regions, 3, 16);

    let attacked = run_with_attacker(&cfg, "lbm", BankId::new(0, 0, 0), &pattern);

    let mut solo_cfg = cfg.clone();
    solo_cfg.cores = 3;
    let solo = run_workload(&solo_cfg, "lbm");

    let rel = attacked.weighted_speedup(&solo) / solo.core_ipc.len() as f64;
    println!("simulated attack (MINT-W = {}):", base.mint_w);
    println!(
        "  benign throughput under attack: {:.1}% of solo ({}x slowdown)",
        100.0 * rel,
        (1.0 / rel * 100.0).round() / 100.0
    );
    println!(
        "  ALERT rate: {:.1} per 100 tREFI  (solo: {:.2})",
        attacked.alerts_per_100_trefi(),
        solo.alerts_per_100_trefi()
    );
    println!(
        "  analytic bound for W=12: {:.2}x",
        dos::mirza_attack_slowdown(&timing, base.mint_w)
    );
}
