//! Workload study: characterize a handful of Table-IV workloads (MPKI,
//! ACT-PKI, bus utilization, ACTs/subarray) and compare MIRZA's filtering
//! effectiveness under the two row-to-subarray mappings.
//!
//! Run with: `cargo run --release --example workload_study`

use mirza::core::config::MirzaConfig;
use mirza::core::rct::ResetPolicy;
use mirza::dram::address::MappingScheme;
use mirza::sim::prelude::*;

fn scaled(mit: MitigationConfig) -> SimConfig {
    // A 1/64-scale setup (see DESIGN.md): 2048-row banks, 0.5 ms tREFW,
    // 256 KB LLC, footprints/64 — keeps per-window proportions.
    let mut cfg = SimConfig::new(mit, 400_000);
    cfg.geometry.rows_per_bank = 2048;
    cfg.t_refw = Some(mirza::dram::time::Ps::from_ms(32) / 64);
    cfg.llc_sets = 256;
    cfg.footprint_divisor = 64;
    cfg
}

fn main() {
    let workloads = ["lbm", "fotonik3d", "bc", "xz", "mix_1"];

    println!("workload characteristics (1/64 scale):");
    println!("workload     MPKI   ACT-PKI   bus%   ACT/SA per window");
    for w in workloads {
        let r = run_workload(&scaled(MitigationConfig::None), w);
        let (mean, sd) = r.acts_per_subarray_per_trefw();
        println!(
            "{w:<12} {:>5.1} {:>8.1} {:>6.1}   {mean:>5.0} +- {sd:.0}",
            r.mpki(),
            r.act_pki(),
            r.bus_utilization_pct()
        );
    }

    println!("\nCGF filtering: sequential vs strided R2SA (FTH = 1500/64):");
    println!("workload     sequential   strided");
    for w in workloads {
        let mut filtered = Vec::new();
        for mapping in [MappingScheme::Sequential, MappingScheme::Strided] {
            let cfg = MirzaConfig {
                fth: 1500 / 64,
                mapping,
                ..MirzaConfig::trhd_1000()
            };
            let r = run_workload(
                &scaled(MitigationConfig::Mirza {
                    cfg,
                    policy: ResetPolicy::Safe,
                }),
                w,
            );
            let m = r.mitigation;
            filtered.push(100.0 * m.acts_filtered as f64 / m.acts_observed.max(1) as f64);
        }
        println!("{w:<12} {:>9.1}%   {:>6.1}%", filtered[0], filtered[1]);
    }
    println!("\n(strided spreads page locality over all RCT counters, so far");
    println!("more ACTs stay below the filtering threshold — Table VI's insight)");
}
