//! Attack analysis: replay Rowhammer patterns against MIRZA and the
//! baselines, and compare the measured worst case against the Section-VI
//! analytic bounds.
//!
//! Run with: `cargo run --release --example attack_analysis`

use mirza::core::config::MirzaConfig;
use mirza::core::mirza::Mirza;
use mirza::dram::geometry::Geometry;
use mirza::dram::mitigation::Mitigator;
use mirza::dram::timing::TimingParams;
use mirza::security::montecarlo::run_hammer;
use mirza::trackers::prac::PracMoat;
use mirza::trackers::trr::Trr;
use mirza::workloads::attacks::RowPattern;

fn main() {
    let geom = Geometry::ddr5_32gb();
    let timing = TimingParams::ddr5_6000();
    let one_window = u64::from(geom.refs_per_full_walk()); // 8192 REFs = 32 ms

    println!("pattern            tracker      max unmitigated ACTs   bound");

    // Double-sided attack against each MIRZA threshold configuration.
    for cfg in [
        MirzaConfig::trhd_500(),
        MirzaConfig::trhd_1000(),
        MirzaConfig::trhd_2000(),
    ] {
        let mut m = Mirza::new(cfg, &geom, 7);
        let mapping = *m.mapping().expect("MIRZA exposes its mapping");
        let mut p = RowPattern::double_sided(&mapping, 5_000);
        let out = run_hammer(&mut m, &geom, &timing, 0, &mut p, one_window);
        println!(
            "double-sided       mirza-{:<5}  {:>8} ({} alerts)    < {}",
            cfg.target_trhd,
            out.max_unmitigated_acts,
            out.alerts,
            cfg.safe_trhd()
        );
        assert!(out.max_unmitigated_acts < cfg.safe_trhd());
    }

    // The CGF-evading same-region pattern (Figure 12 kernel).
    {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom, 13);
        let mapping = *m.mapping().expect("mapping");
        let regions = *m.rct().expect("rct").regions();
        let mut p = RowPattern::same_region(&mapping, &regions, 3, 8);
        let out = run_hammer(&mut m, &geom, &timing, 0, &mut p, one_window);
        println!(
            "same-region (x8)   mirza-1000   {:>8} ({} alerts)    < {}",
            out.max_unmitigated_acts,
            out.alerts,
            cfg.safe_trhd()
        );
    }

    // PRAC/MOAT: tight reactive bound.
    {
        let mut p = PracMoat::for_trhd(1000, &geom);
        let mut pat = RowPattern::single_sided(4_242);
        let out = run_hammer(&mut p, &geom, &timing, 0, &mut pat, one_window);
        println!(
            "single-sided       prac-moat    {:>8} ({} alerts)    ~ ATH+4",
            out.max_unmitigated_acts, out.alerts
        );
    }

    // TRR succumbs to a Blacksmith-style decoy flood.
    {
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8);
        }
        rows.push(20_001);
        rows.push(20_003);
        let mut t = Trr::ddr4_like(&geom);
        let mut pat = RowPattern::circular(rows);
        let out = run_hammer(&mut t, &geom, &timing, 0, &mut pat, 2 * one_window);
        println!(
            "decoy flood        trr          {:>8} -> bit flips below TRHD 4.8K ({})",
            out.max_unmitigated_acts,
            if out.max_unmitigated_acts > 4800 {
                "BROKEN"
            } else {
                "held"
            }
        );
    }
}
