//! Quickstart: build a MIRZA-protected DDR5 sub-channel, drive it by hand,
//! and then let the full-system simulator measure the overhead on a real
//! workload.
//!
//! Run with: `cargo run --release --example quickstart`

use mirza::core::config::MirzaConfig;
use mirza::core::mirza::Mirza;
use mirza::dram::prelude::*;
use mirza::sim::prelude::*;

fn main() {
    // --- 1. The tracker by itself -------------------------------------
    let geom = Geometry::ddr5_32gb();
    let cfg = MirzaConfig::trhd_1000(); // Table VII default: FTH=1500, W=12
    println!(
        "MIRZA @ TRHD=1K: FTH={}, MINT-W={}, {} regions/bank, {} B SRAM/bank",
        cfg.fth,
        cfg.mint_w,
        cfg.regions_per_bank,
        cfg.sram_bytes_per_bank()
    );

    let mut tracker = Mirza::new(cfg, &geom, 42);
    // A benign burst: 1000 ACTs spread over 1000 rows -> all filtered.
    for row in 0..1000 {
        tracker.on_activate(0, row * 131, Ps::ZERO);
    }
    println!(
        "benign spread: {} ACTs, {} filtered, alert={}",
        tracker.stats().acts_observed,
        tracker.stats().acts_filtered,
        tracker.alert_pending()
    );
    // A hammering burst: 4000 ACTs into one region -> ALERT.
    for i in 0..4000u32 {
        tracker.on_activate(0, (i % 4) * 128, Ps::ZERO);
    }
    println!(
        "hammer burst: alert={} (queue fills once the region exceeds FTH)",
        tracker.alert_pending()
    );
    tracker.on_rfm(true, Ps::ZERO); // the ALERT back-off RFM
    println!(
        "after back-off: {} aggressors mitigated, {} victim rows refreshed\n",
        tracker.stats().mitigations,
        tracker.stats().victim_rows_refreshed
    );

    // --- 2. The same tracker inside the full system --------------------
    // Two cores of `lbm` at a reduced scale, baseline vs MIRZA vs PRAC.
    let mut base_cfg = SimConfig::new(MitigationConfig::None, 300_000);
    base_cfg.cores = 2;
    let baseline = run_workload(&base_cfg, "lbm");

    let mut mirza_cfg = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: mirza::core::rct::ResetPolicy::Safe,
        },
        300_000,
    );
    mirza_cfg.cores = 2;
    let mirza = run_workload(&mirza_cfg, "lbm");

    let mut prac_cfg = SimConfig::new(MitigationConfig::PracAbo { trhd: 1000 }, 300_000);
    prac_cfg.cores = 2;
    let prac = run_workload(&prac_cfg, "lbm");

    println!("workload lbm (2 cores, 300K instructions each):");
    println!(
        "  baseline: IPC {:?}, {} ACTs",
        baseline
            .core_ipc
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        baseline.device.acts
    );
    println!(
        "  MIRZA:    {:+.2}% slowdown",
        mirza.slowdown_pct(&baseline)
    );
    println!(
        "  PRAC:     {:+.2}% slowdown (inflated tRP/tRC, zero ALERTs)",
        prac.slowdown_pct(&baseline)
    );
}
