//! Cross-crate integration: the full pipeline (workload generator -> cores
//! -> LLC -> MC -> DRAM -> mitigation) produces the paper's qualitative
//! orderings at reduced scale.

use mirza::core::config::MirzaConfig;
use mirza::core::rct::ResetPolicy;
use mirza::dram::time::Ps;
use mirza::sim::prelude::*;

/// 1/64-scale config (see DESIGN.md §5): keeps per-tREFW proportions.
fn scaled(mit: MitigationConfig, instr: u64) -> SimConfig {
    let mut cfg = SimConfig::new(mit, instr);
    cfg.geometry.rows_per_bank = 2048;
    cfg.t_refw = Some(Ps::from_ms(32) / 64);
    cfg.llc_sets = 256;
    cfg.footprint_divisor = 64;
    cfg.cores = 4;
    cfg
}

fn mirza_mit(trhd: u32) -> MitigationConfig {
    let base = match trhd {
        500 => MirzaConfig::trhd_500(),
        1000 => MirzaConfig::trhd_1000(),
        _ => MirzaConfig::trhd_2000(),
    };
    MitigationConfig::Mirza {
        cfg: MirzaConfig {
            fth: (base.fth / 64).max(8),
            ..base
        },
        policy: ResetPolicy::Safe,
    }
}

#[test]
fn prac_is_slower_than_mirza_on_memory_bound_workloads() {
    let instr = 400_000;
    let base = run_workload(&scaled(MitigationConfig::None, instr), "lbm");
    let mirza = run_workload(&scaled(mirza_mit(1000), instr), "lbm");
    let prac = run_workload(
        &scaled(MitigationConfig::PracAbo { trhd: 1000 }, instr),
        "lbm",
    );
    let mirza_slow = mirza.slowdown_pct(&base);
    let prac_slow = prac.slowdown_pct(&base);
    assert!(
        prac_slow > mirza_slow,
        "paper's headline: MIRZA ({mirza_slow:.2}%) beats PRAC ({prac_slow:.2}%)"
    );
    assert!(prac_slow > 0.5, "PRAC timing tax must be visible");
}

#[test]
fn mint_rfm_pays_more_refresh_power_than_mirza() {
    let instr = 400_000;
    let mint = run_workload(&scaled(MitigationConfig::MintRfm { bat: 48 }, instr), "lbm");
    let mirza = run_workload(&scaled(mirza_mit(1000), instr), "lbm");
    assert!(
        mint.refresh_power_overhead_pct() > mirza.refresh_power_overhead_pct(),
        "MINT {:.2}% vs MIRZA {:.2}%",
        mint.refresh_power_overhead_pct(),
        mirza.refresh_power_overhead_pct()
    );
    assert!(mint.device.rfms_proactive > 0);
}

#[test]
fn mirza_filters_the_overwhelming_majority_of_acts() {
    let r = run_workload(&scaled(mirza_mit(2000), 400_000), "bc");
    let m = r.mitigation;
    assert!(m.acts_observed > 0);
    let filtered = m.acts_filtered as f64 / m.acts_observed as f64;
    assert!(
        filtered > 0.8,
        "CGF should absorb most benign ACTs, got {:.1}%",
        100.0 * filtered
    );
}

#[test]
fn tighter_thresholds_cost_more() {
    let instr = 400_000;
    let base = run_workload(&scaled(MitigationConfig::None, instr), "fotonik3d");
    let s500 = run_workload(&scaled(mirza_mit(500), instr), "fotonik3d").slowdown_pct(&base);
    let s2000 = run_workload(&scaled(mirza_mit(2000), instr), "fotonik3d").slowdown_pct(&base);
    assert!(
        s500 >= s2000 - 0.05,
        "TRHD=500 ({s500:.2}%) should cost at least TRHD=2K ({s2000:.2}%)"
    );
}

#[test]
fn naive_mirza_queue_size_one_is_catastrophic() {
    let instr = 200_000;
    let base = run_workload(&scaled(MitigationConfig::None, instr), "lbm");
    let q1 = run_workload(
        &scaled(
            MitigationConfig::MirzaNaive {
                mint_w: 24,
                queue: 1,
            },
            instr,
        ),
        "lbm",
    );
    let q4 = run_workload(
        &scaled(
            MitigationConfig::MirzaNaive {
                mint_w: 24,
                queue: 4,
            },
            instr,
        ),
        "lbm",
    );
    let s1 = q1.slowdown_pct(&base);
    let s4 = q4.slowdown_pct(&base);
    assert!(
        s1 > s4,
        "Table V: buffering amortizes ALERTs (q1 {s1:.1}% vs q4 {s4:.1}%)"
    );
    assert!(s1 > 10.0, "q=1 should be dramatic, got {s1:.1}%");
}

#[test]
fn alert_rate_is_low_for_benign_workloads() {
    let r = run_workload(&scaled(mirza_mit(1000), 400_000), "xz");
    // Figure 11b: a few ALERTs per 100 tREFI at most for benign runs.
    assert!(
        r.alerts_per_100_trefi() < 50.0,
        "got {:.1}",
        r.alerts_per_100_trefi()
    );
}

#[test]
fn demand_refresh_continues_under_all_mitigations() {
    for mit in [
        MitigationConfig::None,
        mirza_mit(1000),
        MitigationConfig::PracAbo { trhd: 1000 },
        MitigationConfig::MintRfm { bat: 48 },
    ] {
        let r = run_workload(&scaled(mit, 200_000), "mcf");
        let expected_refs = r.elapsed.as_ps() / Ps::from_ns(3900).as_ps();
        assert!(
            r.device.refs as u64 * 10 >= expected_refs * 2 * 9,
            "{}: {} REFs over {} expected slots",
            r.label,
            r.device.refs,
            expected_refs * 2
        );
    }
}
