//! Paper-shape regressions: the qualitative results every figure/table
//! rests on, checked end-to-end at tiny scale so they run in CI time.

use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
use mirza_sim::config::MitigationConfig;

fn lab() -> Lab {
    Lab::new(Scale::smoke())
}

#[test]
fn figure3_shape_mint_rfm_cost_decreases_with_threshold() {
    let mut lab = lab();
    let s500 = lab.avg_slowdown(MitigationConfig::MintRfm { bat: 24 });
    let s1000 = lab.avg_slowdown(MitigationConfig::MintRfm { bat: 48 });
    let s2000 = lab.avg_slowdown(MitigationConfig::MintRfm { bat: 96 });
    assert!(
        s500 > s1000 && s1000 > s2000,
        "RFM cost must fall with BAT: {s500:.2} / {s1000:.2} / {s2000:.2}"
    );
}

#[test]
fn figure11_shape_mirza_beats_prac_and_mint() {
    let mut lab = lab();
    let mirza = lab.avg_slowdown(lab.mirza(1000));
    let prac = lab.avg_slowdown(MitigationConfig::PracAbo { trhd: 1000 });
    let mint = lab.avg_slowdown(MitigationConfig::MintRfm { bat: 48 });
    assert!(
        mirza < prac,
        "headline: MIRZA {mirza:.2}% must beat PRAC {prac:.2}%"
    );
    assert!(
        mirza < mint,
        "headline: MIRZA {mirza:.2}% must beat MINT+RFM {mint:.2}%"
    );
}

#[test]
fn figure11b_shape_prac_never_alerts_on_benign_traffic() {
    let mut lab = lab();
    for w in lab.workloads() {
        let r = lab.run(MitigationConfig::PracAbo { trhd: 1000 }, w);
        assert_eq!(
            r.device.alerts, 0,
            "{w}: benign traffic must not reach PRAC's ATH"
        );
    }
}

#[test]
fn table8_shape_mirza_mitigates_far_less_than_mint() {
    let mut lab = lab();
    let mirza_cfg = lab.mirza(1000);
    let (mut mirza_mit, mut acts) = (0u64, 0u64);
    for w in lab.workloads() {
        let r = lab.run(mirza_cfg, w);
        mirza_mit += r.mitigation.mitigations;
        acts += r.mitigation.acts_observed;
    }
    let mirza_rate = mirza_mit as f64 / acts.max(1) as f64;
    let mint_rate = 1.0 / 48.0;
    assert!(
        mirza_rate < mint_rate / 2.0,
        "MIRZA rate 1/{:.0} must be well under MINT's 1/48",
        1.0 / mirza_rate.max(1e-12)
    );
}

#[test]
fn figure13_shape_mirza_refresh_power_is_negligible() {
    let mut lab = lab();
    let mirza_cfg = lab.mirza(2000);
    for w in lab.workloads() {
        let r = lab.run(mirza_cfg, w);
        assert!(
            r.refresh_power_overhead_pct() < 2.0,
            "{w}: MIRZA refresh power should be near zero, got {:.2}%",
            r.refresh_power_overhead_pct()
        );
    }
}
