//! Reproducibility: every stochastic component is seeded, so identical
//! configurations produce bit-identical results, and different seeds
//! genuinely change the randomized components.

use mirza::core::config::MirzaConfig;
use mirza::core::rct::ResetPolicy;
use mirza::dram::time::Ps;
use mirza::sim::prelude::*;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: MirzaConfig {
                fth: 1500 / 64,
                ..MirzaConfig::trhd_1000()
            },
            policy: ResetPolicy::Safe,
        },
        200_000,
    );
    c.geometry.rows_per_bank = 2048;
    c.t_refw = Some(Ps::from_ms(32) / 64);
    c.llc_sets = 256;
    c.footprint_divisor = 64;
    c.cores = 2;
    c.seed = seed;
    c
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run_workload(&cfg(7), "mcf");
    let b = run_workload(&cfg(7), "mcf");
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.device.acts, b.device.acts);
    assert_eq!(a.device.alerts, b.device.alerts);
    assert_eq!(a.mitigation.mitigations, b.mitigation.mitigations);
    assert_eq!(a.core_ipc, b.core_ipc);
    assert_eq!(a.acts_per_subarray, b.acts_per_subarray);
}

#[test]
fn different_seeds_change_the_traffic() {
    let a = run_workload(&cfg(7), "mcf");
    let b = run_workload(&cfg(8), "mcf");
    // Same statistical workload, different realization.
    assert_ne!(
        a.acts_per_subarray, b.acts_per_subarray,
        "seed must steer the generators"
    );
}

#[test]
fn attack_harness_is_deterministic() {
    use mirza::core::mirza::Mirza;
    use mirza::dram::geometry::Geometry;
    use mirza::dram::timing::TimingParams;
    use mirza::security::montecarlo::run_hammer;
    use mirza::workloads::attacks::RowPattern;

    let geom = Geometry::ddr5_32gb();
    let timing = TimingParams::ddr5_6000();
    let run = |seed| {
        let mut m = Mirza::new(MirzaConfig::trhd_1000(), &geom, seed);
        let mut p = RowPattern::single_sided(1234);
        run_hammer(&mut m, &geom, &timing, 0, &mut p, 512)
    };
    assert_eq!(run(3), run(3));
    assert!(run(3).total_acts > 0, "harness must actually hammer");
}
