//! Cross-crate security validation: every Table-VII MIRZA configuration
//! bounds every implemented attack pattern by its Section-VI analytic
//! threshold, while the insecure designs demonstrably fail.

use mirza::core::config::MirzaConfig;
use mirza::core::mirza::Mirza;
use mirza::core::rct::ResetPolicy;
use mirza::dram::geometry::Geometry;
use mirza::dram::mitigation::Mitigator;
use mirza::dram::timing::TimingParams;
use mirza::security::montecarlo::run_hammer;
use mirza::workloads::attacks::RowPattern;

fn geom() -> Geometry {
    Geometry::ddr5_32gb()
}

fn timing() -> TimingParams {
    TimingParams::ddr5_6000()
}

/// Half a refresh window is enough to reach each attack's steady state
/// while keeping the suite fast.
const REFS: u64 = 4096;

#[test]
fn every_table7_config_bounds_double_sided() {
    for cfg in [
        MirzaConfig::trhd_500(),
        MirzaConfig::trhd_1000(),
        MirzaConfig::trhd_2000(),
        MirzaConfig::trhd_4800(),
    ] {
        let mut m = Mirza::new(cfg, &geom(), 5);
        let mapping = *m.mapping().unwrap();
        let mut p = RowPattern::double_sided(&mapping, 7_777);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut p, REFS);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "TRHD {}: {} >= {}",
            cfg.target_trhd,
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }
}

#[test]
fn every_table7_config_bounds_many_sided() {
    for cfg in [MirzaConfig::trhd_1000(), MirzaConfig::trhd_2000()] {
        let mut m = Mirza::new(cfg, &geom(), 9);
        let mapping = *m.mapping().unwrap();
        let mut p = RowPattern::many_sided(&mapping, 11, 12);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut p, REFS);
        // Per-aggressor bound is the single-sided-style bound: many-sided
        // splits the budget over 24 rows, so it lands far below even TRHD.
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "TRHD {}: {}",
            cfg.target_trhd,
            out.max_unmitigated_acts
        );
    }
}

#[test]
fn sensitivity_configs_hold_at_trhd_1000() {
    // Table IX's four (W, FTH) pairs all promise TRHD = 1K.
    for w in [4, 8, 12, 16] {
        let cfg = MirzaConfig::sensitivity_1000(w);
        let mut m = Mirza::new(cfg, &geom(), 31 + u64::from(w));
        let mapping = *m.mapping().unwrap();
        let mut p = RowPattern::double_sided(&mapping, 9_009);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut p, REFS);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd().max(1100),
            "W={w}: {} vs {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }
}

#[test]
fn unsafe_reset_policies_undercount() {
    use mirza_bench::attacks_exp::{reset_policy_attack, reset_policy_attack_early_row};
    let fth = 300;
    let eager = reset_policy_attack(ResetPolicy::Eager, fth);
    let lazy = reset_policy_attack_early_row(ResetPolicy::Lazy, fth);
    let safe = reset_policy_attack(ResetPolicy::Safe, fth)
        .max(reset_policy_attack_early_row(ResetPolicy::Safe, fth));
    assert!(eager as f64 >= 1.7 * f64::from(fth), "eager {eager}");
    assert!(lazy as f64 >= 1.7 * f64::from(fth), "lazy {lazy}");
    assert!((safe as f64) < 1.4 * f64::from(fth), "safe {safe}");
}

#[test]
fn safe_trh_equations_match_paper_structure() {
    // TRHD_safe = FTH/2 + MINT_TRHD(W) + QTH + ABO_ACTS (+1), Section VI-B.
    let cfg = MirzaConfig::trhd_1000();
    let expected = cfg.fth / 2
        + mirza::core::config::mint_tolerated_trhd(cfg.mint_w)
        + cfg.qth
        + mirza::core::config::ABO_EXTRA_ACTS
        + 1;
    assert_eq!(cfg.safe_trhd(), expected);
    assert!(cfg.safe_trhd() <= 1100, "within ~10% of the 1K target");
}
