//! The facade crate re-exports every subsystem under stable module names.

#[test]
fn facade_reexports_every_subsystem() {
    // Types from each crate are reachable through the facade.
    let _geom = mirza::dram::geometry::Geometry::ddr5_32gb();
    let _cfg = mirza::core::config::MirzaConfig::trhd_1000();
    let _mapper = mirza::memctrl::mapping::AddressMapper::mop4(_geom);
    let _cache = mirza::frontend::cache::SetAssocCache::llc_16mb();
    let _spec = mirza::workloads::spec::WorkloadSpec::by_name("lbm").unwrap();
    let _mit = mirza::sim::config::MitigationConfig::None;
    let _t11 = mirza::security::dos::table11(&mirza::dram::timing::TimingParams::ddr5_6000());
    let _trr = mirza::trackers::trr::Trr::ddr4_like(&_geom);
}

#[test]
fn headline_constants_hold() {
    // The claims the README makes must stay true.
    let cfg = mirza::core::config::MirzaConfig::trhd_1000();
    assert_eq!(cfg.sram_bytes_per_bank(), 196);
    let area = mirza::security::area::table10();
    assert!(area[0].prac_over_mirza > 40.0);
    let t11 = mirza::security::dos::table11(&mirza::dram::timing::TimingParams::ddr5_6000());
    assert!((t11[1].slowdown - 1.8).abs() < 0.05); // W=12 -> 1.8x
}
