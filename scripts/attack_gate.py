#!/usr/bin/env python3
"""Schema and coverage gate for the attack-matrix CSV artifact.

Validates ``results/attack_matrix.csv`` (or the path given) as produced by
``repro attack-matrix``:

* the header matches the pinned schema exactly (any drift fails CI so the
  artifact stays machine-consumable across PRs);
* every row has the header's arity with well-typed fields;
* ``success_prob`` lies in [0, 1] and equals successes/trials;
* ``successes <= trials`` and ``max_row_acts``/``bound`` are positive ints;
* coverage floors hold: >= 48 cells from >= 4 strategies x >= 3 schedules
  x >= 2 mitigators x >= 2 seeds.

Exit status: 0 when the gate passes, 1 on any violation, 2 on usage or
I/O errors. Standard library only.

Usage:
    scripts/attack_gate.py [results/attack_matrix.csv]
"""

import csv
import sys

EXPECTED_HEADER = [
    "strategy",
    "schedule",
    "mitigator",
    "seed",
    "trials",
    "successes",
    "success_prob",
    "max_row_acts",
    "bound",
    "total_acts",
    "alerts",
]

MIN_CELLS = 48
MIN_STRATEGIES = 4
MIN_SCHEDULES = 3
MIN_MITIGATORS = 2
MIN_SEEDS = 2


def fail(msg):
    print(f"attack_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "results/attack_matrix.csv"
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        print(f"attack_gate: cannot read {path}: {e}", file=sys.stderr)
        return 2
    if not rows:
        return fail("empty file")
    if rows[0] != EXPECTED_HEADER:
        return fail(f"header drift: {rows[0]} != {EXPECTED_HEADER}")
    cells = rows[1:]
    if len(cells) < MIN_CELLS:
        return fail(f"only {len(cells)} cells; need >= {MIN_CELLS}")

    strategies, schedules, mitigators, seeds = set(), set(), set(), set()
    for i, row in enumerate(cells, start=2):
        if len(row) != len(EXPECTED_HEADER):
            return fail(f"line {i}: {len(row)} fields, expected {len(EXPECTED_HEADER)}")
        rec = dict(zip(EXPECTED_HEADER, row))
        try:
            trials = int(rec["trials"])
            successes = int(rec["successes"])
            prob = float(rec["success_prob"])
            max_row = int(rec["max_row_acts"])
            bound = int(rec["bound"])
            int(rec["seed"])
            int(rec["total_acts"])
            int(rec["alerts"])
        except ValueError as e:
            return fail(f"line {i}: malformed numeric field: {e}")
        if trials <= 0:
            return fail(f"line {i}: non-positive trials {trials}")
        if successes > trials:
            return fail(f"line {i}: successes {successes} > trials {trials}")
        if not 0.0 <= prob <= 1.0:
            return fail(f"line {i}: success_prob {prob} outside [0, 1]")
        if abs(prob - successes / trials) > 1e-3:
            return fail(f"line {i}: success_prob {prob} != {successes}/{trials}")
        if bound <= 0:
            return fail(f"line {i}: non-positive bound {bound}")
        if successes > 0 and max_row < bound:
            return fail(f"line {i}: successes with max_row_acts {max_row} < bound {bound}")
        strategies.add(rec["strategy"])
        schedules.add(rec["schedule"])
        mitigators.add(rec["mitigator"])
        seeds.add(rec["seed"])

    for name, got, floor in [
        ("strategies", strategies, MIN_STRATEGIES),
        ("schedules", schedules, MIN_SCHEDULES),
        ("mitigators", mitigators, MIN_MITIGATORS),
        ("seeds", seeds, MIN_SEEDS),
    ]:
        if len(got) < floor:
            return fail(f"only {len(got)} {name} ({sorted(got)}); need >= {floor}")

    print(
        f"attack_gate: OK: {len(cells)} cells, {len(strategies)} strategies, "
        f"{len(schedules)} schedules, {len(mitigators)} mitigators, {len(seeds)} seeds"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
