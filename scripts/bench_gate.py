#!/usr/bin/env python3
"""Manifest-driven regression gate for the MIRZA repro harness.

Compares a freshly generated run manifest (``repro <exp> --json``) against a
committed baseline:

* the deterministic sections of every run (``config``, ``report``) must
  match exactly — integers bit-for-bit, floats to a relative tolerance that
  only forgives serialization noise;
* host-side wall-clock sections (``host_profile``) are nondeterministic and
  are checked with a generous ratio tolerance instead, so a CI runner that
  is merely slow does not fail the gate, but an order-of-magnitude
  performance cliff does.

Exit status: 0 when the gate passes, 1 on any regression, 2 on usage or
I/O errors. Standard library only.

Usage:
    scripts/bench_gate.py BASELINE.json CURRENT.json [--host-tol RATIO]
"""

import argparse
import json
import sys

# Relative tolerance for float fields in deterministic sections. The
# simulator is integer-deterministic; report floats are derived metrics.
REL_TOL = 1e-9

# Run sections that must match exactly (modulo REL_TOL on floats).
EXACT_SECTIONS = ("config", "report")


def index_runs(manifest):
    """Flatten a manifest into {(experiment, label, workload): run}."""
    out = {}
    for exp in manifest.get("experiments", []):
        name = exp.get("name", "?")
        for run in exp.get("runs", []):
            key = (name, run.get("label", "?"), run.get("workload", "?"))
            out[key] = run
    return out


def floats_close(a, b):
    if a == b:
        return True
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b))


def diff_exact(path, base, cur, out):
    """Appends one message per divergence between two JSON values."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for k, v in base.items():
            if k not in cur:
                out.append(f"{path}.{k}: missing from current")
            else:
                diff_exact(f"{path}.{k}", v, cur[k], out)
        for k in cur:
            if k not in base:
                out.append(f"{path}.{k}: missing from baseline")
    elif isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            out.append(f"{path}: array length {len(base)} != {len(cur)}")
            return
        for i, (a, b) in enumerate(zip(base, cur)):
            diff_exact(f"{path}[{i}]", a, b, out)
    elif isinstance(base, float) or isinstance(cur, float):
        if not (
            isinstance(base, (int, float))
            and isinstance(cur, (int, float))
            and not isinstance(base, bool)
            and not isinstance(cur, bool)
            and floats_close(float(base), float(cur))
        ):
            out.append(f"{path}: baseline {base!r} != current {cur!r}")
    elif base != cur:
        out.append(f"{path}: baseline {base!r} != current {cur!r}")


def check_host_profile(key, base, cur, tol, out):
    """Host timing gate: total wall-clock within a ratio band."""
    b = base.get("host_profile")
    c = cur.get("host_profile")
    if not b or not c:
        return  # profiling off in one manifest: nothing to gate
    bt = b.get("total_secs")
    ct = c.get("total_secs")
    if not bt or not ct or bt <= 0:
        return
    ratio = ct / bt
    if ratio > tol:
        out.append(
            f"{'/'.join(key)}: host time {ct:.3f}s is {ratio:.1f}x baseline "
            f"{bt:.3f}s (tolerance {tol:.1f}x)"
        )


def run_gate(baseline, current, host_tol):
    failures = []
    diff_exact("scale", baseline.get("scale"), current.get("scale"), failures)
    diff_exact("seed", baseline.get("seed"), current.get("seed"), failures)
    base_runs = index_runs(baseline)
    cur_runs = index_runs(current)
    for key, brun in base_runs.items():
        crun = cur_runs.get(key)
        if crun is None:
            failures.append(f"{'/'.join(key)}: run missing from current manifest")
            continue
        for section in EXACT_SECTIONS:
            bs, cs = brun.get(section), crun.get(section)
            if (bs is None) != (cs is None):
                failures.append(f"{'/'.join(key)}.{section}: present in only one manifest")
            elif bs is not None:
                diff_exact(f"{'/'.join(key)}.{section}", bs, cs, failures)
        if brun.get("audit_violations", 0) == 0 and crun.get("audit_violations", 0):
            failures.append(
                f"{'/'.join(key)}: {crun['audit_violations']} new protocol violation(s)"
            )
        check_host_profile(key, brun, crun, host_tol, failures)
    for key in cur_runs:
        if key not in base_runs:
            failures.append(f"{'/'.join(key)}: run missing from baseline manifest")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline manifest (JSON)")
    parser.add_argument("current", help="freshly generated manifest (JSON)")
    parser.add_argument(
        "--host-tol",
        type=float,
        default=10.0,
        metavar="RATIO",
        help="max current/baseline host wall-clock ratio (default %(default)s)",
    )
    args = parser.parse_args()
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: error: {e}", file=sys.stderr)
        return 2
    failures = run_gate(baseline, current, args.host_tol)
    runs = len(index_runs(baseline))
    if failures:
        print(f"bench_gate: FAIL — {len(failures)} regression(s) across {runs} run(s):")
        for msg in failures[:100]:
            print(f"  {msg}")
        if len(failures) > 100:
            print(f"  ... and {len(failures) - 100} more")
        return 1
    print(f"bench_gate: PASS — {runs} run(s) match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
