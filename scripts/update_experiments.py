#!/usr/bin/env python3
"""Splice measured fast-mode numbers from results/repro_fast_output.txt into
EXPERIMENTS.md (replaces the MEASURED_* placeholders).

The raw output file is not committed; regenerate it first with
`cargo run --release -p mirza-bench --bin repro -- all --fast \
 > results/repro_fast_output.txt`.

Usage: python3 scripts/update_experiments.py
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "results" / "repro_fast_output.txt"
EXP = ROOT / "EXPERIMENTS.md"


def section(title: str) -> str:
    """Returns the output block starting with `title` (up to a blank line)."""
    text = OUT.read_text()
    m = re.search(rf"^{re.escape(title)}.*?(?=\n\n)", text, re.S | re.M)
    return m.group(0) if m else ""


def grab_average_row(title: str):
    sec = section(title)
    for line in sec.splitlines():
        if line.startswith("average"):
            return line.split()
    return None


def main() -> int:
    if not OUT.exists():
        print("no repro output yet", file=sys.stderr)
        return 1
    exp = EXP.read_text()

    # Figure 11a: average row -> four slowdowns.
    row = grab_average_row("Figure 11a:")
    if row:
        exp = exp.replace(
            "MEASURED_FIG11A",
            f"MIRZA {row[1]} / {row[2]} / {row[3]} % (TRHD 500/1K/2K) vs PRAC {row[4]} %",
        )
    row = grab_average_row("Figure 11b:")
    if row:
        exp = exp.replace(
            "MEASURED_FIG11B",
            f"MIRZA {row[1]} / {row[2]} / {row[3]} ALERTs per 100 tREFI vs PRAC {row[4]}",
        )

    # Table VIII reductions.
    sec = section("Table VIII")
    if sec:
        reductions = re.findall(r"([\d.]+)x\s*$", sec, re.M)
        if len(reductions) == 3:
            exp = exp.replace(
                "MEASURED_TABLE8",
                f"{reductions[0]}x / {reductions[1]}x / {reductions[2]}x fewer",
            )

    # Table IX row summary.
    sec = section("Table IX")
    if sec:
        rows = [l.split() for l in sec.splitlines()[2:] if l.strip()]
        if rows:
            slow = " / ".join(r[2].rstrip("%") for r in rows)
            rem = " / ".join(r[3].rstrip("%") for r in rows)
            exp = exp.replace(
                "MEASURED_TABLE9",
                f"slowdown {slow} %, remaining ACTs {rem} % (W = 4/8/12/16)",
            )

    # Table VI: FTH=1500 row.
    sec = section("Table VI")
    if sec:
        for line in sec.splitlines():
            if line.startswith("1500"):
                nums = [t for t in line.split() if t.endswith("%")]
                if len(nums) == 2:
                    exp = exp.replace(
                        "MEASURED_TABLE6",
                        f"sequential {nums[0]}, strided {nums[1]} at FTH 1500",
                    )

    # Figure 13: three rows.
    sec = section("Figure 13")
    if sec:
        rows = [l.split() for l in sec.splitlines()[2:] if l.strip()]
        if len(rows) == 3:
            mint = " / ".join(r[1].rstrip("%") for r in rows)
            mirza = " / ".join(r[2].rstrip("%") for r in rows)
            exp = exp.replace(
                "MEASURED_FIG13",
                f"MINT {mint} % vs MIRZA {mirza} % (TRHD 500/1K/2K)",
            )

    # Table V: three rows, four columns each.
    sec = section("Table V")
    if sec:
        rows = [l for l in sec.splitlines() if re.match(r"^\d+\s", l)]
        if len(rows) == 3:
            exp = exp.replace(
                "MEASURED_TABLE5",
                "; ".join(
                    f"W={r.split()[0]}: " + " / ".join(r.split()[1:]) for r in rows
                ),
            )

    # Table XIII: quote the MIRZA rows.
    sec = section("Table XIII")
    if sec:
        mirza_rows = [l.split() for l in sec.splitlines() if " MIRZA" in l]
        if len(mirza_rows) == 3:
            avg = " / ".join(r[3].rstrip("%") for r in mirza_rows)
            exp = exp.replace(
                "MEASURED_TABLE13",
                f"ordering holds at every threshold; MIRZA averages {avg} %",
            )

    EXP.write_text(exp)
    remaining = exp.count("MEASURED_")
    print(f"done; {remaining} placeholders left")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
