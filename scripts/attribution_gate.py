#!/usr/bin/env python3
"""Schema, conservation and purity gate for the attribution CSV artifact.

Validates ``results/attribution.csv`` (or the path given) as produced by
``repro attribution``:

* the header matches the pinned schema exactly (any drift fails CI so the
  artifact stays machine-consumable across PRs);
* every row has the header's arity with well-typed fields;
* conservation holds exactly in integer picoseconds: the six bucket
  columns sum to ``total_stall_ps`` on every row;
* the baseline rows report (near-)zero slowdown and zero ABO/ALERT and
  RFM stall (the unprotected run issues neither);
* coverage floors hold: the baseline plus >= 4 mitigator labels, each
  over >= ``--min-workloads`` workloads (default 4, matching fast mode);
* with ``--baseline MANIFEST.json``: each baseline row's ``elapsed_ps``
  equals the matching run in the spans-free reference manifest — the
  span layer must be pure observability, so even a run recorded *with*
  spans lands on the bit-identical simulated end time.

Exit status: 0 when the gate passes, 1 on any violation, 2 on usage or
I/O errors. Standard library only.

Usage:
    scripts/attribution_gate.py [results/attribution.csv]
        [--baseline results/baseline_fast.json] [--min-workloads N]
"""

import csv
import json
import sys

EXPECTED_HEADER = [
    "label",
    "workload",
    "elapsed_ps",
    "ipc_sum",
    "slowdown_pct",
    "requests",
    "total_stall_ps",
    "queue_conflict_ps",
    "bank_timing_ps",
    "abo_alert_ps",
    "mitigative_ref_ps",
    "refresh_ps",
    "rfm_ps",
]

BUCKETS = EXPECTED_HEADER[7:]
MIN_MITIGATORS = 4


def fail(msg):
    print(f"attribution_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def baseline_elapsed(manifest_path):
    """``(workload) -> elapsed_ps`` for the baseline runs of a manifest."""
    with open(manifest_path) as f:
        doc = json.load(f)
    out = {}
    for exp in doc.get("experiments", []):
        for run in exp.get("runs", []):
            if run.get("label") == "baseline":
                report = run.get("report", {})
                out[run.get("workload")] = report.get("elapsed_ps")
    return out


def main():
    args = sys.argv[1:]
    path = "results/attribution.csv"
    manifest = None
    min_workloads = 4
    it = iter(args)
    for a in it:
        if a == "--baseline":
            manifest = next(it, None)
            if manifest is None:
                print(__doc__, file=sys.stderr)
                return 2
        elif a == "--min-workloads":
            try:
                min_workloads = int(next(it))
            except (StopIteration, ValueError):
                print(__doc__, file=sys.stderr)
                return 2
        elif a.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            path = a
    try:
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        print(f"attribution_gate: cannot read {path}: {e}", file=sys.stderr)
        return 2
    if not rows:
        return fail(f"{path} is empty")
    if rows[0] != EXPECTED_HEADER:
        return fail(f"header drift:\n  got:  {rows[0]}\n  want: {EXPECTED_HEADER}")

    per_label = {}
    parsed = []
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != len(EXPECTED_HEADER):
            return fail(f"line {lineno}: {len(row)} fields, want {len(EXPECTED_HEADER)}")
        rec = dict(zip(EXPECTED_HEADER, row))
        try:
            ints = {k: int(rec[k]) for k in ["elapsed_ps", "requests", "total_stall_ps"] + BUCKETS}
            floats = {k: float(rec[k]) for k in ("ipc_sum", "slowdown_pct")}
        except ValueError as e:
            return fail(f"line {lineno}: malformed number: {e}")
        if any(v < 0 for v in ints.values()):
            return fail(f"line {lineno}: negative count")
        if ints["requests"] == 0:
            return fail(f"line {lineno}: no requests attributed")
        if floats["ipc_sum"] <= 0:
            return fail(f"line {lineno}: non-positive ipc_sum")
        total = sum(ints[b] for b in BUCKETS)
        if total != ints["total_stall_ps"]:
            return fail(
                f"line {lineno}: conservation leak: buckets sum to {total}, "
                f"total_stall_ps is {ints['total_stall_ps']}"
            )
        if rec["label"] == "baseline":
            if abs(floats["slowdown_pct"]) > 1e-6:
                return fail(f"line {lineno}: baseline slowdown {floats['slowdown_pct']}")
            for b in ("abo_alert_ps", "rfm_ps"):
                if ints[b] != 0:
                    return fail(f"line {lineno}: baseline charged {ints[b]} ps to {b}")
        per_label.setdefault(rec["label"], set()).add(rec["workload"])
        parsed.append((lineno, rec, ints))

    if "baseline" not in per_label:
        return fail("no baseline rows")
    mitigators = sorted(set(per_label) - {"baseline"})
    if len(mitigators) < MIN_MITIGATORS:
        return fail(f"only {len(mitigators)} mitigator labels ({mitigators}), want >= {MIN_MITIGATORS}")
    for label, workloads in sorted(per_label.items()):
        if len(workloads) < min_workloads:
            return fail(f"label {label}: {len(workloads)} workloads, want >= {min_workloads}")

    if manifest is not None:
        try:
            reference = baseline_elapsed(manifest)
        except (OSError, json.JSONDecodeError) as e:
            print(f"attribution_gate: cannot read {manifest}: {e}", file=sys.stderr)
            return 2
        checked = 0
        for lineno, rec, ints in parsed:
            if rec["label"] != "baseline":
                continue
            want = reference.get(rec["workload"])
            if want is None:
                continue  # workload absent from the reference sweep
            if ints["elapsed_ps"] != want:
                return fail(
                    f"line {lineno}: baseline/{rec['workload']} elapsed_ps "
                    f"{ints['elapsed_ps']} != reference {want} — the span "
                    f"layer perturbed the simulation"
                )
            checked += 1
        if checked == 0:
            return fail(f"no baseline row overlapped the reference manifest {manifest}")
        print(f"attribution_gate: {checked} baseline row(s) match {manifest} exactly")

    n_rows = len(rows) - 1
    print(
        f"attribution_gate: OK: {n_rows} rows, {len(mitigators)} mitigators + baseline, "
        f"conservation exact on every row"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
