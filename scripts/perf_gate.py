#!/usr/bin/env python3
"""Soft performance gate over the committed ``BENCH_*.json`` trajectory.

Python twin of ``repro trajectory`` (``crates/bench/src/trajectory.rs``):
loads every ``BENCH_*.json`` under the results directory, prints the
trajectory table, and compares the two newest points target-by-target.
A positive suite or per-target median-wall-clock delta beyond the noise
threshold prints a ``PERF-REGRESSION`` line.

Points captured on different hosts or cargo profiles are never compared
(a note is printed instead): cross-machine wall-clock deltas are noise,
not signal.

Soft by default — regressions are reported but the exit status stays 0,
so a slow CI runner cannot block a merge; ``--strict`` turns any flag
into exit status 1. Exit status 2 means usage/IO errors or no parseable
bench documents when ``--strict`` is set. Standard library only.

Usage:
    scripts/perf_gate.py [RESULTS_DIR] [--threshold PCT] [--strict]
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "mirza-perfbench-v1"
# Keep in sync with trajectory::NOISE_THRESHOLD_PCT.
NOISE_THRESHOLD_PCT = 15.0


def load_docs(results_dir):
    """Parse every BENCH_*.json, sorted by (unix_time, file name)."""
    docs = []
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable bench doc {path}: {err}",
                  file=sys.stderr)
            continue
        if doc.get("schema") != SCHEMA:
            print(f"warning: skipping {path}: schema {doc.get('schema')!r}",
                  file=sys.stderr)
            continue
        docs.append((doc.get("unix_time", 0), path.name, doc))
    docs.sort(key=lambda t: (t[0], t[1]))
    return [doc for _, _, doc in docs]


def suite_median(doc):
    """Sum of per-target median wall seconds — the headline number."""
    return sum(t["wall_secs"]["median"] for t in doc.get("targets", []))


def pct(base, new):
    return 0.0 if base <= 0 else (new - base) / base * 100.0


def provenance_key(doc):
    prov = doc.get("provenance", {})
    return (json.dumps(prov.get("host"), sort_keys=True),
            prov.get("cargo_profile"))


def print_table(docs):
    print(f"{'rev':<16} {'targets':>8} {'repeats':>9} {'suite_med_s':>12} "
          f"{'delta_pct':>10} {'profile':>8} {'host':>8}")
    prev = None
    for doc in docs:
        suite = suite_median(doc)
        delta = "-" if prev is None else f"{pct(prev, suite):+.1f}%"
        prov = doc.get("provenance", {})
        host = prov.get("host", {})
        host_str = f"{host.get('os', '?')}/{host.get('arch', '?')}"
        print(f"{prov.get('git_rev', '?'):<16} {len(doc.get('targets', [])):>8} "
              f"{doc.get('repeats', 0):>9} {suite:>12.3f} {delta:>10} "
              f"{prov.get('cargo_profile', '?'):>8} {host_str:>8}")
        prev = suite


def regressions(docs, threshold):
    """PERF-REGRESSION lines comparing the two newest comparable points."""
    if len(docs) < 2:
        return []
    prev, last = docs[-2], docs[-1]
    if provenance_key(prev) != provenance_key(last):
        prev_rev = prev.get("provenance", {}).get("git_rev", "?")
        last_rev = last.get("provenance", {}).get("git_rev", "?")
        return [f"note: {prev_rev} and {last_rev} ran on different "
                "hosts/profiles; skipping comparison"]
    flags = []
    base, new = suite_median(prev), suite_median(last)
    delta = pct(base, new)
    if delta > threshold:
        flags.append(f"PERF-REGRESSION suite: {base:.3f}s -> {new:.3f}s "
                     f"({delta:+.1f}% > {threshold}%)")
    base_by_name = {t["name"]: t for t in prev.get("targets", [])}
    for t in last.get("targets", []):
        b = base_by_name.get(t["name"])
        if b is None:
            continue
        delta = pct(b["wall_secs"]["median"], t["wall_secs"]["median"])
        if delta > threshold:
            flags.append(f"PERF-REGRESSION {t['name']}: "
                         f"{b['wall_secs']['median']:.3f}s -> "
                         f"{t['wall_secs']['median']:.3f}s "
                         f"({delta:+.1f}% > {threshold}%)")
    return flags


def main():
    parser = argparse.ArgumentParser(
        description="soft perf gate over committed BENCH_*.json documents")
    parser.add_argument("results_dir", nargs="?", default="results")
    parser.add_argument("--threshold", type=float,
                        default=NOISE_THRESHOLD_PCT,
                        help="flag deltas beyond this percent "
                             f"(default {NOISE_THRESHOLD_PCT})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any PERF-REGRESSION flag")
    args = parser.parse_args()

    if not Path(args.results_dir).is_dir():
        print(f"error: no such directory: {args.results_dir}",
              file=sys.stderr)
        return 2
    docs = load_docs(args.results_dir)
    if not docs:
        print(f"no BENCH_*.json documents found in {args.results_dir}")
        return 2 if args.strict else 0
    print_table(docs)
    flags = regressions(docs, args.threshold)
    for flag in flags:
        print(flag)
    hard = [f for f in flags if f.startswith("PERF-REGRESSION")]
    if hard and not args.strict:
        print(f"(soft gate: {len(hard)} flag(s); rerun with --strict to fail)")
    return 1 if args.strict and hard else 0


if __name__ == "__main__":
    sys.exit(main())
