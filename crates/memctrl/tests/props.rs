//! Property-based tests for the memory controller: address-mapping
//! round trips and scheduler liveness/safety under arbitrary request
//! batches (the device's timing assertions are the safety oracle).

use proptest::prelude::*;

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::device::Subchannel;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::NullMitigator;
use mirza_dram::time::Ps;
use mirza_dram::timing::TimingParams;
use mirza_memctrl::controller::{McConfig, MemController};
use mirza_memctrl::mapping::AddressMapper;
use mirza_memctrl::request::{AccessKind, Request};

fn controller(bat: Option<u32>) -> MemController {
    let geom = Geometry::ddr5_32gb();
    let device = Subchannel::new(
        TimingParams::ddr5_6000(),
        geom,
        RowMapping::for_geometry(MappingScheme::Strided, &geom),
        Box::new(NullMitigator::new()),
    );
    MemController::new(
        device,
        McConfig {
            rfm_bat: bat,
            ..McConfig::default()
        },
        0,
    )
}

proptest! {
    /// MOP4 decode/encode round-trips at any line-aligned address.
    #[test]
    fn mop4_round_trip(line in 0u64..(32u64 << 30) / 64) {
        let m = AddressMapper::mop4(Geometry::ddr5_32gb());
        let pa = line * 64;
        prop_assert_eq!(m.encode(&m.decode(pa)), pa);
    }

    /// Four consecutive lines always share a bank and row (the MOP group).
    #[test]
    fn mop4_groups_of_four(line in 0u64..(32u64 << 30) / 64 / 4) {
        let m = AddressMapper::mop4(Geometry::ddr5_32gb());
        let base = m.decode(line * 4 * 64);
        for i in 1..4u64 {
            let a = m.decode((line * 4 + i) * 64);
            prop_assert_eq!(a.bank, base.bank);
            prop_assert_eq!(a.row, base.row);
        }
    }

    /// The scheduler completes every enqueued request, in any mix of reads
    /// and writes over arbitrary banks/rows, without timing violations and
    /// with non-decreasing completion validity.
    #[test]
    fn scheduler_completes_arbitrary_batches(
        reqs in proptest::collection::vec(
            (0u32..32, 0u32..2048, 0u32..64, any::<bool>(), 0u64..2_000),
            1..60
        ),
        bat in prop::option::of(4u32..64),
    ) {
        let mut mc = controller(bat);
        let mapper = AddressMapper::mop4(Geometry::ddr5_32gb());
        let mut ids = Vec::new();
        for (i, (bank, row, col, is_write, at_ns)) in reqs.iter().enumerate() {
            let addr = mirza_dram::address::DramAddr {
                bank: mirza_dram::address::BankId::new(0, 0, *bank),
                row: *row,
                col: *col,
            };
            // Sanity: the address survives the mapper (valid coordinates).
            prop_assert!(mapper.encode(&addr) < mapper.capacity());
            let id = i as u64;
            ids.push(id);
            mc.enqueue(Request {
                id,
                addr,
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
                arrival: Ps::from_ns(*at_ns),
            });
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_ms(2), &mut out);
        prop_assert_eq!(out.len(), ids.len(), "every request completes");
        prop_assert_eq!(mc.pending_requests(), 0);
        let mut done: Vec<u64> = out.iter().map(|c| c.id).collect();
        done.sort_unstable();
        prop_assert_eq!(done, ids);
        // Refresh kept running during the batch.
        prop_assert!(mc.device().stats().refs > 0);
    }
}
