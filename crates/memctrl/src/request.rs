//! Memory requests, completions and controller statistics.

use mirza_dram::address::DramAddr;
use mirza_dram::time::Ps;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read (demand fill); the requester blocks on the data.
    Read,
    /// Write-back; posted, no one waits on it.
    Write,
}

/// One cache-line request presented to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Decoded DRAM coordinates.
    pub addr: DramAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Arrival instant at the controller.
    pub arrival: Ps,
}

/// Completion record for a finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Instant the data burst finished (reads) or the write was issued.
    pub done_at: Ps,
}

/// Row-buffer outcome classification and latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McStats {
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests that found the bank precharged.
    pub row_misses: u64,
    /// Requests that had to close another row first.
    pub row_conflicts: u64,
    /// Completed read requests.
    pub reads_done: u64,
    /// Completed write requests.
    pub writes_done: u64,
    /// Sum of read latencies (arrival to data) in picoseconds.
    pub read_latency_ps: u64,
    /// ALERT back-offs serviced.
    pub alerts_serviced: u64,
    /// Proactive RFMs issued.
    pub rfms_issued: u64,
}

impl McStats {
    /// Mean read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_ps as f64 / self.reads_done as f64 / 1000.0
        }
    }

    /// Row-buffer hit rate over all classified requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_hit_rate() {
        let s = McStats {
            reads_done: 2,
            read_latency_ps: 100_000,
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency_ns(), 50.0);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(McStats::default().avg_read_latency_ns(), 0.0);
        assert_eq!(McStats::default().hit_rate(), 0.0);
    }
}
