//! Physical-address to DRAM-coordinate mapping.
//!
//! The paper uses *Minimalist Open Page* with four lines per row-bank stripe
//! (MOP4, Table III): four consecutive cache lines share a row, then the
//! stripe moves to the next sub-channel/bank, so sequential streams spread
//! over all banks while keeping short row bursts.

use mirza_dram::address::{BankId, DramAddr};
use mirza_dram::geometry::Geometry;

/// MOP-style address decoder.
///
/// Bit layout, from the cache-line address LSB upward:
/// `[mop lines] [sub-channel] [bank] [rank] [column-high] [row]`.
///
/// ```
/// use mirza_memctrl::mapping::AddressMapper;
/// use mirza_dram::geometry::Geometry;
/// let m = AddressMapper::mop4(Geometry::ddr5_32gb());
/// let a = m.decode(0);
/// let b = m.decode(64); // next line: same row, next column
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row, b.row);
/// assert_eq!(b.col, a.col + 1);
/// let c = m.decode(4 * 64); // fifth line: next sub-channel stripe
/// assert_ne!(a.bank.subch, c.bank.subch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    geom: Geometry,
    mop_lines: u32,
}

impl AddressMapper {
    /// Creates a MOP mapper with `mop_lines` consecutive lines per stripe.
    ///
    /// # Panics
    /// Panics if `mop_lines` is zero, not a power of two, or exceeds the
    /// lines per row.
    pub fn new(geom: Geometry, mop_lines: u32) -> Self {
        assert!(
            mop_lines.is_power_of_two() && mop_lines > 0,
            "MOP group must be a non-zero power of two"
        );
        assert!(
            mop_lines <= geom.lines_per_row(),
            "MOP group larger than the row"
        );
        AddressMapper { geom, mop_lines }
    }

    /// The paper's MOP4 configuration.
    pub fn mop4(geom: Geometry) -> Self {
        Self::new(geom, 4)
    }

    /// The geometry this mapper targets.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Bytes of addressable memory.
    pub fn capacity(&self) -> u64 {
        self.geom.total_bytes()
    }

    /// Decodes physical byte address `pa` into DRAM coordinates.
    ///
    /// # Panics
    /// Panics if `pa` is beyond the channel capacity.
    pub fn decode(&self, pa: u64) -> DramAddr {
        assert!(pa < self.capacity(), "address {pa:#x} out of range");
        let g = &self.geom;
        let mut line = pa / u64::from(g.line_bytes);
        let take = |v: &mut u64, n: u64| -> u64 {
            let x = *v % n;
            *v /= n;
            x
        };
        let col_low = take(&mut line, u64::from(self.mop_lines));
        let subch = take(&mut line, u64::from(g.subchannels));
        let bank = take(&mut line, u64::from(g.banks));
        let rank = take(&mut line, u64::from(g.ranks));
        let col_high = take(&mut line, u64::from(g.lines_per_row() / self.mop_lines));
        let row = take(&mut line, u64::from(g.rows_per_bank));
        debug_assert_eq!(line, 0);
        DramAddr {
            bank: BankId::new(subch as u32, rank as u32, bank as u32),
            row: row as u32,
            col: (col_high * u64::from(self.mop_lines) + col_low) as u32,
        }
    }

    /// Re-encodes DRAM coordinates back to a physical byte address
    /// (inverse of [`decode`](Self::decode)).
    pub fn encode(&self, addr: &DramAddr) -> u64 {
        let g = &self.geom;
        let col_low = u64::from(addr.col % self.mop_lines);
        let col_high = u64::from(addr.col / self.mop_lines);
        let mut line = u64::from(addr.row);
        line = line * u64::from(g.lines_per_row() / self.mop_lines) + col_high;
        line = line * u64::from(g.ranks) + u64::from(addr.bank.rank);
        line = line * u64::from(g.banks) + u64::from(addr.bank.bank);
        line = line * u64::from(g.subchannels) + u64::from(addr.bank.subch);
        line = line * u64::from(self.mop_lines) + col_low;
        line * u64::from(g.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::mop4(Geometry::ddr5_32gb())
    }

    #[test]
    fn four_lines_share_a_row_then_stripe_moves() {
        let m = mapper();
        let base = m.decode(0);
        for i in 1..4u64 {
            let a = m.decode(i * 64);
            assert_eq!(a.bank, base.bank);
            assert_eq!(a.row, base.row);
        }
        let next = m.decode(4 * 64);
        assert!(next.bank != base.bank, "stripe must move to another bank");
    }

    #[test]
    fn sequential_pages_spread_over_all_banks() {
        let m = mapper();
        let mut banks_seen = std::collections::HashSet::new();
        // One 4 KB row's worth of stripes spread across 64 stripes.
        for i in 0..1024u64 {
            let a = m.decode(i * 64 * 4); // every stripe start
            banks_seen.insert(a.bank);
        }
        assert_eq!(banks_seen.len(), 64, "2 subch x 32 banks all touched");
    }

    #[test]
    fn decode_encode_round_trip() {
        let m = mapper();
        for pa in (0..m.capacity()).step_by(64 * 7919) {
            let a = m.decode(pa);
            assert_eq!(m.encode(&a), pa, "round trip failed at {pa:#x}");
        }
    }

    #[test]
    fn decode_covers_full_row_and_column_space() {
        let m = mapper();
        let last = m.decode(m.capacity() - 64);
        assert_eq!(last.row, Geometry::ddr5_32gb().rows_per_bank - 1);
        assert_eq!(last.col, Geometry::ddr5_32gb().lines_per_row() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let m = mapper();
        let _ = m.decode(m.capacity());
    }
}
