//! # mirza-memctrl — the memory controller substrate
//!
//! FR-FCFS scheduling with a soft close-page policy ([`controller`]), the
//! MOP4 physical-address mapping of Table III ([`mapping`]), on-time
//! refresh, proactive RFM with per-bank activation counters, and the
//! MC side of the ALERT back-off protocol (180 ns prologue, precharge,
//! back-off RFM).
//!
//! ```
//! use mirza_dram::prelude::*;
//! use mirza_memctrl::prelude::*;
//!
//! let geom = Geometry::ddr5_32gb();
//! let mapping = RowMapping::for_geometry(MappingScheme::Strided, &geom);
//! let device = Subchannel::new(
//!     TimingParams::ddr5_6000(), geom, mapping,
//!     Box::new(NullMitigator::new()),
//! );
//! let mapper = AddressMapper::mop4(geom);
//! let mut mc = MemController::new(device, McConfig::default(), 0);
//! let addr = mapper.decode(0x1000);
//! assert_eq!(addr.bank.subch, 0);
//! mc.enqueue(Request { id: 1, addr, kind: AccessKind::Read, arrival: Ps::ZERO });
//! let mut done = Vec::new();
//! mc.run_until(Ps::from_us(1), &mut done);
//! assert_eq!(done.len(), 1);
//! ```

pub mod controller;
pub mod mapping;
pub mod request;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::controller::{McConfig, MemController};
    pub use crate::mapping::AddressMapper;
    pub use crate::request::{AccessKind, Completion, McStats, Request};
}
