//! The per-sub-channel memory controller: FR-FCFS scheduling with a soft
//! close-page policy, on-time refresh, proactive RFM (Bank-Activation
//!-Threshold counters) and reactive ALERT back-off servicing.

use std::collections::VecDeque;

use mirza_dram::address::BankId;
use mirza_dram::command::Command;
use mirza_dram::device::Subchannel;
use mirza_dram::mitigation::DeviceFault;
use mirza_dram::time::Ps;
use mirza_telemetry::{names, Json, StallBucket, Telemetry};

use crate::request::{AccessKind, Completion, McStats, Request};

/// Controller policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McConfig {
    /// Proactive RFM: issue an RFM once any bank accumulates this many ACTs
    /// (`None` disables proactive RFM).
    pub rfm_bat: Option<u32>,
    /// Refresh postponement budget: demand traffic may run up to this many
    /// tREFI past a due REF before refresh preempts it (DDR5 permits up to
    /// 4 postponed REFs; 0 = strict on-time refresh).
    pub postpone_refs: u32,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: Request,
    needed_act: bool,
    needed_pre: bool,
    /// When the first ACT/PRE was issued on this request's behalf — the
    /// instant it became the oldest request needing its bank. `None` for
    /// pure row hits; feeds the span layer's queue-vs-bank stall split.
    own_cmd_at: Option<Ps>,
}

/// Winning demand command with its earliest legal instant. The scheduling
/// class and arrival that decided the FR-FCFS tie-break live in
/// [`ScanEntry`] and are consumed inside the scan; only the materialized
/// command survives.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    cmd: Command,
    at: Ps,
}

/// Candidate kind codes for the scan mirror (`MemController::entries`):
/// the scan hot loop reads these packed entries instead of matching on
/// [`BankPlan`].
const KIND_RD: u8 = 0;
const KIND_WR: u8 = 1;
const KIND_ACT: u8 = 2;
const KIND_CONFLICT: u8 = 3;
const KIND_SOFTCLOSE: u8 = 4;
const KIND_IDLE: u8 = 5;
const KIND_STALE: u8 = 6;

/// One bank's scan-loop state, packed so a visit touches a single array
/// slot: candidate kind (`KIND_*`, with staleness folded in), scheduling
/// class (column > activate > precharge > soft close), the floor-free key
/// `max(local, arrival)`, and the arrival tie-break. The selection `at`
/// is `key.max(per-class shared floor)`, because
/// `max(local, floor, block, arrival, now)` factors into
/// `max(max(local, arrival), max(floor, block, now))`.
#[derive(Debug, Clone, Copy)]
struct ScanEntry {
    kind: u8,
    class: u8,
    key: Ps,
    arr: Ps,
    /// The floor-free candidate pre-packed at refresh time:
    /// `pack_cand(key, class, arr, flat)` (`u128::MAX` when no candidate).
    /// A scan visit folds the per-class floor in with one AND/OR/`max`
    /// instead of re-packing, since entries are visited many times per
    /// refresh.
    packed: u128,
}

const STALE_ENTRY: ScanEntry = ScanEntry {
    kind: KIND_STALE,
    class: u8::MAX,
    key: Ps::MAX,
    arr: Ps::MAX,
    packed: u128::MAX,
};

/// Packed scan-candidate layout: `[at:48 | class:8 | arr:48 | flat:8]`.
/// Ordering a candidate by this u128 is exactly the FR-FCFS selection rule
/// — `(at, class, arrival)` strict `<` with the lowest flat index winning
/// ties (the bank a full ascending scan would visit first). 48 bits hold
/// any real instant (2^48 ps ≈ 78 h of simulated time); arrivals saturate
/// so the SoftClose `Ps::MAX` sentinel still compares above every real one.
const PACK_MASK48: u64 = (1 << 48) - 1;
const PACK_ARR: u32 = 8;
const PACK_CLASS: u32 = 8 + 48;
const PACK_AT: u32 = 8 + 48 + 8;
/// Everything below the `at` field: `[class | arr | flat]`.
const PACK_LOW_MASK: u128 = (1u128 << PACK_AT) - 1;

#[inline]
fn pack_cand(at: Ps, class: u8, arr: Ps, flat: usize) -> u128 {
    debug_assert!(at.as_ps() <= PACK_MASK48, "instant exceeds 48-bit pack");
    debug_assert!(flat <= 0xff, "flat bank index exceeds 8-bit pack");
    (u128::from(at.as_ps()) << PACK_AT)
        | (u128::from(class) << PACK_CLASS)
        | (u128::from(arr.as_ps().min(PACK_MASK48)) << PACK_ARR)
        | flat as u128
}

/// Cached per-bank scheduling plan: what this bank's queue wants next,
/// with the *bank-local* release instant. The shared floors — rank ACT
/// window ([`Subchannel::act_floor`]), column/bus
/// ([`Subchannel::col_floor`]), global block and `now` — are applied at
/// selection time, so a plan only goes `Stale` when the bank itself is
/// mutated (a command issued to it, a request enqueued on it, or a
/// blocking command touching every bank). Staleness lives in the
/// [`ScanEntry`] kind, not here: a `KIND_STALE` entry means this plan is
/// out of date and `refresh_plan` must run before it is read.
#[derive(Debug, Clone, Copy)]
enum BankPlan {
    /// Empty queue, bank precharged: nothing to do.
    Idle,
    /// Empty queue, row open: soft close-page PRE (class 3).
    SoftClose { local: Ps },
    /// Row hit waiting in the queue (class 0).
    Hit {
        local: Ps,
        col: u32,
        write: bool,
        arrival: Ps,
    },
    /// Row conflict: PRE on behalf of the oldest request (class 2).
    Conflict { local: Ps, arrival: Ps },
    /// Bank closed: ACT for the oldest request (class 1).
    Act { local: Ps, row: u32, arrival: Ps },
}

/// Memory controller driving one [`Subchannel`].
///
/// The controller is event-driven: [`MemController::run_until`] issues every
/// command whose legal issue instant falls inside the window and returns the
/// read/write completions produced.
pub struct MemController {
    device: Subchannel,
    cfg: McConfig,
    subch: u32,
    queues: Vec<VecDeque<Queued>>,
    /// Per-bank plan cache, flat-indexed alongside `queues` — the hot
    /// state the scheduler scans instead of re-deriving every bank's
    /// candidate per pick.
    plans: Vec<BankPlan>,
    /// Bitmask words over `plans`: a set bit means the bank may hold a
    /// candidate (plan `Stale` or non-`Idle`). The scan walks set bits in
    /// ascending flat order — identical visit order to the full loop — and
    /// clears a bit when a refresh lands on `Idle`, so a quiet bank costs
    /// nothing until an enqueue or an all-bank command re-arms it.
    active: Vec<u64>,
    /// Scan mirror of `plans` for the hot loop, one slot per bank (see
    /// [`ScanEntry`]). Maintained by `refresh_plan`; staling a bank only
    /// writes the entry's kind.
    entries: Vec<ScanEntry>,
    /// Per-rank shared ACT floor (already folded with the global floor),
    /// recomputed once per scan instead of once per closed bank.
    act_floor_buf: Vec<Ps>,
    /// `geometry().banks`, cached for the flat-index → rank division.
    banks_per_rank: usize,
    /// Banks whose activation counter has crossed `cfg.rfm_bat` since the
    /// last proactive RFM — the O(1) stand-in for scanning `raa`.
    raa_armed: u32,
    /// Outstanding requests across all bank queues (see
    /// [`MemController::pending_requests`]).
    pending: usize,
    /// The already-computed next command and its instant, carried across
    /// [`MemController::run_until`] calls. Valid until a command issues,
    /// a fault hook fires, or an arriving request *wins* the incremental
    /// re-check in [`MemController::enqueue`] — losing arrivals keep it.
    cached_next: Option<(Command, Ps)>,
    /// The packed winning scan candidate (see [`pack_cand`]) behind
    /// `cached_next` when it came from the demand arm (`None` for
    /// ALERT/RFM/refresh commands). Lets `enqueue` compare a new request's
    /// candidate against the cached winner exactly instead of always
    /// rescanning: floors and `now` only move on issue, and issue drops
    /// the cache anyway.
    cached_demand: Option<u128>,
    /// Per-bank activation counters for proactive RFM (reset on RFM).
    raa: Vec<u32>,
    now: Ps,
    /// Instant the current ALERT was observed, if one is being serviced.
    alert_observed_at: Option<Ps>,
    stats: McStats,
    telemetry: Telemetry,
    /// Cached `telemetry.has_spans()` so the hot path tests one local bool
    /// instead of borrowing the recorder.
    spans: bool,
    /// Cached `telemetry.has_opportunity()`: arms the per-pass work
    /// counters and skip-gap histogram in `run_until`.
    opp: bool,
    /// Length of the current streak of row-buffer hits (for the
    /// `mc.row_hit_run` histogram; flushed when a miss/conflict breaks it).
    hit_run: u64,
}

impl std::fmt::Debug for MemController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemController")
            .field("subch", &self.subch)
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemController {
    /// Creates a controller for sub-channel index `subch` of the channel.
    pub fn new(mut device: Subchannel, cfg: McConfig, subch: u32) -> Self {
        let nbanks = device.geometry().banks_per_subchannel() as usize;
        let ranks = device.geometry().ranks as usize;
        device.set_subch_index(subch);
        let mut mc = MemController {
            cfg,
            subch,
            queues: vec![VecDeque::new(); nbanks],
            plans: vec![BankPlan::Idle; nbanks],
            active: vec![0; nbanks.div_ceil(64)],
            entries: vec![STALE_ENTRY; nbanks],
            act_floor_buf: vec![Ps::ZERO; ranks],
            banks_per_rank: 0,
            raa_armed: 0,
            pending: 0,
            cached_next: None,
            cached_demand: None,
            raa: vec![0; nbanks],
            now: Ps::ZERO,
            alert_observed_at: None,
            stats: McStats::default(),
            telemetry: Telemetry::disabled(),
            spans: false,
            opp: false,
            hit_run: 0,
            device,
        };
        mc.banks_per_rank = mc.device.geometry().banks as usize;
        mc.set_all_active();
        mc
    }

    #[inline]
    fn set_active(&mut self, flat: usize) {
        self.active[flat >> 6] |= 1 << (flat & 63);
    }

    /// Marks bank `flat`'s plan out of date and re-arms its scan bit.
    #[inline]
    fn stale_bank(&mut self, flat: usize) {
        self.entries[flat].kind = KIND_STALE;
        self.set_active(flat);
    }

    fn set_all_active(&mut self) {
        let n = self.plans.len();
        for (w, word) in self.active.iter_mut().enumerate() {
            let bits = n.saturating_sub(w * 64).min(64);
            *word = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
    }

    /// Attaches a telemetry handle (cloned down into the device and its
    /// mitigator). Both sub-channel controllers share one handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.device.set_telemetry(telemetry.clone());
        self.spans = telemetry.has_spans();
        self.opp = telemetry.has_opportunity();
        self.telemetry = telemetry;
    }

    /// Flushes end-of-run telemetry state (the trailing row-hit streak).
    pub fn finish_telemetry(&mut self) {
        if self.hit_run > 0 {
            self.telemetry.observe(names::MC_ROW_HIT_RUN, self.hit_run);
            self.hit_run = 0;
        }
    }

    /// The device this controller drives.
    pub fn device(&self) -> &Subchannel {
        &self.device
    }

    /// Fault-injection hook: forwards a state fault to the device's
    /// mitigation engine, returning whether it changed anything.
    pub fn inject_device_fault(&mut self, fault: &DeviceFault, now: Ps) -> bool {
        self.cached_next = None;
        self.device.inject_fault(fault, now)
    }

    /// Fault-injection hook: suppresses the device's ALERT assertion until
    /// device time reaches `until` (a dropped/delayed raise).
    pub fn mask_alert_until(&mut self, until: Ps) {
        self.cached_next = None;
        self.device.mask_alert_until(until);
    }

    /// Fault-injection hook: jumps the device's refresh pointer forward by
    /// `steps` REF slots without refreshing the skipped rows.
    pub fn skip_refresh_steps(&mut self, steps: u32) {
        self.cached_next = None;
        self.device.skip_refresh_steps(steps);
    }

    /// Scheduling statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The controller's current time (last command issue instant).
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Outstanding requests across all bank queues (running counter; the
    /// queue-occupancy histogram samples this on every arrival, so summing
    /// the per-bank queue lengths each time would be O(banks) on a hot
    /// path).
    pub fn pending_requests(&self) -> usize {
        self.pending
    }

    /// Enqueues a request.
    ///
    /// # Panics
    /// Panics if the request targets a different sub-channel.
    pub fn enqueue(&mut self, req: Request) {
        assert_eq!(
            req.addr.bank.subch, self.subch,
            "request routed to wrong sub-channel"
        );
        let flat = req.addr.bank.flat_in_subchannel(self.device.geometry());
        self.queues[flat].push_back(Queued {
            req,
            needed_act: false,
            needed_pre: false,
            own_cmd_at: None,
        });
        self.pending += 1;
        if self.cached_next.is_some() {
            // Floors and `now` are untouched since the cached peek (issuing
            // clears the cache), so this arrival can only change the next
            // action through its own bank's candidate. Re-plan just that
            // bank and keep the cache when the fresh candidate loses — the
            // common case, and what turns the post-arrival re-peek from a
            // full bank scan into O(1).
            let e = self.refresh_plan(flat);
            self.set_active(flat);
            if !self.cache_survives_arrival(flat, e) {
                self.cached_next = None;
            }
        } else {
            self.stale_bank(flat);
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .observe(names::MC_QUEUE_OCCUPANCY, self.pending_requests() as u64);
        }
    }

    fn bank_id(&self, flat: usize) -> BankId {
        let g = self.device.geometry();
        BankId::new(self.subch, flat as u32 / g.banks, flat as u32 % g.banks)
    }

    /// Recomputes the plan for bank `flat` from its queue and row state.
    /// Mirrors the legacy FR-FCFS walk, but stores only the bank-local
    /// release: the shared floors are layered on in `best_demand`.
    fn bank_plan(&self, flat: usize) -> BankPlan {
        let q = &self.queues[flat];
        let open = self.device.open_row_flat(flat);
        if q.is_empty() {
            // Soft close-page: close an idle open row once tRAS allows.
            return match open {
                Some(_) => BankPlan::SoftClose {
                    local: self.device.earliest_local_pre(flat).expect("row open"),
                },
                None => BankPlan::Idle,
            };
        }
        if let Some(row) = open {
            // Row hits anywhere in the queue are served first (FR-FCFS).
            if let Some(hit) = q.iter().find(|x| x.req.addr.row == row) {
                let write = matches!(hit.req.kind, AccessKind::Write);
                let local = if write {
                    self.device.earliest_local_wr(flat, row)
                } else {
                    self.device.earliest_local_rd(flat, row)
                }
                .expect("open row matches hit");
                return BankPlan::Hit {
                    local,
                    col: hit.req.addr.col,
                    write,
                    arrival: hit.req.arrival,
                };
            }
            // Conflict: close the open row for the oldest request.
            BankPlan::Conflict {
                local: self.device.earliest_local_pre(flat).expect("row open"),
                arrival: q[0].req.arrival,
            }
        } else {
            // Bank closed: activate for the oldest request.
            BankPlan::Act {
                local: self.device.earliest_local_act(flat).expect("bank closed"),
                row: q[0].req.addr.row,
                arrival: q[0].req.arrival,
            }
        }
    }

    /// Refreshes the plan *and* its structure-of-arrays scan mirror for
    /// bank `flat`. The key stores `max(local, arrival)` — the selection
    /// `at` is then a single `max` against the per-class shared floor,
    /// because `max(local, floor, block, arrival, now)` factors into
    /// `max(max(local, arrival), max(floor, block, now))`.
    #[inline]
    fn refresh_plan(&mut self, flat: usize) -> ScanEntry {
        let p = self.bank_plan(flat);
        self.plans[flat] = p;
        let (kind, class, key, arr) = match p {
            BankPlan::Idle => (KIND_IDLE, u8::MAX, Ps::MAX, Ps::MAX),
            BankPlan::SoftClose { local } => (KIND_SOFTCLOSE, 3, local, Ps::MAX),
            BankPlan::Hit {
                local,
                write,
                arrival,
                ..
            } => (
                if write { KIND_WR } else { KIND_RD },
                0,
                local.max(arrival),
                arrival,
            ),
            BankPlan::Conflict { local, arrival } => {
                (KIND_CONFLICT, 2, local.max(arrival), arrival)
            }
            BankPlan::Act { local, arrival, .. } => (KIND_ACT, 1, local.max(arrival), arrival),
        };
        let packed = if kind == KIND_IDLE {
            u128::MAX
        } else {
            pack_cand(key, class, arr, flat)
        };
        let e = ScanEntry {
            kind,
            class,
            key,
            arr,
            packed,
        };
        self.entries[flat] = e;
        e
    }

    /// Picks the best demand-side candidate (column > activate > precharge,
    /// earliest issue time first, oldest request breaking ties) from the
    /// per-bank plan cache, visiting only banks whose `active` bit is set
    /// and refreshing only banks whose state changed since the last pick.
    /// The winning [`Command`] is materialized once, after the scan.
    fn best_demand(&mut self) -> Option<Candidate> {
        // Per-class floors with the global block floor and `now` folded in,
        // indexed by kind (masked, so the lookup is provably in bounds).
        // With a single rank the shared ACT floor is uniform and lives in
        // the same table; multi-rank devices take the per-rank branch.
        let base = self.device.block_floor().max(self.now);
        for (r, f) in self.act_floor_buf.iter_mut().enumerate() {
            *f = self.device.act_floor(r).max(base);
        }
        let single_rank = self.act_floor_buf.len() == 1;
        let floors = [
            self.device.col_floor(false).max(base),
            self.device.col_floor(true).max(base),
            if single_rank {
                self.act_floor_buf[0]
            } else {
                Ps::MAX
            },
            base,
            base,
            Ps::MAX,
            Ps::MAX,
            Ps::MAX,
        ];
        // Winner fold, branchless: candidates are pre-packed at refresh
        // time (see [`ScanEntry::packed`]), so a visit folds the floor in
        // with `max(packed, floor<<AT | low)` — identical to re-packing
        // `max(key, floor)`, since the low bits match — and the selection
        // rule is then a plain u128 `min`, which compiles to compare+cmov
        // instead of the data-dependent branch chain a tuple compare
        // produces; the branches of a min-reduction are inherently
        // unpredictable.
        let floors_packed = floors.map(|f| u128::from(f.as_ps().min(PACK_MASK48)) << PACK_AT);
        let mut best: u128 = u128::MAX;
        for w in 0..self.active.len() {
            let mut word = self.active[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let flat = (w << 6) | bit;
                let mut e = self.entries[flat];
                if e.kind >= KIND_IDLE {
                    if e.kind == KIND_STALE {
                        e = self.refresh_plan(flat);
                    }
                    if e.kind >= KIND_IDLE {
                        self.active[w] &= !(1u64 << bit);
                        continue;
                    }
                }
                let floor = if single_rank || e.kind != KIND_ACT {
                    floors_packed[(e.kind & 7) as usize]
                } else {
                    u128::from(self.act_floor_buf[flat / self.banks_per_rank].as_ps()) << PACK_AT
                };
                let cand = e.packed.max(floor | (e.packed & PACK_LOW_MASK));
                best = best.min(cand);
            }
        }
        if best == u128::MAX {
            return None;
        }
        self.cached_demand = Some(best);
        let best_at = Ps::from_ps((best >> PACK_AT) as u64);
        let flat = (best & 0xff) as usize;
        let cmd = match self.plans[flat] {
            BankPlan::SoftClose { .. } | BankPlan::Conflict { .. } => Command::Pre {
                bank: self.bank_id(flat),
            },
            BankPlan::Hit { col, write, .. } => {
                let bank = self.bank_id(flat);
                if write {
                    Command::Wr { bank, col }
                } else {
                    Command::Rd { bank, col }
                }
            }
            BankPlan::Act { row, .. } => Command::Act {
                bank: self.bank_id(flat),
                row,
            },
            BankPlan::Idle => unreachable!("winner holds a candidate"),
        };
        Some(Candidate { cmd, at: best_at })
    }

    /// Whether `cached_next` still names the controller's next action after
    /// a request arrived on bank `flat` with fresh scan entry `e`.
    ///
    /// Exactness argument: between the cached peek and this arrival no
    /// command issued (issue drops the cache), so `now`, every shared
    /// floor, the ALERT latch and the RAA counters are all unchanged — a
    /// full re-peek would differ from the cached one only in bank `flat`'s
    /// candidate. It therefore suffices to rebuild that single candidate
    /// and replay the two decisions it could flip: the FR-FCFS winner
    /// comparison (same `(at, class, arrival)` tuple with the ascending-
    /// flat tie-break) and the demand-before-refresh deadline check.
    fn cache_survives_arrival(&mut self, flat: usize, e: ScanEntry) -> bool {
        // ALERT and proactive-RFM arms outrank demand entirely: no arrival
        // can preempt them, and the arrival does not change their state.
        if self.alert_observed_at.is_some() {
            return true;
        }
        if let Some(bat) = self.cfg.rfm_bat {
            if bat == 0 || self.raa_armed > 0 {
                return true;
            }
        }
        // A bank with a queued request always yields a demand candidate.
        debug_assert!(e.kind <= KIND_CONFLICT, "arrival must plan a command");
        let base = self.device.block_floor().max(self.now);
        let floor = match e.kind {
            KIND_RD => self.device.col_floor(false).max(base),
            KIND_WR => self.device.col_floor(true).max(base),
            KIND_ACT => self.device.act_floor(flat / self.banks_per_rank).max(base),
            _ => base,
        };
        let at = e.key.max(floor);
        match self.cached_demand {
            // Cached demand command: survives unless the arrival lands on
            // the winning bank itself (its plan may have changed) or the
            // fresh candidate beats the cached one under the packed
            // selection order.
            Some(winner) => {
                (winner & 0xff) as usize != flat && winner <= pack_cand(at, e.class, e.arr, flat)
            }
            // Cached refresh path (PreAll/Ref): demand preempts it only
            // strictly before the postponement deadline.
            None => {
                let deadline = self.device.next_ref_due().max(self.now)
                    + self.device.timing().t_refi * u64::from(self.cfg.postpone_refs);
                at >= deadline
            }
        }
    }

    /// The next command the controller wants to issue, with its instant.
    fn next_action(&mut self) -> Option<(Command, Ps)> {
        // Rewritten by `best_demand` when the demand arm wins; every other
        // arm leaves it cleared so `enqueue`'s re-check takes the
        // refresh-preemption branch.
        self.cached_demand = None;
        let t = self.device.timing();
        // 1. ALERT back-off has absolute priority.
        if let Some(t0) = self.alert_observed_at {
            if !self.device.all_precharged() {
                let e = self.device.earliest(&Command::PreAll)?;
                return Some((Command::PreAll, e.max(self.now)));
            }
            let e = self
                .device
                .earliest(&Command::Rfm { alert: true })
                .expect("all banks precharged");
            let at = e.max(t0 + t.t_alert_prologue).max(self.now);
            return Some((Command::Rfm { alert: true }, at));
        }
        // 2. Proactive RFM when a bank's activation counter reaches BAT.
        if let Some(bat) = self.cfg.rfm_bat {
            if bat == 0 || self.raa_armed > 0 {
                if !self.device.all_precharged() {
                    let e = self.device.earliest(&Command::PreAll)?;
                    return Some((Command::PreAll, e.max(self.now)));
                }
                let e = self
                    .device
                    .earliest(&Command::Rfm { alert: false })
                    .expect("all banks precharged");
                return Some((Command::Rfm { alert: false }, e.max(self.now)));
            }
        }
        // 3. Demand traffic until refresh is due (plus any postponement
        // budget). Postponed REFs are repaid back-to-back afterwards.
        let ref_deadline =
            self.device.next_ref_due().max(self.now) + t.t_refi * u64::from(self.cfg.postpone_refs);
        if let Some(c) = self.best_demand() {
            if c.at < ref_deadline {
                return Some((c.cmd, c.at));
            }
        }
        self.cached_demand = None;
        let ref_at = self.device.next_ref_due().max(self.now);
        // 4. Refresh path: precharge everything, then REF on time.
        if self.device.all_precharged() {
            let e = self.device.earliest(&Command::Ref).expect("precharged");
            Some((Command::Ref, e.max(ref_at)))
        } else {
            let e = self.device.earliest(&Command::PreAll)?;
            Some((Command::PreAll, e.max(self.now)))
        }
    }

    /// The next command and its instant, computed at most once per state
    /// change: the cache survives across `run_until` calls while nothing
    /// issues, arrives, or faults.
    fn peek_next(&mut self) -> (Command, Ps) {
        if let Some(n) = self.cached_next {
            return n;
        }
        let n = self
            .next_action()
            .expect("controller always has a next action (refresh fallback)");
        self.cached_next = Some(n);
        n
    }

    /// The instant of the next command this controller will issue — its
    /// contribution to the sim layer's next-event skip bound. Total: the
    /// refresh fallback guarantees a pending command at all times.
    pub fn next_event_ps(&mut self) -> Ps {
        self.peek_next().1
    }

    fn mark_all_stale(&mut self) {
        for e in &mut self.entries {
            e.kind = KIND_STALE;
        }
        self.set_all_active();
    }

    fn mark_head(&mut self, flat: usize, act: bool) {
        let spans = self.spans;
        let now = self.now;
        if let Some(head) = self.queues[flat].front_mut() {
            if act {
                head.needed_act = true;
            } else {
                head.needed_pre = true;
            }
            if spans && head.own_cmd_at.is_none() {
                head.own_cmd_at = Some(now);
            }
        }
    }

    /// Issues every command whose legal instant is at or before `t_end`,
    /// appending read/write completions to `out`.
    ///
    /// Event-driven: the next command is served from the cross-call cache
    /// ([`MemController::peek_next`]) and per-bank candidates from the plan
    /// cache, so a pass with nothing to issue costs O(1) instead of a full
    /// bank scan. With opportunity counters armed, each call is one
    /// "scheduler pass": commands issued and the gap to the next pending
    /// command past the window are recorded — the residual-waste picture
    /// the skip-ahead sim loop acts on.
    pub fn run_until(&mut self, t_end: Ps, out: &mut Vec<Completion>) {
        let opp = self.opp;
        let mut pass_cmds: u64 = 0;
        let (mut batch_reads, mut batch_writes) = (0u64, 0u64);
        let (mut batch_acts, mut batch_refs) = (0u64, 0u64);
        loop {
            let (cmd, at) = self.peek_next();
            if at > t_end {
                // Nothing issuable in the window: keep the cache for the
                // next pass.
                if opp {
                    self.telemetry
                        .observe(names::MC_OPP_SKIP_GAP_NS, (at - t_end).as_ps() / 1000);
                }
                break;
            }
            self.cached_next = None;
            pass_cmds += 1;
            self.now = at;
            self.telemetry
                .trace_line(|| trace_line(self.subch, &cmd, at));
            match cmd {
                Command::Rd { bank, col } | Command::Wr { bank, col } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    let row = self.device.open_row(bank).expect("column to open row");
                    let pos = self.queues[flat]
                        .iter()
                        .position(|x| x.req.addr.row == row && x.req.addr.col == col)
                        .expect("queued request for column command");
                    let q = self.queues[flat].remove(pos).expect("position valid");
                    self.pending -= 1;
                    let issued = self.device.issue(cmd, at);
                    self.stale_bank(flat);
                    let done = issued.data_ready.expect("column returns data time");
                    if self.spans {
                        self.telemetry.span_request(
                            self.subch,
                            flat,
                            q.req.arrival.as_ps(),
                            q.own_cmd_at.map(Ps::as_ps),
                            at.as_ps(),
                        );
                    }
                    // Row-buffer classification.
                    if q.needed_pre {
                        self.stats.row_conflicts += 1;
                    } else if q.needed_act {
                        self.stats.row_misses += 1;
                    } else {
                        self.stats.row_hits += 1;
                    }
                    if self.telemetry.is_enabled() {
                        if q.needed_pre || q.needed_act {
                            self.finish_telemetry();
                        } else {
                            self.hit_run += 1;
                        }
                    }
                    match q.req.kind {
                        AccessKind::Read => {
                            self.stats.reads_done += 1;
                            self.stats.read_latency_ps += (done - q.req.arrival).as_ps();
                            batch_reads += 1;
                            self.telemetry.observe(
                                names::MC_READ_LATENCY_NS,
                                (done - q.req.arrival).as_ps() / 1000,
                            );
                            out.push(Completion {
                                id: q.req.id,
                                done_at: done,
                            });
                        }
                        AccessKind::Write => {
                            self.stats.writes_done += 1;
                            batch_writes += 1;
                            out.push(Completion {
                                id: q.req.id,
                                done_at: at,
                            });
                        }
                    }
                }
                Command::Act { bank, .. } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    self.mark_head(flat, true);
                    self.raa[flat] += 1;
                    if self.cfg.rfm_bat == Some(self.raa[flat]) {
                        self.raa_armed += 1;
                    }
                    self.device.issue(cmd, at);
                    self.stale_bank(flat);
                    batch_acts += 1;
                }
                Command::Pre { bank } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    // Mark only when the close is on behalf of a waiting miss.
                    if !self.queues[flat].is_empty() {
                        self.mark_head(flat, false);
                    }
                    self.device.issue(cmd, at);
                    self.stale_bank(flat);
                }
                Command::PreAll => {
                    self.device.issue(cmd, at);
                    self.mark_all_stale();
                }
                Command::Ref => {
                    if self.spans {
                        // Classify the whole tRFC window by whether the
                        // mitigator piggybacked victim refreshes on this
                        // REF (TRR-style) — the delta in its counter across
                        // the issue tells us.
                        let before = self.device.mitigation_stats().ref_mitigations;
                        self.device.issue(cmd, at);
                        let bucket = if self.device.mitigation_stats().ref_mitigations > before {
                            StallBucket::MitigativeRef
                        } else {
                            StallBucket::Refresh
                        };
                        let t_rfc = self.device.timing().t_rfc;
                        self.telemetry.span_block(
                            self.subch,
                            bucket,
                            at.as_ps(),
                            (at + t_rfc).as_ps(),
                        );
                    } else {
                        self.device.issue(cmd, at);
                    }
                    self.mark_all_stale();
                    batch_refs += 1;
                }
                Command::Rfm { alert } => {
                    self.device.issue(cmd, at);
                    self.mark_all_stale();
                    if alert {
                        if let Some(t0) = self.alert_observed_at.take() {
                            let stall = at - t0;
                            self.telemetry
                                .observe(names::MC_ALERT_STALL_NS, stall.as_ps() / 1000);
                            self.telemetry.event(
                                at.as_ps(),
                                names::EV_ALERT_CLEARED,
                                &[
                                    ("subch", Json::U64(u64::from(self.subch))),
                                    ("stall_ns", Json::U64(stall.as_ps() / 1000)),
                                ],
                            );
                            if self.spans {
                                // The whole back-off — from observing
                                // ALERT_n through the recovery RFM's tRFM —
                                // is ABO stall.
                                let t_rfm = self.device.timing().t_rfm;
                                self.telemetry.span_block(
                                    self.subch,
                                    StallBucket::AboAlert,
                                    t0.as_ps(),
                                    (at + t_rfm).as_ps(),
                                );
                            }
                        }
                        self.stats.alerts_serviced += 1;
                        self.telemetry.inc(names::MC_ALERTS, 1);
                    } else {
                        self.stats.rfms_issued += 1;
                        self.telemetry.inc(names::MC_RFMS, 1);
                        self.telemetry.event(
                            at.as_ps(),
                            names::EV_RFM_ISSUED,
                            &[("subch", Json::U64(u64::from(self.subch)))],
                        );
                        if self.spans {
                            let t_rfm = self.device.timing().t_rfm;
                            self.telemetry.span_block(
                                self.subch,
                                StallBucket::Rfm,
                                at.as_ps(),
                                (at + t_rfm).as_ps(),
                            );
                        }
                        for c in &mut self.raa {
                            *c = 0;
                        }
                        self.raa_armed = 0;
                    }
                }
            }
            // Sample the ALERT line after every command.
            if self.alert_observed_at.is_none() && self.device.alert_asserted() {
                self.alert_observed_at = Some(self.now);
                self.telemetry.event(
                    self.now.as_ps(),
                    names::EV_ALERT_RAISED,
                    &[("subch", Json::U64(u64::from(self.subch)))],
                );
            }
        }
        // Flush the batched command counters once per pass (before any
        // epoch boundary can read them) instead of per command. Zero
        // deltas are skipped so untouched counters never materialize.
        if batch_reads > 0 {
            self.telemetry.inc(names::MC_READS, batch_reads);
        }
        if batch_writes > 0 {
            self.telemetry.inc(names::MC_WRITES, batch_writes);
        }
        if batch_acts > 0 {
            self.telemetry.inc(names::MC_ACTS, batch_acts);
        }
        if batch_refs > 0 {
            self.telemetry.inc(names::MC_REFS, batch_refs);
        }
        if opp {
            self.telemetry.inc(names::MC_OPP_SCHED_PASSES, 1);
            if pass_cmds == 0 {
                // Under the event core an idle pass means "this window
                // held no event", not "a full scan found nothing".
                self.telemetry.inc(names::MC_OPP_IDLE_PASSES, 1);
            }
            self.telemetry
                .observe(names::MC_OPP_CMDS_PER_PASS, pass_cmds);
        }
    }
}

/// One DRAMSim3-style command-trace line: `<t_ps> <CMD> sc<n> [location]`.
fn trace_line(subch: u32, cmd: &Command, at: Ps) -> String {
    let t = at.as_ps();
    match *cmd {
        Command::Act { bank, row } => {
            format!("{t} ACT sc{subch} ra{} ba{} row{row}", bank.rank, bank.bank)
        }
        Command::Pre { bank } => {
            format!("{t} PRE sc{subch} ra{} ba{}", bank.rank, bank.bank)
        }
        Command::PreAll => format!("{t} PREA sc{subch}"),
        Command::Rd { bank, col } => {
            format!("{t} RD sc{subch} ra{} ba{} col{col}", bank.rank, bank.bank)
        }
        Command::Wr { bank, col } => {
            format!("{t} WR sc{subch} ra{} ba{} col{col}", bank.rank, bank.bank)
        }
        Command::Ref => format!("{t} REF sc{subch}"),
        Command::Rfm { alert: true } => format!("{t} RFM-ABO sc{subch}"),
        Command::Rfm { alert: false } => format!("{t} RFM sc{subch}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_dram::address::{DramAddr, MappingScheme, RowMapping};
    use mirza_dram::geometry::Geometry;
    use mirza_dram::mitigation::NullMitigator;
    use mirza_dram::timing::TimingParams;

    fn mc(cfg: McConfig) -> MemController {
        let geom = Geometry::ddr5_32gb();
        let device = Subchannel::new(
            TimingParams::ddr5_6000(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        );
        MemController::new(device, cfg, 0)
    }

    fn read(id: u64, bank: u32, row: u32, col: u32, at_ns: u64) -> Request {
        Request {
            id,
            addr: DramAddr {
                bank: BankId::new(0, 0, bank),
                row,
                col,
            },
            kind: AccessKind::Read,
            arrival: Ps::from_ns(at_ns),
        }
    }

    #[test]
    fn single_read_latency_is_rcd_plus_cl_plus_burst() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 1);
        let t = TimingParams::ddr5_6000();
        assert_eq!(out[0].done_at, t.t_rcd + t.cl + t.t_burst);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn row_hits_are_served_first_and_classified() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        mc.enqueue(read(2, 0, 100, 1, 0));
        mc.enqueue(read(3, 0, 100, 2, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().row_hits, 2);
    }

    #[test]
    fn conflicting_rows_classified_as_conflicts() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        mc.enqueue(read(2, 0, 200, 0, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(2), &mut out);
        assert_eq!(out.len(), 2);
        // Depending on the soft-close timing the second is a conflict (PRE
        // on its behalf) or a miss (already closed); either way it needed
        // an ACT.
        assert_eq!(mc.stats().row_hits, 0);
        assert_eq!(mc.stats().row_misses + mc.stats().row_conflicts, 2);
    }

    #[test]
    fn refresh_happens_on_schedule() {
        let mut mc = mc(McConfig::default());
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(40), &mut out);
        // 40 us / 3.9 us ~ 10 REFs.
        let refs = mc.device().stats().refs;
        assert!((9..=11).contains(&refs), "got {refs}");
    }

    #[test]
    fn postponed_refresh_yields_to_demand_then_repays() {
        let strict = {
            let mut mc = mc(McConfig::default());
            for i in 0..64 {
                mc.enqueue(read(i, (i % 8) as u32, i as u32 * 3, 0, 3800));
            }
            let mut out = Vec::new();
            mc.run_until(Ps::from_us(20), &mut out);
            assert_eq!(out.len(), 64);
            (
                out.iter().map(|c| c.done_at).max().unwrap(),
                mc.device().stats().refs,
            )
        };
        let relaxed = {
            let mut mc = mc(McConfig {
                postpone_refs: 4,
                ..McConfig::default()
            });
            for i in 0..64 {
                mc.enqueue(read(i, (i % 8) as u32, i as u32 * 3, 0, 3800));
            }
            let mut out = Vec::new();
            mc.run_until(Ps::from_us(20), &mut out);
            assert_eq!(out.len(), 64);
            (
                out.iter().map(|c| c.done_at).max().unwrap(),
                mc.device().stats().refs,
            )
        };
        // The burst lands right at the first REF due time (3.9 us): with
        // postponement the batch finishes no later, and the REF debt is
        // repaid by the horizon (same REF count over the window).
        assert!(relaxed.0 <= strict.0, "postponement must not slow demand");
        assert_eq!(relaxed.1, strict.1, "refresh debt fully repaid");
    }

    #[test]
    fn proactive_rfm_fires_at_bat() {
        let mut mc = mc(McConfig {
            rfm_bat: Some(4),
            ..McConfig::default()
        });
        // 8 conflicting reads to one bank -> 8 ACTs -> 2 RFMs.
        for i in 0..8 {
            mc.enqueue(read(i, 0, i as u32 * 7, 0, 0));
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(5), &mut out);
        assert_eq!(out.len(), 8);
        assert!(mc.stats().rfms_issued >= 1, "BAT of 4 must trigger RFM");
        assert_eq!(mc.device().stats().rfms_proactive, mc.stats().rfms_issued);
    }

    #[test]
    fn writes_complete_at_issue() {
        let mut mc = mc(McConfig::default());
        let mut w = read(9, 0, 50, 0, 0);
        w.kind = AccessKind::Write;
        mc.enqueue(w);
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(mc.stats().writes_done, 1);
    }

    #[test]
    #[should_panic(expected = "wrong sub-channel")]
    fn rejects_cross_subchannel_requests() {
        let mut mc = mc(McConfig::default());
        let mut r = read(1, 0, 0, 0, 0);
        r.addr.bank.subch = 1;
        mc.enqueue(r);
    }

    #[test]
    fn span_attribution_conserves_across_a_backlog_with_refreshes() {
        use mirza_telemetry::{SpanCollector, Telemetry};
        let mut mc = mc(McConfig::default());
        let tel = Telemetry::enabled().with_spans(SpanCollector::new());
        mc.set_telemetry(tel.clone());
        for i in 0..48u64 {
            mc.enqueue(read(i, (i % 8) as u32, (i * 7) as u32, 0, i / 4));
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(60), &mut out);
        assert_eq!(out.len(), 48);
        let s = tel.spans_summary().unwrap();
        assert_eq!(s.requests, 48);
        assert!(s.conserved, "buckets must sum to total stall");
        assert!(s.total_stall_ps > 0);
        // A backlog of conflicting rows waits on ordering and bank timing.
        assert!(s.buckets_ps[StallBucket::QueueConflict.index()] > 0);
        assert!(s.buckets_ps[StallBucket::BankTiming.index()] > 0);
        for (_, b) in tel.spans_bank_attributions() {
            assert!(b.conserved(), "per-bank conservation");
        }
    }

    #[test]
    fn drains_large_backlog_without_violations() {
        let mut mc = mc(McConfig::default());
        let mut id = 0;
        for row in 0..32u32 {
            for bank in 0..8u32 {
                for col in 0..4u32 {
                    mc.enqueue(read(id, bank, row * 13, col, 0));
                    id += 1;
                }
            }
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_ms(1), &mut out);
        assert_eq!(out.len(), id as usize);
        assert_eq!(mc.pending_requests(), 0);
        // Device saw at least one REF along the way.
        assert!(mc.device().stats().refs > 0);
    }
}
