//! The per-sub-channel memory controller: FR-FCFS scheduling with a soft
//! close-page policy, on-time refresh, proactive RFM (Bank-Activation
//!-Threshold counters) and reactive ALERT back-off servicing.

use std::collections::VecDeque;

use mirza_dram::address::BankId;
use mirza_dram::command::Command;
use mirza_dram::device::Subchannel;
use mirza_dram::mitigation::DeviceFault;
use mirza_dram::time::Ps;
use mirza_telemetry::{names, Json, StallBucket, Telemetry};

use crate::request::{AccessKind, Completion, McStats, Request};

/// Controller policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McConfig {
    /// Proactive RFM: issue an RFM once any bank accumulates this many ACTs
    /// (`None` disables proactive RFM).
    pub rfm_bat: Option<u32>,
    /// Refresh postponement budget: demand traffic may run up to this many
    /// tREFI past a due REF before refresh preempts it (DDR5 permits up to
    /// 4 postponed REFs; 0 = strict on-time refresh).
    pub postpone_refs: u32,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: Request,
    needed_act: bool,
    needed_pre: bool,
    /// When the first ACT/PRE was issued on this request's behalf — the
    /// instant it became the oldest request needing its bank. `None` for
    /// pure row hits; feeds the span layer's queue-vs-bank stall split.
    own_cmd_at: Option<Ps>,
}

/// Candidate command with its scheduling class (lower = higher priority).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    cmd: Command,
    at: Ps,
    class: u8,
    arrival: Ps,
}

/// Memory controller driving one [`Subchannel`].
///
/// The controller is event-driven: [`MemController::run_until`] issues every
/// command whose legal issue instant falls inside the window and returns the
/// read/write completions produced.
pub struct MemController {
    device: Subchannel,
    cfg: McConfig,
    subch: u32,
    queues: Vec<VecDeque<Queued>>,
    /// Per-bank activation counters for proactive RFM (reset on RFM).
    raa: Vec<u32>,
    now: Ps,
    /// Instant the current ALERT was observed, if one is being serviced.
    alert_observed_at: Option<Ps>,
    stats: McStats,
    telemetry: Telemetry,
    /// Cached `telemetry.has_spans()` so the hot path tests one local bool
    /// instead of borrowing the recorder.
    spans: bool,
    /// Cached `telemetry.has_opportunity()`: arms the per-pass work
    /// counters and skip-gap histogram in `run_until`.
    opp: bool,
    /// Length of the current streak of row-buffer hits (for the
    /// `mc.row_hit_run` histogram; flushed when a miss/conflict breaks it).
    hit_run: u64,
}

impl std::fmt::Debug for MemController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemController")
            .field("subch", &self.subch)
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemController {
    /// Creates a controller for sub-channel index `subch` of the channel.
    pub fn new(mut device: Subchannel, cfg: McConfig, subch: u32) -> Self {
        let nbanks = device.geometry().banks_per_subchannel() as usize;
        device.set_subch_index(subch);
        MemController {
            cfg,
            subch,
            queues: vec![VecDeque::new(); nbanks],
            raa: vec![0; nbanks],
            now: Ps::ZERO,
            alert_observed_at: None,
            stats: McStats::default(),
            telemetry: Telemetry::disabled(),
            spans: false,
            opp: false,
            hit_run: 0,
            device,
        }
    }

    /// Attaches a telemetry handle (cloned down into the device and its
    /// mitigator). Both sub-channel controllers share one handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.device.set_telemetry(telemetry.clone());
        self.spans = telemetry.has_spans();
        self.opp = telemetry.has_opportunity();
        self.telemetry = telemetry;
    }

    /// Flushes end-of-run telemetry state (the trailing row-hit streak).
    pub fn finish_telemetry(&mut self) {
        if self.hit_run > 0 {
            self.telemetry.observe(names::MC_ROW_HIT_RUN, self.hit_run);
            self.hit_run = 0;
        }
    }

    /// The device this controller drives.
    pub fn device(&self) -> &Subchannel {
        &self.device
    }

    /// Fault-injection hook: forwards a state fault to the device's
    /// mitigation engine, returning whether it changed anything.
    pub fn inject_device_fault(&mut self, fault: &DeviceFault, now: Ps) -> bool {
        self.device.inject_fault(fault, now)
    }

    /// Fault-injection hook: suppresses the device's ALERT assertion until
    /// device time reaches `until` (a dropped/delayed raise).
    pub fn mask_alert_until(&mut self, until: Ps) {
        self.device.mask_alert_until(until);
    }

    /// Fault-injection hook: jumps the device's refresh pointer forward by
    /// `steps` REF slots without refreshing the skipped rows.
    pub fn skip_refresh_steps(&mut self, steps: u32) {
        self.device.skip_refresh_steps(steps);
    }

    /// Scheduling statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The controller's current time (last command issue instant).
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Outstanding requests across all bank queues.
    pub fn pending_requests(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Enqueues a request.
    ///
    /// # Panics
    /// Panics if the request targets a different sub-channel.
    pub fn enqueue(&mut self, req: Request) {
        assert_eq!(
            req.addr.bank.subch, self.subch,
            "request routed to wrong sub-channel"
        );
        let flat = req.addr.bank.flat_in_subchannel(self.device.geometry());
        self.queues[flat].push_back(Queued {
            req,
            needed_act: false,
            needed_pre: false,
            own_cmd_at: None,
        });
        if self.telemetry.is_enabled() {
            self.telemetry
                .observe(names::MC_QUEUE_OCCUPANCY, self.pending_requests() as u64);
        }
    }

    fn bank_id(&self, flat: usize) -> BankId {
        let g = self.device.geometry();
        BankId::new(self.subch, flat as u32 / g.banks, flat as u32 % g.banks)
    }

    /// Picks the best demand-side candidate (column > activate > precharge,
    /// earliest issue time first, oldest request breaking ties).
    fn best_demand(&self) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        let mut consider = |c: Candidate| {
            let better = match &best {
                None => true,
                Some(b) => (c.at, c.class, c.arrival) < (b.at, b.class, b.arrival),
            };
            if better {
                best = Some(c);
            }
        };
        for (flat, q) in self.queues.iter().enumerate() {
            let bank = self.bank_id(flat);
            let open = self.device.open_row(bank);
            if q.is_empty() {
                // Soft close-page: close an idle open row once tRAS allows.
                if open.is_some() {
                    if let Some(e) = self.device.earliest(&Command::Pre { bank }) {
                        consider(Candidate {
                            cmd: Command::Pre { bank },
                            at: e.max(self.now),
                            class: 3,
                            arrival: Ps::MAX,
                        });
                    }
                }
                continue;
            }
            if let Some(row) = open {
                // Row hits anywhere in the queue are served first (FR-FCFS).
                if let Some(hit) = q.iter().find(|x| x.req.addr.row == row) {
                    let cmd = match hit.req.kind {
                        AccessKind::Read => Command::Rd {
                            bank,
                            col: hit.req.addr.col,
                        },
                        AccessKind::Write => Command::Wr {
                            bank,
                            col: hit.req.addr.col,
                        },
                    };
                    if let Some(e) = self.device.earliest(&cmd) {
                        consider(Candidate {
                            cmd,
                            at: e.max(hit.req.arrival).max(self.now),
                            class: 0,
                            arrival: hit.req.arrival,
                        });
                    }
                    continue;
                }
                // Conflict: close the open row for the oldest request.
                let head = &q[0];
                if let Some(e) = self.device.earliest(&Command::Pre { bank }) {
                    consider(Candidate {
                        cmd: Command::Pre { bank },
                        at: e.max(head.req.arrival).max(self.now),
                        class: 2,
                        arrival: head.req.arrival,
                    });
                }
            } else {
                // Bank closed: activate for the oldest request.
                let head = &q[0];
                let cmd = Command::Act {
                    bank,
                    row: head.req.addr.row,
                };
                if let Some(e) = self.device.earliest(&cmd) {
                    consider(Candidate {
                        cmd,
                        at: e.max(head.req.arrival).max(self.now),
                        class: 1,
                        arrival: head.req.arrival,
                    });
                }
            }
        }
        best
    }

    /// The next command the controller wants to issue, with its instant.
    fn next_action(&self) -> Option<(Command, Ps)> {
        let t = self.device.timing();
        // 1. ALERT back-off has absolute priority.
        if let Some(t0) = self.alert_observed_at {
            if !self.device.all_precharged() {
                let e = self.device.earliest(&Command::PreAll)?;
                return Some((Command::PreAll, e.max(self.now)));
            }
            let e = self
                .device
                .earliest(&Command::Rfm { alert: true })
                .expect("all banks precharged");
            let at = e.max(t0 + t.t_alert_prologue).max(self.now);
            return Some((Command::Rfm { alert: true }, at));
        }
        // 2. Proactive RFM when a bank's activation counter reaches BAT.
        if let Some(bat) = self.cfg.rfm_bat {
            if self.raa.iter().any(|&c| c >= bat) {
                if !self.device.all_precharged() {
                    let e = self.device.earliest(&Command::PreAll)?;
                    return Some((Command::PreAll, e.max(self.now)));
                }
                let e = self
                    .device
                    .earliest(&Command::Rfm { alert: false })
                    .expect("all banks precharged");
                return Some((Command::Rfm { alert: false }, e.max(self.now)));
            }
        }
        // 3. Demand traffic until refresh is due (plus any postponement
        // budget). Postponed REFs are repaid back-to-back afterwards.
        let ref_deadline =
            self.device.next_ref_due().max(self.now) + t.t_refi * u64::from(self.cfg.postpone_refs);
        if let Some(c) = self.best_demand() {
            if c.at < ref_deadline {
                return Some((c.cmd, c.at));
            }
        }
        let ref_at = self.device.next_ref_due().max(self.now);
        // 4. Refresh path: precharge everything, then REF on time.
        if self.device.all_precharged() {
            let e = self.device.earliest(&Command::Ref).expect("precharged");
            Some((Command::Ref, e.max(ref_at)))
        } else {
            let e = self.device.earliest(&Command::PreAll)?;
            Some((Command::PreAll, e.max(self.now)))
        }
    }

    fn mark_head(&mut self, flat: usize, act: bool) {
        let spans = self.spans;
        let now = self.now;
        if let Some(head) = self.queues[flat].front_mut() {
            if act {
                head.needed_act = true;
            } else {
                head.needed_pre = true;
            }
            if spans && head.own_cmd_at.is_none() {
                head.own_cmd_at = Some(now);
            }
        }
    }

    /// Issues every command whose legal instant is at or before `t_end`,
    /// appending read/write completions to `out`.
    ///
    /// With opportunity counters armed, each call is one "scheduler pass":
    /// commands issued, `earliest` probes burned, and the gap to the next
    /// pending command past the window are recorded — the raw material for
    /// sizing a next-event skip-ahead rework of this eager loop.
    pub fn run_until(&mut self, t_end: Ps, out: &mut Vec<Completion>) {
        let opp = self.opp;
        let mut pass_cmds: u64 = 0;
        let probes_before = if opp {
            self.device.earliest_probes()
        } else {
            0
        };
        while let Some((cmd, at)) = self.next_action() {
            if at > t_end {
                if opp {
                    self.telemetry
                        .observe(names::MC_OPP_SKIP_GAP_NS, (at - t_end).as_ps() / 1000);
                }
                break;
            }
            pass_cmds += 1;
            self.now = at;
            self.telemetry
                .trace_line(|| trace_line(self.subch, &cmd, at));
            match cmd {
                Command::Rd { bank, col } | Command::Wr { bank, col } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    let row = self.device.open_row(bank).expect("column to open row");
                    let pos = self.queues[flat]
                        .iter()
                        .position(|x| x.req.addr.row == row && x.req.addr.col == col)
                        .expect("queued request for column command");
                    let q = self.queues[flat].remove(pos).expect("position valid");
                    let issued = self.device.issue(cmd, at);
                    let done = issued.data_ready.expect("column returns data time");
                    if self.spans {
                        self.telemetry.span_request(
                            self.subch,
                            flat,
                            q.req.arrival.as_ps(),
                            q.own_cmd_at.map(Ps::as_ps),
                            at.as_ps(),
                        );
                    }
                    // Row-buffer classification.
                    if q.needed_pre {
                        self.stats.row_conflicts += 1;
                    } else if q.needed_act {
                        self.stats.row_misses += 1;
                    } else {
                        self.stats.row_hits += 1;
                    }
                    if self.telemetry.is_enabled() {
                        if q.needed_pre || q.needed_act {
                            self.finish_telemetry();
                        } else {
                            self.hit_run += 1;
                        }
                    }
                    match q.req.kind {
                        AccessKind::Read => {
                            self.stats.reads_done += 1;
                            self.stats.read_latency_ps += (done - q.req.arrival).as_ps();
                            self.telemetry.inc(names::MC_READS, 1);
                            self.telemetry.observe(
                                names::MC_READ_LATENCY_NS,
                                (done - q.req.arrival).as_ps() / 1000,
                            );
                            out.push(Completion {
                                id: q.req.id,
                                done_at: done,
                            });
                        }
                        AccessKind::Write => {
                            self.stats.writes_done += 1;
                            self.telemetry.inc(names::MC_WRITES, 1);
                            out.push(Completion {
                                id: q.req.id,
                                done_at: at,
                            });
                        }
                    }
                }
                Command::Act { bank, .. } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    self.mark_head(flat, true);
                    self.raa[flat] += 1;
                    self.device.issue(cmd, at);
                    self.telemetry.inc(names::MC_ACTS, 1);
                }
                Command::Pre { bank } => {
                    let flat = bank.flat_in_subchannel(self.device.geometry());
                    // Mark only when the close is on behalf of a waiting miss.
                    if !self.queues[flat].is_empty() {
                        self.mark_head(flat, false);
                    }
                    self.device.issue(cmd, at);
                }
                Command::PreAll => {
                    self.device.issue(cmd, at);
                }
                Command::Ref => {
                    if self.spans {
                        // Classify the whole tRFC window by whether the
                        // mitigator piggybacked victim refreshes on this
                        // REF (TRR-style) — the delta in its counter across
                        // the issue tells us.
                        let before = self.device.mitigation_stats().ref_mitigations;
                        self.device.issue(cmd, at);
                        let bucket = if self.device.mitigation_stats().ref_mitigations > before {
                            StallBucket::MitigativeRef
                        } else {
                            StallBucket::Refresh
                        };
                        let t_rfc = self.device.timing().t_rfc;
                        self.telemetry.span_block(
                            self.subch,
                            bucket,
                            at.as_ps(),
                            (at + t_rfc).as_ps(),
                        );
                    } else {
                        self.device.issue(cmd, at);
                    }
                    self.telemetry.inc(names::MC_REFS, 1);
                }
                Command::Rfm { alert } => {
                    self.device.issue(cmd, at);
                    if alert {
                        if let Some(t0) = self.alert_observed_at.take() {
                            let stall = at - t0;
                            self.telemetry
                                .observe(names::MC_ALERT_STALL_NS, stall.as_ps() / 1000);
                            self.telemetry.event(
                                at.as_ps(),
                                names::EV_ALERT_CLEARED,
                                &[
                                    ("subch", Json::U64(u64::from(self.subch))),
                                    ("stall_ns", Json::U64(stall.as_ps() / 1000)),
                                ],
                            );
                            if self.spans {
                                // The whole back-off — from observing
                                // ALERT_n through the recovery RFM's tRFM —
                                // is ABO stall.
                                let t_rfm = self.device.timing().t_rfm;
                                self.telemetry.span_block(
                                    self.subch,
                                    StallBucket::AboAlert,
                                    t0.as_ps(),
                                    (at + t_rfm).as_ps(),
                                );
                            }
                        }
                        self.stats.alerts_serviced += 1;
                        self.telemetry.inc(names::MC_ALERTS, 1);
                    } else {
                        self.stats.rfms_issued += 1;
                        self.telemetry.inc(names::MC_RFMS, 1);
                        self.telemetry.event(
                            at.as_ps(),
                            names::EV_RFM_ISSUED,
                            &[("subch", Json::U64(u64::from(self.subch)))],
                        );
                        if self.spans {
                            let t_rfm = self.device.timing().t_rfm;
                            self.telemetry.span_block(
                                self.subch,
                                StallBucket::Rfm,
                                at.as_ps(),
                                (at + t_rfm).as_ps(),
                            );
                        }
                        for c in &mut self.raa {
                            *c = 0;
                        }
                    }
                }
            }
            // Sample the ALERT line after every command.
            if self.alert_observed_at.is_none() && self.device.alert_asserted() {
                self.alert_observed_at = Some(self.now);
                self.telemetry.event(
                    self.now.as_ps(),
                    names::EV_ALERT_RAISED,
                    &[("subch", Json::U64(u64::from(self.subch)))],
                );
            }
        }
        if opp {
            self.telemetry.inc(names::MC_OPP_SCHED_PASSES, 1);
            if pass_cmds == 0 {
                self.telemetry.inc(names::MC_OPP_IDLE_PASSES, 1);
            }
            self.telemetry
                .observe(names::MC_OPP_CMDS_PER_PASS, pass_cmds);
            // Accumulate the per-pass probe delta so the counter sums over
            // both sub-channel devices.
            let delta = self.device.earliest_probes() - probes_before;
            self.telemetry.observe(names::MC_OPP_PROBES_PER_PASS, delta);
            self.telemetry.inc(names::DRAM_OPP_EARLIEST_PROBES, delta);
        }
    }
}

/// One DRAMSim3-style command-trace line: `<t_ps> <CMD> sc<n> [location]`.
fn trace_line(subch: u32, cmd: &Command, at: Ps) -> String {
    let t = at.as_ps();
    match *cmd {
        Command::Act { bank, row } => {
            format!("{t} ACT sc{subch} ra{} ba{} row{row}", bank.rank, bank.bank)
        }
        Command::Pre { bank } => {
            format!("{t} PRE sc{subch} ra{} ba{}", bank.rank, bank.bank)
        }
        Command::PreAll => format!("{t} PREA sc{subch}"),
        Command::Rd { bank, col } => {
            format!("{t} RD sc{subch} ra{} ba{} col{col}", bank.rank, bank.bank)
        }
        Command::Wr { bank, col } => {
            format!("{t} WR sc{subch} ra{} ba{} col{col}", bank.rank, bank.bank)
        }
        Command::Ref => format!("{t} REF sc{subch}"),
        Command::Rfm { alert: true } => format!("{t} RFM-ABO sc{subch}"),
        Command::Rfm { alert: false } => format!("{t} RFM sc{subch}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_dram::address::{DramAddr, MappingScheme, RowMapping};
    use mirza_dram::geometry::Geometry;
    use mirza_dram::mitigation::NullMitigator;
    use mirza_dram::timing::TimingParams;

    fn mc(cfg: McConfig) -> MemController {
        let geom = Geometry::ddr5_32gb();
        let device = Subchannel::new(
            TimingParams::ddr5_6000(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        );
        MemController::new(device, cfg, 0)
    }

    fn read(id: u64, bank: u32, row: u32, col: u32, at_ns: u64) -> Request {
        Request {
            id,
            addr: DramAddr {
                bank: BankId::new(0, 0, bank),
                row,
                col,
            },
            kind: AccessKind::Read,
            arrival: Ps::from_ns(at_ns),
        }
    }

    #[test]
    fn single_read_latency_is_rcd_plus_cl_plus_burst() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 1);
        let t = TimingParams::ddr5_6000();
        assert_eq!(out[0].done_at, t.t_rcd + t.cl + t.t_burst);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn row_hits_are_served_first_and_classified() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        mc.enqueue(read(2, 0, 100, 1, 0));
        mc.enqueue(read(3, 0, 100, 2, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().row_hits, 2);
    }

    #[test]
    fn conflicting_rows_classified_as_conflicts() {
        let mut mc = mc(McConfig::default());
        mc.enqueue(read(1, 0, 100, 0, 0));
        mc.enqueue(read(2, 0, 200, 0, 0));
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(2), &mut out);
        assert_eq!(out.len(), 2);
        // Depending on the soft-close timing the second is a conflict (PRE
        // on its behalf) or a miss (already closed); either way it needed
        // an ACT.
        assert_eq!(mc.stats().row_hits, 0);
        assert_eq!(mc.stats().row_misses + mc.stats().row_conflicts, 2);
    }

    #[test]
    fn refresh_happens_on_schedule() {
        let mut mc = mc(McConfig::default());
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(40), &mut out);
        // 40 us / 3.9 us ~ 10 REFs.
        let refs = mc.device().stats().refs;
        assert!((9..=11).contains(&refs), "got {refs}");
    }

    #[test]
    fn postponed_refresh_yields_to_demand_then_repays() {
        let strict = {
            let mut mc = mc(McConfig::default());
            for i in 0..64 {
                mc.enqueue(read(i, (i % 8) as u32, i as u32 * 3, 0, 3800));
            }
            let mut out = Vec::new();
            mc.run_until(Ps::from_us(20), &mut out);
            assert_eq!(out.len(), 64);
            (
                out.iter().map(|c| c.done_at).max().unwrap(),
                mc.device().stats().refs,
            )
        };
        let relaxed = {
            let mut mc = mc(McConfig {
                postpone_refs: 4,
                ..McConfig::default()
            });
            for i in 0..64 {
                mc.enqueue(read(i, (i % 8) as u32, i as u32 * 3, 0, 3800));
            }
            let mut out = Vec::new();
            mc.run_until(Ps::from_us(20), &mut out);
            assert_eq!(out.len(), 64);
            (
                out.iter().map(|c| c.done_at).max().unwrap(),
                mc.device().stats().refs,
            )
        };
        // The burst lands right at the first REF due time (3.9 us): with
        // postponement the batch finishes no later, and the REF debt is
        // repaid by the horizon (same REF count over the window).
        assert!(relaxed.0 <= strict.0, "postponement must not slow demand");
        assert_eq!(relaxed.1, strict.1, "refresh debt fully repaid");
    }

    #[test]
    fn proactive_rfm_fires_at_bat() {
        let mut mc = mc(McConfig {
            rfm_bat: Some(4),
            ..McConfig::default()
        });
        // 8 conflicting reads to one bank -> 8 ACTs -> 2 RFMs.
        for i in 0..8 {
            mc.enqueue(read(i, 0, i as u32 * 7, 0, 0));
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(5), &mut out);
        assert_eq!(out.len(), 8);
        assert!(mc.stats().rfms_issued >= 1, "BAT of 4 must trigger RFM");
        assert_eq!(mc.device().stats().rfms_proactive, mc.stats().rfms_issued);
    }

    #[test]
    fn writes_complete_at_issue() {
        let mut mc = mc(McConfig::default());
        let mut w = read(9, 0, 50, 0, 0);
        w.kind = AccessKind::Write;
        mc.enqueue(w);
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(mc.stats().writes_done, 1);
    }

    #[test]
    #[should_panic(expected = "wrong sub-channel")]
    fn rejects_cross_subchannel_requests() {
        let mut mc = mc(McConfig::default());
        let mut r = read(1, 0, 0, 0, 0);
        r.addr.bank.subch = 1;
        mc.enqueue(r);
    }

    #[test]
    fn span_attribution_conserves_across_a_backlog_with_refreshes() {
        use mirza_telemetry::{SpanCollector, Telemetry};
        let mut mc = mc(McConfig::default());
        let tel = Telemetry::enabled().with_spans(SpanCollector::new());
        mc.set_telemetry(tel.clone());
        for i in 0..48u64 {
            mc.enqueue(read(i, (i % 8) as u32, (i * 7) as u32, 0, i / 4));
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_us(60), &mut out);
        assert_eq!(out.len(), 48);
        let s = tel.spans_summary().unwrap();
        assert_eq!(s.requests, 48);
        assert!(s.conserved, "buckets must sum to total stall");
        assert!(s.total_stall_ps > 0);
        // A backlog of conflicting rows waits on ordering and bank timing.
        assert!(s.buckets_ps[StallBucket::QueueConflict.index()] > 0);
        assert!(s.buckets_ps[StallBucket::BankTiming.index()] > 0);
        for (_, b) in tel.spans_bank_attributions() {
            assert!(b.conserved(), "per-bank conservation");
        }
    }

    #[test]
    fn drains_large_backlog_without_violations() {
        let mut mc = mc(McConfig::default());
        let mut id = 0;
        for row in 0..32u32 {
            for bank in 0..8u32 {
                for col in 0..4u32 {
                    mc.enqueue(read(id, bank, row * 13, col, 0));
                    id += 1;
                }
            }
        }
        let mut out = Vec::new();
        mc.run_until(Ps::from_ms(1), &mut out);
        assert_eq!(out.len(), id as usize);
        assert_eq!(mc.pending_requests(), 0);
        // Device saw at least one REF along the way.
        assert!(mc.device().stats().refs > 0);
    }
}
