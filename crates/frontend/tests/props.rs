//! Property-based tests for the CPU-side substrate: cache coherence of the
//! LRU model, paging stability, and core instruction accounting.

use proptest::prelude::*;

use mirza_dram::time::Ps;
use mirza_frontend::cache::{CacheOutcome, SetAssocCache};
use mirza_frontend::core::{AccessResult, Core, CoreParams};
use mirza_frontend::paging::PageAllocator;
use mirza_frontend::trace::{TraceOp, VecStream};

proptest! {
    /// Immediately re-accessing any line hits, whatever came before.
    #[test]
    fn access_then_access_hits(
        warm in proptest::collection::vec(0u64..4096, 0..200),
        probe in 0u64..4096,
    ) {
        let mut c = SetAssocCache::new(64, 4);
        for line in warm {
            c.access(line, false);
        }
        c.access(probe, false);
        prop_assert_eq!(c.access(probe, false), CacheOutcome::Hit);
    }

    /// A dirty line evicted is reported exactly once as a write-back, and
    /// hit+miss counts always equal total accesses.
    #[test]
    fn accounting_balances(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300),
    ) {
        let mut c = SetAssocCache::new(16, 2);
        let total = ops.len() as u64;
        for (line, write) in ops {
            c.access(line, write);
        }
        prop_assert_eq!(c.hits() + c.misses(), total);
    }

    /// Translation is stable (same VA -> same PA) and page-aligned offsets
    /// are preserved.
    #[test]
    fn paging_is_stable(
        vaddrs in proptest::collection::vec(0u64..(1u64 << 30), 1..100),
        core in 0u32..8,
    ) {
        let mut p = PageAllocator::new(4u64 << 30);
        let first: Vec<u64> = vaddrs.iter().map(|&v| p.translate(core, v)).collect();
        for (v, pa) in vaddrs.iter().zip(&first) {
            prop_assert_eq!(p.translate(core, *v), *pa, "translation changed");
            prop_assert_eq!(v % 4096, pa % 4096, "offset not preserved");
        }
    }

    /// The core retires exactly the trace's instructions when nothing
    /// stalls, and its IPC never exceeds the pipeline width.
    #[test]
    fn core_retires_exactly_the_trace(
        gaps in proptest::collection::vec(0u32..12, 1..100),
    ) {
        let expected: u64 = gaps.iter().map(|&g| u64::from(g) + 1).sum();
        let ops = gaps
            .iter()
            .enumerate()
            .map(|(i, &g)| TraceOp { nonmem: g, vaddr: i as u64 * 64, is_store: false })
            .collect();
        let mut core = Core::new(0, CoreParams::default(), Box::new(VecStream::once(ops)), u64::MAX);
        core.run(Ps::from_ms(10), |_, _, _| AccessResult::Ready);
        prop_assert_eq!(core.instructions(), expected);
        prop_assert!(core.ipc() <= 4.0 + 1e-9, "ipc {} exceeds width", core.ipc());
    }

    /// With pending DRAM misses, outstanding never exceeds the MSHR count.
    #[test]
    fn mshr_budget_is_respected(
        n_ops in 1usize..80,
        mshr in 1usize..16,
    ) {
        let ops = (0..n_ops)
            .map(|i| TraceOp { nonmem: 0, vaddr: i as u64 * 64, is_store: false })
            .collect();
        let params = CoreParams { mshr, ..CoreParams::default() };
        let mut core = Core::new(0, params, Box::new(VecStream::once(ops)), u64::MAX);
        let mut token = 0u64;
        core.run(Ps::from_ms(10), |_, _, _| {
            token += 1;
            AccessResult::Pending(token)
        });
        prop_assert!(core.outstanding() <= mshr);
    }
}
