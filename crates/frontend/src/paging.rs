//! Clock-style first-touch page allocation (Table III: the OS maps virtual
//! to physical pages at 4 KB granularity with the classic clock algorithm).
//!
//! Frames are handed out in circular first-touch order across all cores, so
//! the address spaces of the eight rate-mode cores interleave naturally in
//! physical memory — the property that spreads benign ACTs over subarrays.

use crate::hash::FxHashMap;

/// Page size used throughout (4 KB).
pub const PAGE_BYTES: u64 = 4096;

/// Per-machine virtual-to-physical mapper.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    total_frames: u64,
    next_frame: u64,
    // Touched on every memory access; the fast deterministic hasher keeps
    // translation off the profile (lookup order is never observed).
    map: FxHashMap<(u32, u64), u64>,
    // Small direct-mapped translation cache per core — `TLB_WAYS` slots of
    // (vpn, frame), indexed by the vpn's low bits, vpn = u64::MAX when
    // empty. Purely a lookup shortcut over `map`, so translations are
    // unchanged. Sized to catch both streaming reuse and the hot head of
    // Zipf-distributed traffic, which a single entry cannot.
    tlb: Vec<[(u64, u64); TLB_WAYS]>,
}

/// Per-core translation-cache slots (power of two; index = low vpn bits).
const TLB_WAYS: usize = 64;

impl PageAllocator {
    /// Creates an allocator over `capacity_bytes` of physical memory.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is smaller than one page.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes >= PAGE_BYTES, "capacity below one page");
        PageAllocator {
            total_frames: capacity_bytes / PAGE_BYTES,
            next_frame: 0,
            map: FxHashMap::default(),
            tlb: Vec::new(),
        }
    }

    /// Frames handed out so far.
    pub fn allocated(&self) -> u64 {
        self.map.len() as u64
    }

    /// Total frames available.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Translates a virtual address of `core` to a physical address,
    /// allocating the frame on first touch (clock order, wrapping).
    ///
    /// # Panics
    /// Panics if physical memory is exhausted (no eviction is modeled; the
    /// paper's workloads fit comfortably in 32 GB).
    pub fn translate(&mut self, core: u32, vaddr: u64) -> u64 {
        let vpn = vaddr / PAGE_BYTES;
        let slot = core as usize;
        let way = (vpn as usize) & (TLB_WAYS - 1);
        if let Some(set) = self.tlb.get(slot) {
            let (cached_vpn, frame) = set[way];
            if cached_vpn == vpn {
                return frame * PAGE_BYTES + (vaddr % PAGE_BYTES);
            }
        }
        let frames = self.total_frames;
        let next = &mut self.next_frame;
        let frame = *self.map.entry((core, vpn)).or_insert_with(|| {
            assert!(
                (*next) < frames,
                "physical memory exhausted after {frames} frames"
            );
            let f = *next;
            *next += 1;
            f
        });
        if slot >= self.tlb.len() {
            self.tlb.resize(slot + 1, [(u64::MAX, 0); TLB_WAYS]);
        }
        self.tlb[slot][way] = (vpn, frame);
        frame * PAGE_BYTES + (vaddr % PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_same_frame() {
        let mut p = PageAllocator::new(1 << 20);
        let a = p.translate(0, 0x1234);
        let b = p.translate(0, 0x1FFF);
        assert_eq!(a / PAGE_BYTES, b / PAGE_BYTES);
        assert_eq!(a % PAGE_BYTES, 0x234);
    }

    #[test]
    fn cores_get_distinct_frames() {
        let mut p = PageAllocator::new(1 << 20);
        let a = p.translate(0, 0x1000);
        let b = p.translate(1, 0x1000);
        assert_ne!(a / PAGE_BYTES, b / PAGE_BYTES, "rate-mode isolation");
    }

    #[test]
    fn first_touch_order_interleaves() {
        let mut p = PageAllocator::new(1 << 20);
        let f0 = p.translate(0, 0) / PAGE_BYTES;
        let f1 = p.translate(1, 0) / PAGE_BYTES;
        let f2 = p.translate(0, PAGE_BYTES) / PAGE_BYTES;
        assert_eq!((f0, f1, f2), (0, 1, 2));
        assert_eq!(p.allocated(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut p = PageAllocator::new(PAGE_BYTES * 2);
        p.translate(0, 0);
        p.translate(0, PAGE_BYTES);
        p.translate(0, 2 * PAGE_BYTES);
    }
}
