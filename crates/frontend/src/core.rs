//! Interval model of an out-of-order core (Table III: 8 cores, 4 GHz,
//! 4-wide, 392-entry ROB).
//!
//! The model is event-driven: non-memory instructions retire at the full
//! pipeline width; LLC hits are fully hidden by out-of-order execution;
//! DRAM-bound misses overlap with each other and with compute until either
//! the MSHR budget is exhausted or an unfinished load falls a full ROB
//! behind the fetch front — the two first-order stall mechanisms of an OOO
//! core. This reproduces relative slowdowns from memory-timing changes
//! without a per-cycle pipeline simulation.

use std::collections::VecDeque;

use mirza_dram::time::Ps;

use crate::trace::AccessStream;

/// Core microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Retire width (instructions per cycle).
    pub width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob: u64,
    /// Maximum outstanding DRAM misses (MSHRs).
    pub mshr: usize,
    /// Clock period (4 GHz -> 250 ps).
    pub cycle: Ps,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            width: 4,
            rob: 392,
            mshr: 16,
            cycle: Ps::from_ps(250),
        }
    }
}

/// What the memory system did with an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// LLC hit: latency hidden, core continues.
    Ready,
    /// DRAM access in flight; completion arrives via [`Core::complete`]
    /// with this token.
    Pending(u64),
}

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Waiting on a DRAM completion (MSHR full or ROB head blocked).
    Blocked,
    /// Reached the time horizon with work remaining.
    HorizonReached,
    /// Retired the target instruction count (or trace ended).
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Flight {
    token: u64,
    instr_idx: u64,
    is_load: bool,
    done: Option<Ps>,
}

/// One simulated core executing an [`AccessStream`].
pub struct Core {
    id: u32,
    params: CoreParams,
    trace: Box<dyn AccessStream>,
    target_instr: u64,
    time: Ps,
    instr: u64,
    /// Sub-cycle residual instructions not yet converted to time.
    residual: u32,
    outstanding: VecDeque<Flight>,
    pending_mem: Option<(u64, bool, u64)>,
    finished: bool,
    /// Simulated time spent stalled on a full MSHR budget.
    mshr_stall: Ps,
    /// Simulated time spent stalled on the ROB-limit load.
    rob_stall: Ps,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("time", &self.time)
            .field("instr", &self.instr)
            .field("outstanding", &self.outstanding.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core that executes `trace` until `target_instr`
    /// instructions retire.
    pub fn new(
        id: u32,
        params: CoreParams,
        trace: Box<dyn AccessStream>,
        target_instr: u64,
    ) -> Self {
        Core {
            id,
            params,
            trace,
            target_instr,
            time: Ps::ZERO,
            instr: 0,
            residual: 0,
            outstanding: VecDeque::new(),
            pending_mem: None,
            finished: false,
            mshr_stall: Ps::ZERO,
            rob_stall: Ps::ZERO,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Local time (last retirement instant).
    pub fn time(&self) -> Ps {
        self.time
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instr
    }

    /// True once the target instruction count was reached.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Outstanding DRAM misses.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Simulated time this core spent stalled on a full MSHR budget.
    pub fn mshr_stall(&self) -> Ps {
        self.mshr_stall
    }

    /// Simulated time this core spent stalled on the ROB-limit load.
    pub fn rob_stall(&self) -> Ps {
        self.rob_stall
    }

    /// Instructions per cycle achieved so far (the sub-cycle residual of
    /// instructions not yet converted to whole cycles is charged here, so
    /// IPC never exceeds the pipeline width).
    pub fn ipc(&self) -> f64 {
        let residual_ps = self.params.cycle.as_ps() as f64 * f64::from(self.residual)
            / f64::from(self.params.width);
        let elapsed = self.time.as_ps() as f64 + residual_ps;
        if elapsed == 0.0 {
            0.0
        } else {
            self.instr as f64 * self.params.cycle.as_ps() as f64 / elapsed
        }
    }

    /// Delivers the DRAM completion for `token` at instant `at`.
    pub fn complete(&mut self, token: u64, at: Ps) {
        if let Some(f) = self.outstanding.iter_mut().find(|f| f.token == token) {
            debug_assert!(f.done.is_none(), "double completion for token {token}");
            f.done = Some(at);
        }
    }

    fn advance_compute(&mut self, instrs: u32) {
        let total = self.residual + instrs;
        let cycles = u64::from(total / self.params.width);
        self.residual = total % self.params.width;
        self.time += self.params.cycle * cycles;
        self.instr += u64::from(instrs);
    }

    /// Runs until `horizon`, a DRAM dependency blocks, or the instruction
    /// target is reached. `access` is the memory system: it receives
    /// `(vaddr, is_store, issue_time)` and says whether the access hit or
    /// went to DRAM.
    pub fn run<F>(&mut self, horizon: Ps, mut access: F) -> RunStatus
    where
        F: FnMut(u64, bool, Ps) -> AccessResult,
    {
        loop {
            if self.finished {
                return RunStatus::Finished;
            }
            if self.time >= horizon {
                return RunStatus::HorizonReached;
            }
            // Fetch the next trace record when no memory op is waiting.
            if self.pending_mem.is_none() {
                match self.trace.next_op() {
                    None => {
                        self.finished = true;
                        return RunStatus::Finished;
                    }
                    Some(op) => {
                        self.advance_compute(op.nonmem + 1);
                        self.pending_mem = Some((op.vaddr, op.is_store, self.instr - 1));
                        if self.instr >= self.target_instr {
                            self.finished = true;
                            return RunStatus::Finished;
                        }
                    }
                }
            }
            // Retire fully-overlapped flights from the ROB head.
            while let Some(f) = self.outstanding.front() {
                match f.done {
                    Some(d) if d <= self.time => {
                        self.outstanding.pop_front();
                    }
                    _ => break,
                }
            }
            let (_, _, idx) = *self.pending_mem.as_ref().expect("op staged");
            // MSHR limit: wait for the oldest flight.
            if self.outstanding.len() >= self.params.mshr {
                match self.outstanding.front().expect("mshr full").done {
                    Some(d) => {
                        self.mshr_stall += d.saturating_sub(self.time);
                        self.time = self.time.max(d);
                        self.outstanding.pop_front();
                        continue;
                    }
                    None => return RunStatus::Blocked,
                }
            }
            // ROB limit: an unfinished load a full ROB behind fetch stalls us.
            if let Some(front) = self.outstanding.front() {
                if front.is_load && front.instr_idx + self.params.rob <= idx {
                    match front.done {
                        Some(d) => {
                            self.rob_stall += d.saturating_sub(self.time);
                            self.time = self.time.max(d);
                            self.outstanding.pop_front();
                            continue;
                        }
                        None => return RunStatus::Blocked,
                    }
                }
            }
            // Issue the access.
            let (vaddr, is_store, idx) = self.pending_mem.take().expect("op staged");
            match access(vaddr, is_store, self.time) {
                AccessResult::Ready => {}
                AccessResult::Pending(token) => {
                    self.outstanding.push_back(Flight {
                        token,
                        instr_idx: idx,
                        is_load: !is_store,
                        done: None,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceOp, VecStream};

    fn ops(n: usize, nonmem: u32) -> Box<VecStream> {
        Box::new(VecStream::once(
            (0..n)
                .map(|i| TraceOp {
                    nonmem,
                    vaddr: i as u64 * 64,
                    is_store: false,
                })
                .collect(),
        ))
    }

    #[test]
    fn all_hits_run_at_full_width() {
        let mut c = Core::new(0, CoreParams::default(), ops(100, 3), u64::MAX);
        let st = c.run(Ps::from_ms(1), |_, _, _| AccessResult::Ready);
        assert_eq!(st, RunStatus::Finished);
        assert_eq!(c.instructions(), 400);
        // 400 instructions at width 4 = 100 cycles.
        assert_eq!(c.time(), Ps::from_ps(250) * 100);
        assert!((c.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn misses_overlap_until_mshr_full() {
        let params = CoreParams {
            mshr: 4,
            ..CoreParams::default()
        };
        let mut c = Core::new(0, params, ops(4, 0), u64::MAX);
        let mut next = 0u64;
        let st = c.run(Ps::from_ms(1), |_, _, _| {
            next += 1;
            AccessResult::Pending(next)
        });
        // Four misses fit the MSHRs; the trace ends without blocking.
        assert_eq!(st, RunStatus::Finished);
        assert_eq!(c.outstanding(), 4);
    }

    #[test]
    fn blocks_on_fifth_miss_and_resumes_on_completion() {
        let params = CoreParams {
            mshr: 4,
            ..CoreParams::default()
        };
        let mut c = Core::new(0, params, ops(8, 0), u64::MAX);
        let mut next = 0u64;
        let mut issue = |_: u64, _: bool, _: Ps| {
            next += 1;
            AccessResult::Pending(next)
        };
        let st = c.run(Ps::from_ms(1), &mut issue);
        assert_eq!(st, RunStatus::Blocked);
        let blocked_at = c.time();
        // Complete the oldest miss far in the future: the stall is charged.
        c.complete(1, Ps::from_us(1));
        let st = c.run(Ps::from_ms(1), &mut issue);
        assert_eq!(st, RunStatus::Blocked); // blocks again on the next one
        assert!(c.time() >= Ps::from_us(1), "stall advanced time");
        assert!(c.time() > blocked_at);
        // The time jump was charged to the MSHR stall counter.
        assert!(c.mshr_stall() >= Ps::from_us(1) - blocked_at);
        assert_eq!(c.rob_stall(), Ps::ZERO);
    }

    #[test]
    fn rob_limit_blocks_distant_loads() {
        let params = CoreParams {
            rob: 8,
            mshr: 64,
            ..CoreParams::default()
        };
        // Each op is 4 instructions; after 2 outstanding ops the ROB(8) gate
        // engages for the third.
        let mut c = Core::new(0, params, ops(8, 3), u64::MAX);
        let mut next = 0u64;
        let st = c.run(Ps::from_ms(1), |_, _, _| {
            next += 1;
            AccessResult::Pending(next)
        });
        assert_eq!(st, RunStatus::Blocked);
        assert!(c.outstanding() <= 3);
    }

    #[test]
    fn stores_do_not_block_the_rob() {
        let params = CoreParams {
            rob: 4,
            mshr: 64,
            ..CoreParams::default()
        };
        let trace = VecStream::once(
            (0..16)
                .map(|i| TraceOp {
                    nonmem: 3,
                    vaddr: i * 64,
                    is_store: true,
                })
                .collect(),
        );
        let mut c = Core::new(0, params, Box::new(trace), u64::MAX);
        let mut next = 0u64;
        let st = c.run(Ps::from_ms(1), |_, _, _| {
            next += 1;
            AccessResult::Pending(next)
        });
        assert_eq!(st, RunStatus::Finished, "stores never gate retirement");
    }

    #[test]
    fn horizon_pauses_execution() {
        let mut c = Core::new(0, CoreParams::default(), ops(1000, 3), u64::MAX);
        let st = c.run(Ps::from_ps(250) * 10, |_, _, _| AccessResult::Ready);
        assert_eq!(st, RunStatus::HorizonReached);
        assert!(c.instructions() < 4000);
        let st = c.run(Ps::from_ms(1), |_, _, _| AccessResult::Ready);
        assert_eq!(st, RunStatus::Finished);
        assert_eq!(c.instructions(), 4000);
    }

    #[test]
    fn instruction_target_finishes_early() {
        let mut c = Core::new(0, CoreParams::default(), ops(1000, 3), 100);
        let st = c.run(Ps::from_ms(1), |_, _, _| AccessResult::Ready);
        assert_eq!(st, RunStatus::Finished);
        assert!(c.instructions() >= 100);
        assert!(c.instructions() < 110);
    }
}
