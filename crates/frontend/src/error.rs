//! Typed simulation errors.
//!
//! Everything that used to panic on bad input — trace parsing, fault-plan
//! configuration, file I/O, a wedged run loop — is funneled through
//! [`SimError`] so drivers can print a structured diagnosis and exit with a
//! stable, documented code instead of unwinding. The type lives in the
//! frontend crate (the lowest layer that parses external input) and is
//! re-exported by `mirza-sim`.
//!
//! Exit-code table (also in DESIGN.md §6d):
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 1    | usage / generic failure                   |
//! | 2    | unknown workload or experiment            |
//! | 3    | malformed trace file (`path:line` named)  |
//! | 4    | bad configuration (fault plan, CLI value) |
//! | 5    | file I/O error                            |
//! | 6    | watchdog abort (stalled simulation)       |
//! | 7    | cell panic / degraded parallel campaign   |

use std::error::Error;
use std::fmt;

/// A typed, displayable simulation error with enough context to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A trace file failed to parse; `line` is 1-based and names the
    /// offending record.
    TraceParse {
        /// Path of the trace file (as given by the user).
        path: String,
        /// 1-based line number of the bad record (0 when the file as a
        /// whole is unusable, e.g. empty).
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A configuration key or value was rejected (fault plans, CLI flags).
    Config {
        /// The offending key or plan name.
        key: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An I/O operation failed.
    Io {
        /// Path involved.
        path: String,
        /// The underlying OS error, stringified.
        reason: String,
    },
    /// The forward-progress watchdog fired: the simulation stopped
    /// retiring work.
    Watchdog {
        /// Which watchdog fired and its threshold.
        reason: String,
        /// Instructions retired before the stall.
        instructions: u64,
        /// Simulated time reached before the stall, in picoseconds.
        sim_time_ps: u64,
    },
    /// A workload name matched neither a Table-IV benchmark nor a mix.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// A sweep cell panicked inside a supervised worker. The pool catches
    /// the unwind, records this typed error against the cell, and keeps the
    /// campaign alive; a campaign that ends with unrecovered cell failures
    /// exits with this variant's code ("degraded", not "dead").
    CellPanic {
        /// Stable id of the poisoned cell.
        cell: String,
        /// The panic payload, stringified (`&str`/`String` payloads verbatim,
        /// anything else an opaque marker).
        payload: String,
    },
}

impl SimError {
    /// Process exit code for this error (see the module-level table).
    pub fn exit_code(&self) -> u8 {
        match self {
            SimError::UnknownWorkload { .. } => 2,
            SimError::TraceParse { .. } => 3,
            SimError::Config { .. } => 4,
            SimError::Io { .. } => 5,
            SimError::Watchdog { .. } => 6,
            SimError::CellPanic { .. } => 7,
        }
    }

    /// Convenience constructor wrapping a [`std::io::Error`] with its path.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        SimError::Io {
            path: path.into(),
            reason: err.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TraceParse { path, line, reason } => {
                if *line == 0 {
                    write!(f, "trace parse error in {path}: {reason}")
                } else {
                    write!(f, "trace parse error at {path}:{line}: {reason}")
                }
            }
            SimError::Config { key, reason } => {
                write!(f, "config error: {key}: {reason}")
            }
            SimError::Io { path, reason } => write!(f, "io error: {path}: {reason}"),
            SimError::Watchdog {
                reason,
                instructions,
                sim_time_ps,
            } => write!(
                f,
                "watchdog abort: {reason} \
                 (retired {instructions} instructions, sim time {sim_time_ps} ps)"
            ),
            // Keep the literal "unknown workload" prefix: legacy panicking
            // wrappers format this Display into their panic payload and
            // callers match on that substring.
            SimError::UnknownWorkload { name } => write!(f, "unknown workload {name}"),
            SimError::CellPanic { cell, payload } => {
                write!(f, "cell panic in {cell}: {payload}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errs = [
            SimError::UnknownWorkload { name: "x".into() },
            SimError::TraceParse {
                path: "t".into(),
                line: 1,
                reason: "r".into(),
            },
            SimError::Config {
                key: "k".into(),
                reason: "r".into(),
            },
            SimError::Io {
                path: "p".into(),
                reason: "r".into(),
            },
            SimError::Watchdog {
                reason: "r".into(),
                instructions: 0,
                sim_time_ps: 0,
            },
            SimError::CellPanic {
                cell: "c".into(),
                payload: "p".into(),
            },
        ];
        let mut codes: Vec<u8> = errs.iter().map(SimError::exit_code).collect();
        assert!(codes.iter().all(|&c| c != 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "exit codes must be distinct");
    }

    #[test]
    fn display_names_the_offending_line() {
        let e = SimError::TraceParse {
            path: "runs/a.trace".into(),
            line: 17,
            reason: "expected a hex (0x...) or decimal address".into(),
        };
        let s = e.to_string();
        assert!(s.contains("runs/a.trace:17"), "{s}");
        assert!(s.contains("hex"), "{s}");
    }

    #[test]
    fn unknown_workload_keeps_legacy_panic_substring() {
        let e = SimError::UnknownWorkload {
            name: "doom".into(),
        };
        assert!(e.to_string().contains("unknown workload doom"));
    }
}
