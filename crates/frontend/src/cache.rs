//! Set-associative last-level cache with true-LRU replacement and
//! write-back/write-allocate semantics (Table III: 16 MB, 16-way, 64 B).

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `writeback` carries the evicted dirty line
    /// address (in line units), if any.
    Miss {
        /// Dirty victim that must be written back to DRAM.
        writeback: Option<u64>,
    },
}

/// A physically indexed set-associative cache over line addresses.
///
/// ```
/// use mirza_frontend::cache::{CacheOutcome, SetAssocCache};
/// let mut c = SetAssocCache::new(1 << 14, 2);
/// assert!(matches!(c.access(7, false), CacheOutcome::Miss { .. }));
/// assert_eq!(c.access(7, false), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// Tag per (set, way); `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU timestamp per (set, way).
    stamp: Vec<u64>,
    dirty: Vec<bool>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "need at least one way");
        SetAssocCache {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamp: vec![0; sets * ways],
            dirty: vec![false; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's shared LLC: 16 MB, 16-way, 64 B lines -> 16384 sets.
    pub fn llc_16mb() -> Self {
        Self::new(16 * 1024 * 1024 / 64 / 16, 16)
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses `line` (an address in line units), allocating on miss.
    /// `write` marks the line dirty.
    pub fn access(&mut self, line: u64, write: bool) -> CacheOutcome {
        self.tick += 1;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = base..base + self.ways;
        // Hit?
        for i in slots.clone() {
            if self.tags[i] == line {
                self.stamp[i] = self.tick;
                self.dirty[i] |= write;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.misses += 1;
        // Prefer an invalid way, else evict LRU.
        let victim = slots
            .clone()
            .find(|&i| self.tags[i] == u64::MAX)
            .unwrap_or_else(|| {
                slots
                    .min_by_key(|&i| self.stamp[i])
                    .expect("ways is non-zero")
            });
        let writeback =
            (self.tags[victim] != u64::MAX && self.dirty[victim]).then_some(self.tags[victim]);
        self.tags[victim] = line;
        self.stamp[victim] = self.tick;
        self.dirty[victim] = write;
        CacheOutcome::Miss { writeback }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(10, false);
        c.access(20, false);
        c.access(10, false); // 20 is now LRU
        c.access(30, false); // evicts 20
        assert_eq!(c.access(10, false), CacheOutcome::Hit);
        assert!(matches!(c.access(20, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(5, true);
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(5)),
            other => panic!("expected miss, got {other:?}"),
        }
        // Clean eviction has no writeback.
        match c.access(7, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, None),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(5, false);
        c.access(5, true); // hit, becomes dirty
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(5)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(0, false); // set 0
        c.access(1, false); // set 1
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert_eq!(c.access(1, false), CacheOutcome::Hit);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn llc_shape() {
        let c = SetAssocCache::llc_16mb();
        assert_eq!(c.capacity_lines() * 64, 16 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = SetAssocCache::new(3, 1);
    }
}
