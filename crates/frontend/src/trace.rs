//! Trace vocabulary shared between workload generators and the core model.
//!
//! Traces are expressed at the last-level-cache access level (Ramulator
//! style): each record is "`nonmem` non-memory instructions, then one LLC
//! access". The generators in `mirza-workloads` produce these streams.

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the access.
    pub nonmem: u32,
    /// Virtual byte address of the access.
    pub vaddr: u64,
    /// True for stores (write-allocate, dirty fill).
    pub is_store: bool,
}

/// A stream of trace records; generators may be infinite (the core model
/// bounds execution by instruction count).
pub trait AccessStream {
    /// Produces the next record, or `None` when the trace is exhausted.
    fn next_op(&mut self) -> Option<TraceOp>;
}

/// Replays a fixed vector of records (test and attack-kernel helper).
#[derive(Debug, Clone)]
pub struct VecStream {
    ops: Vec<TraceOp>,
    pos: usize,
    looping: bool,
}

impl VecStream {
    /// A stream that ends after one pass.
    pub fn once(ops: Vec<TraceOp>) -> Self {
        VecStream {
            ops,
            pos: 0,
            looping: false,
        }
    }

    /// A stream that repeats forever.
    ///
    /// # Panics
    /// Panics if `ops` is empty. Use [`VecStream::try_looping`] for
    /// untrusted input.
    pub fn looping(ops: Vec<TraceOp>) -> Self {
        Self::try_looping(ops).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`VecStream::looping`]: an empty trace is an error, not a
    /// panic (`source` names the trace for the diagnostic).
    pub fn try_looping(ops: Vec<TraceOp>) -> Result<Self, crate::error::SimError> {
        if ops.is_empty() {
            return Err(crate::error::SimError::TraceParse {
                path: "<in-memory trace>".into(),
                line: 0,
                reason: "cannot loop an empty trace".into(),
            });
        }
        Ok(VecStream {
            ops,
            pos: 0,
            looping: true,
        })
    }
}

impl AccessStream for VecStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.pos == self.ops.len() {
            if !self.looping {
                return None;
            }
            self.pos = 0;
        }
        let op = self.ops[self.pos];
        self.pos += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(v: u64) -> TraceOp {
        TraceOp {
            nonmem: 1,
            vaddr: v,
            is_store: false,
        }
    }

    #[test]
    fn once_ends() {
        let mut s = VecStream::once(vec![op(1), op(2)]);
        assert_eq!(s.next_op().unwrap().vaddr, 1);
        assert_eq!(s.next_op().unwrap().vaddr, 2);
        assert!(s.next_op().is_none());
    }

    #[test]
    fn looping_wraps() {
        let mut s = VecStream::looping(vec![op(1), op(2)]);
        for _ in 0..3 {
            assert_eq!(s.next_op().unwrap().vaddr, 1);
            assert_eq!(s.next_op().unwrap().vaddr, 2);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_loop_panics() {
        let _ = VecStream::looping(vec![]);
    }

    #[test]
    fn try_looping_reports_empty_trace_as_error() {
        let err = VecStream::try_looping(vec![]).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        assert!(VecStream::try_looping(vec![op(1)]).is_ok());
    }
}
