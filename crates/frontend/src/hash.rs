//! A fast, deterministic, non-cryptographic hasher for simulator-internal
//! maps (page tables, in-flight token ownership). These maps are only ever
//! probed point-wise — nothing observes iteration order — so swapping the
//! default SipHash for a multiply-rotate hash changes wall clock, not one
//! emitted byte. The constant is the same golden-ratio multiplier rustc's
//! own FxHash uses; the implementation here is independent and dependency
//! free (this workspace builds offline).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher: a few cycles per word against SipHash's dozens.
/// Not DoS-resistant — only use for maps keyed by simulator-generated
/// values (tokens, page numbers), never attacker-controlled input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] — stateless, so every map built
/// from it hashes identically across runs (unlike `RandomState`).
#[derive(Debug, Default, Clone)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// `HashMap` with the fast deterministic hasher; construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert((i as u32, i * 7), i);
            b.insert((i as u32, i * 7), i);
        }
        assert_eq!(a.len(), 1000);
        for (k, v) in &a {
            assert_eq!(b.get(k), Some(v));
        }
    }

    #[test]
    fn mixed_width_writes_cover_the_tail_path() {
        use std::hash::Hash;
        let mut h = FxHasher::default();
        (3u32, 9u64).hash(&mut h);
        let x = h.finish();
        let mut h2 = FxHasher::default();
        (3u32, 9u64).hash(&mut h2);
        assert_eq!(x, h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"abcdefghijk"); // 8-byte chunk + 3-byte remainder
        assert_ne!(h3.finish(), 0);
    }
}
