//! # mirza-frontend — CPU-side substrate
//!
//! The processor model feeding the memory system: an interval model of an
//! out-of-order core ([`core`]), a shared set-associative LLC ([`cache`]),
//! clock-style first-touch page allocation ([`paging`]) and the trace
//! vocabulary workload generators emit ([`trace`]).
//!
//! The core model needs no per-cycle loop: compute retires at full width,
//! LLC hits are hidden, and DRAM misses stall only through the two
//! first-order OOO mechanisms (MSHR exhaustion and ROB-head blocking).

pub mod cache;
pub mod core;
pub mod error;
pub mod hash;
pub mod paging;
pub mod trace;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::cache::{CacheOutcome, SetAssocCache};
    pub use crate::core::{AccessResult, Core, CoreParams, RunStatus};
    pub use crate::error::SimError;
    pub use crate::paging::{PageAllocator, PAGE_BYTES};
    pub use crate::trace::{AccessStream, TraceOp, VecStream};
}
