//! Output sinks: JSONL structured events and DRAMSim3-style command traces.
//!
//! Both sinks write through `Box<dyn Write>` so callers can point them at
//! files, stdout, or an in-memory buffer ([`SharedBuf`]) in tests. Sinks are
//! only constructed when tracing is requested; the disabled path never
//! allocates or formats.
//!
//! Concurrency contract: each sink formats a full line into one `String`
//! and hands it to the underlying writer as a **single `write_all` call**,
//! so a writer that is atomic per call (a [`LockedWriter`] shared between
//! parallel sweep workers, or POSIX `O_APPEND` pipes under `PIPE_BUF`)
//! never interleaves partial lines. The lock, when one is needed, lives in
//! the writer — call sites stay lock-free.

use crate::json::Json;
use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Writes one JSON object per line for rare, structured events
/// (ALERT raised/cleared, RFM issued, queue overflow, ...).
pub struct EventSink {
    out: Box<dyn Write>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink").finish_non_exhaustive()
    }
}

impl EventSink {
    /// A sink writing JSONL to `out`.
    pub fn new(out: Box<dyn Write>) -> Self {
        EventSink { out }
    }

    /// Emits `{"t_ps": <t>, "event": <kind>, ...fields}` on one line, as a
    /// single `write_all` (see the module-level concurrency contract).
    pub fn emit(&mut self, t_ps: u64, kind: &str, fields: &[(&str, Json)]) {
        let mut doc = Json::obj();
        doc.push("t_ps", t_ps).push("event", kind);
        for (k, v) in fields {
            doc.push(k, v.clone());
        }
        let mut line = doc.to_string_compact();
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }

    /// Flushes buffered output.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Flush on drop so panics and early exits still leave every fully-emitted
/// JSONL line on disk (a truncated run stays parseable line-by-line).
impl Drop for EventSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Writes a per-command text trace, one line per DRAM command, in the
/// DRAMSim3 spirit: `<t_ps> <command> <location>`.
pub struct TraceSink {
    out: Box<dyn Write>,
    lines: u64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink writing text lines to `out`.
    pub fn new(out: Box<dyn Write>) -> Self {
        TraceSink { out, lines: 0 }
    }

    /// Writes one trace line (no trailing newline needed) as a single
    /// `write_all` (see the module-level concurrency contract).
    pub fn line(&mut self, text: &str) {
        self.lines += 1;
        let mut line = String::with_capacity(text.len() + 1);
        line.push_str(text);
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes buffered output.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Flush on drop — see [`EventSink`]'s `Drop` impl.
impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A clonable `Write` that serializes every call through one mutex —
/// the writer-side lock parallel sweep workers share when several
/// per-worker sinks must target the same file or stream. Combined with the
/// sinks' one-`write_all`-per-line contract, concurrent emitters produce
/// whole interleaved lines, never spliced partial ones.
#[derive(Debug)]
pub struct LockedWriter<W: Write + Send>(Arc<Mutex<W>>);

// Manual impl: a handle clone shares the lock regardless of whether `W`
// itself is `Clone` (derive would demand `W: Clone`).
impl<W: Write + Send> Clone for LockedWriter<W> {
    fn clone(&self) -> Self {
        LockedWriter(Arc::clone(&self.0))
    }
}

impl<W: Write + Send> LockedWriter<W> {
    /// Wraps `inner` in a shared lock.
    pub fn new(inner: W) -> Self {
        LockedWriter(Arc::new(Mutex::new(inner)))
    }
}

impl<W: Write + Send + 'static> LockedWriter<W> {
    /// A boxed `Write` handle sharing this lock (sink constructors take
    /// `Box<dyn Write>`).
    pub fn writer(&self) -> Box<dyn Write>
    where
        W: 'static,
    {
        Box::new(self.clone())
    }
}

impl<W: Write + Send> Write for LockedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("locked writer poisoned").write(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.0
            .lock()
            .expect("locked writer poisoned")
            .write_all(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("locked writer poisoned").flush()
    }
}

/// A shared in-memory buffer usable as a sink target in tests.
#[derive(Debug, Default, Clone)]
pub struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `Write` handle feeding this buffer.
    pub fn writer(&self) -> Box<dyn Write> {
        Box::new(SharedBuf(Rc::clone(&self.0)))
    }

    /// The buffer contents decoded as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.borrow().clone()).expect("sink output is utf-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_sink_writes_jsonl() {
        let buf = SharedBuf::new();
        let mut sink = EventSink::new(buf.writer());
        sink.emit(100, "alert_raised", &[("subch", Json::U64(1))]);
        sink.emit(250, "rfm", &[]);
        sink.flush();
        let lines: Vec<String> = buf.contents().lines().map(String::from).collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("t_ps").unwrap().as_u64(), Some(100));
        assert_eq!(first.get("event").unwrap().as_str(), Some("alert_raised"));
        assert_eq!(first.get("subch").unwrap().as_u64(), Some(1));
        let second = Json::parse(&lines[1]).unwrap();
        assert_eq!(second.get("event").unwrap().as_str(), Some("rfm"));
    }

    /// A writer that stages bytes internally and only forwards them to the
    /// shared buffer on an explicit `flush` — models a `BufWriter` whose
    /// inner bytes would be lost without the sinks' `Drop` guard.
    struct LazyBuf {
        staged: Vec<u8>,
        out: SharedBuf,
    }

    impl Write for LazyBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.staged.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            let staged = std::mem::take(&mut self.staged);
            let mut w: Box<dyn Write> = self.out.writer();
            w.write_all(&staged)
        }
    }

    #[test]
    fn sinks_flush_on_drop() {
        let buf = SharedBuf::new();
        {
            let mut sink = EventSink::new(Box::new(LazyBuf {
                staged: Vec::new(),
                out: buf.clone(),
            }));
            sink.emit(42, "truncated_run", &[]);
            assert_eq!(buf.contents(), "", "bytes still staged before drop");
        }
        let line = buf.contents();
        let parsed = Json::parse(line.trim()).expect("dropped sink left parseable JSONL");
        assert_eq!(parsed.get("t_ps").unwrap().as_u64(), Some(42));

        let buf = SharedBuf::new();
        {
            let mut sink = TraceSink::new(Box::new(LazyBuf {
                staged: Vec::new(),
                out: buf.clone(),
            }));
            sink.line("100 ACT sc0 ba0 row0");
        }
        assert_eq!(buf.contents(), "100 ACT sc0 ba0 row0\n");
    }

    #[test]
    fn locked_writer_keeps_concurrent_lines_whole() {
        let shared = LockedWriter::new(Vec::<u8>::new());
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let mut handle = shared.clone();
                scope.spawn(move || {
                    let mut sink = EventSink::new(Box::new(handle.clone()));
                    for i in 0..50u64 {
                        sink.emit(i, "tick", &[("worker", Json::U64(u64::from(worker)))]);
                    }
                    // Exercise the raw Write path too.
                    let _ = handle.write_all(format!("w{worker} done\n").as_bytes());
                });
            }
        });
        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4 * 51, "every line intact, none spliced");
        for line in lines {
            if line.starts_with('{') {
                Json::parse(line).expect("parseable JSONL under concurrency");
            } else {
                assert!(line.ends_with("done"), "torn plain line: {line:?}");
            }
        }
    }

    #[test]
    fn trace_sink_counts_lines() {
        let buf = SharedBuf::new();
        let mut sink = TraceSink::new(buf.writer());
        sink.line("100 ACT ch0 ba3 row42");
        sink.line("250 RD ch0 ba3 col7");
        assert_eq!(sink.lines(), 2);
        assert_eq!(
            buf.contents(),
            "100 ACT ch0 ba3 row42\n250 RD ch0 ba3 col7\n"
        );
    }
}
