//! Host-phase profiler: wall-clock attribution with zero dependencies.
//!
//! [`PhaseProfiler`] accumulates `std::time::Instant` spans into a handful
//! of fixed [`Phase`]s (frontend, device tick, tracker engine, scheduler,
//! I/O, report). Phases nest inclusively: tracker time spent inside a
//! device tick is counted in both. Wall-clock numbers are inherently
//! nondeterministic, so they are reported under the manifest's
//! `host_profile` key, which the regression gate compares only within a
//! coarse tolerance (and the exact-match diff skips entirely).

use crate::json::Json;
use std::time::{Duration, Instant};

/// A host-time attribution bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Core models: fetch/retire loop, LLC, address mapping.
    Frontend,
    /// Memory-controller + DRAM device tick (`run_until`).
    Device,
    /// Rowhammer tracker / MIRZA engine callbacks (nested inside Device).
    Tracker,
    /// Completion delivery and quantum bookkeeping.
    Scheduler,
    /// Heartbeat, sinks, and epoch sampling.
    Io,
    /// Report construction at end of run.
    Report,
}

/// All phases, in display order.
pub const PHASES: [Phase; 6] = [
    Phase::Frontend,
    Phase::Device,
    Phase::Tracker,
    Phase::Scheduler,
    Phase::Io,
    Phase::Report,
];

impl Phase {
    /// Stable snake_case name used in manifests.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Frontend => "frontend",
            Phase::Device => "device",
            Phase::Tracker => "tracker",
            Phase::Scheduler => "scheduler",
            Phase::Io => "io",
            Phase::Report => "report",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Frontend => 0,
            Phase::Device => 1,
            Phase::Tracker => 2,
            Phase::Scheduler => 3,
            Phase::Io => 4,
            Phase::Report => 5,
        }
    }
}

/// Accumulated wall-clock per phase.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    nanos: [u64; PHASES.len()],
    calls: [u64; PHASES.len()],
    started: Instant0,
}

/// `Instant` has no `Default`; wrap the creation time.
#[derive(Debug)]
struct Instant0(Instant);

impl Default for Instant0 {
    fn default() -> Self {
        Instant0(Instant::now())
    }
}

impl PhaseProfiler {
    /// A fresh profiler; total elapsed time is measured from creation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one span to a phase.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        let i = phase.index();
        self.nanos[i] += u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.calls[i] += 1;
    }

    /// Nanoseconds accumulated in a phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Manifest subtree: total wall seconds plus per-phase seconds, call
    /// counts, and percentage of attributed time. `Tracker` nests inside
    /// `Device`, so phase percentages can sum past 100.
    pub fn to_json(&self) -> Json {
        let total = self.started.0.elapsed();
        let attributed: u64 = PHASES
            .iter()
            .filter(|p| !matches!(p, Phase::Tracker))
            .map(|p| self.nanos[p.index()])
            .sum();
        let mut phases = Json::obj();
        for p in PHASES {
            let i = p.index();
            let mut o = Json::obj();
            o.push("secs", self.nanos[i] as f64 / 1e9)
                .push("calls", self.calls[i])
                .push(
                    "pct_of_attributed",
                    if attributed == 0 {
                        0.0
                    } else {
                        self.nanos[i] as f64 * 100.0 / attributed as f64
                    },
                );
            phases.push(p.name(), o);
        }
        let mut doc = Json::obj();
        doc.push("total_secs", total.as_secs_f64())
            .push("attributed_secs", attributed as f64 / 1e9)
            .push("phases", phases);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_phase() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::Device, Duration::from_nanos(500));
        p.add(Phase::Device, Duration::from_nanos(250));
        p.add(Phase::Tracker, Duration::from_nanos(100));
        assert_eq!(p.nanos(Phase::Device), 750);
        assert_eq!(p.nanos(Phase::Tracker), 100);
        assert_eq!(p.nanos(Phase::Io), 0);
    }

    #[test]
    fn json_shape_has_all_phases() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::Frontend, Duration::from_micros(2));
        let doc = p.to_json();
        let phases = doc.get("phases").unwrap();
        for ph in PHASES {
            let o = phases.get(ph.name()).unwrap();
            assert!(o.get("secs").unwrap().as_f64().is_some());
            assert!(o.get("calls").unwrap().as_u64().is_some());
        }
        // Tracker is excluded from the attribution denominator.
        assert!(doc.get("attributed_secs").unwrap().as_f64().unwrap() > 0.0);
    }
}
