//! Named-metric registry: counters, gauges, and log2 histograms.
//!
//! Metric names are `&'static str` dotted paths (`"mc.read_latency_ns"`),
//! stored in `BTreeMap`s so manifest output is deterministically ordered.

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;

/// Recently-resolved `(name, slot)` pairs kept per metric family. Metric
/// names are `const` literals, so each call site passes a stable pointer;
/// a tiny linear scan on pointer identity skips the `BTreeMap` string walk
/// on the hot per-command paths. The same name reached through a different
/// pointer (consts inline per use-site) just occupies a second memo entry
/// mapping to the same slot, so correctness never depends on identity.
const MEMO_SLOTS: usize = 8;

#[derive(Debug, Default, Clone)]
struct NameMemo {
    slots: Vec<(&'static str, usize)>,
    cursor: usize,
}

impl NameMemo {
    #[inline]
    fn get(&self, name: &'static str) -> Option<usize> {
        self.slots
            .iter()
            .find(|(n, _)| n.as_ptr() == name.as_ptr() && n.len() == name.len())
            .map(|&(_, idx)| idx)
    }

    fn put(&mut self, name: &'static str, idx: usize) {
        if self.slots.len() < MEMO_SLOTS {
            self.slots.push((name, idx));
        } else {
            self.slots[self.cursor % MEMO_SLOTS] = (name, idx);
            self.cursor = (self.cursor + 1) % MEMO_SLOTS;
        }
    }
}

/// Holds every named metric recorded during one simulation run.
///
/// Counter and histogram values live in dense vectors; the `BTreeMap`s map
/// names to vector slots and keep manifest iteration deterministically
/// name-ordered. A [`NameMemo`] per family resolves repeat lookups from the
/// same call site without touching the tree.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<&'static str, usize>,
    counter_vals: Vec<u64>,
    counter_memo: NameMemo,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, usize>,
    histogram_vals: Vec<Histogram>,
    histogram_memo: NameMemo,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn counter_slot(&mut self, name: &'static str) -> usize {
        if let Some(idx) = self.counter_memo.get(name) {
            return idx;
        }
        let idx = match self.counters.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = self.counter_vals.len();
                self.counter_vals.push(0);
                self.counters.insert(name, idx);
                idx
            }
        };
        self.counter_memo.put(name, idx);
        idx
    }

    #[inline]
    fn histogram_slot(&mut self, name: &'static str) -> usize {
        if let Some(idx) = self.histogram_memo.get(name) {
            return idx;
        }
        let idx = match self.histograms.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = self.histogram_vals.len();
                self.histogram_vals.push(Histogram::default());
                self.histograms.insert(name, idx);
                idx
            }
        };
        self.histogram_memo.put(name, idx);
        idx
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        let idx = self.counter_slot(name);
        self.counter_vals[idx] += by;
    }

    /// Sets the named counter to an absolute value. For cumulative values
    /// maintained elsewhere (e.g. instructions retired per core) that the
    /// epoch sampler should see as a counter, not a gauge.
    pub fn set_counter(&mut self, name: &'static str, v: u64) {
        let idx = self.counter_slot(name);
        self.counter_vals[idx] = v;
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        let idx = self.histogram_slot(name);
        self.histogram_vals[idx].record(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .map_or(0, |&idx| self.counter_vals[idx])
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .map(|&idx| &self.histogram_vals[idx])
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters
            .iter()
            .map(|(k, &idx)| (*k, self.counter_vals[idx]))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms
            .iter()
            .map(|(k, &idx)| (*k, &self.histogram_vals[idx]))
    }

    /// Number of histograms holding at least one sample.
    pub fn nonzero_histograms(&self) -> usize {
        self.histogram_vals.iter().filter(|h| h.count() > 0).count()
    }

    /// Serializes the whole registry: counters and gauges verbatim,
    /// histograms as percentile summaries.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.counters() {
            counters.push(name, v);
        }
        let mut gauges = Json::obj();
        for (name, v) in &self.gauges {
            gauges.push(name, *v);
        }
        let mut histograms = Json::obj();
        for (name, h) in self.histograms() {
            let s = h.summary();
            let mut o = Json::obj();
            o.push("count", s.count)
                .push("sum", Json::F64(s.sum as f64))
                .push("min", s.min)
                .push("max", s.max)
                .push("mean", s.mean)
                .push("p50", s.p50)
                .push("p90", s.p90)
                .push("p99", s.p99);
            histograms.push(name, o);
        }
        let mut doc = Json::obj();
        doc.push("counters", counters)
            .push("gauges", gauges)
            .push("histograms", histograms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histograms_record_and_list() {
        let mut r = Registry::new();
        r.observe("h.one", 10);
        r.observe("h.one", 20);
        r.observe("h.two", 5);
        assert_eq!(r.histogram("h.one").unwrap().count(), 2);
        assert_eq!(r.nonzero_histograms(), 2);
        let names: Vec<_> = r.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["h.one", "h.two"]); // BTreeMap order
    }

    #[test]
    fn memo_eviction_keeps_values_correct() {
        // More distinct names than MEMO_SLOTS, revisited round-robin, so
        // the memo keeps evicting and every lookup path gets exercised.
        let names: [&'static str; 10] = [
            "m.a", "m.b", "m.c", "m.d", "m.e", "m.f", "m.g", "m.h", "m.i", "m.j",
        ];
        let mut r = Registry::new();
        for round in 0..3u64 {
            for (i, n) in names.iter().enumerate() {
                r.inc(n, i as u64 + round);
                r.observe(n, i as u64);
            }
        }
        for (i, n) in names.iter().enumerate() {
            assert_eq!(r.counter(n), 3 * i as u64 + 3);
            assert_eq!(r.histogram(n).unwrap().count(), 3);
        }
        // Iteration stays name-ordered regardless of insertion slots.
        let listed: Vec<_> = r.counters().map(|(n, _)| n).collect();
        let mut sorted = listed.clone();
        sorted.sort_unstable();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Registry::new();
        r.inc("c", 7);
        r.set_gauge("g", 0.5);
        r.observe("h", 100);
        let doc = r.to_json();
        assert_eq!(
            doc.get("counters").unwrap().get("c").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("p50").unwrap().as_f64(), Some(100.0));
        // Round-trips through our own parser.
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
