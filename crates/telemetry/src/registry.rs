//! Named-metric registry: counters, gauges, and log2 histograms.
//!
//! Metric names are `&'static str` dotted paths (`"mc.read_latency_ns"`),
//! stored in `BTreeMap`s so manifest output is deterministically ordered.

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;

/// Holds every named metric recorded during one simulation run.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets the named counter to an absolute value. For cumulative values
    /// maintained elsewhere (e.g. instructions retired per core) that the
    /// epoch sampler should see as a counter, not a gauge.
    pub fn set_counter(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Number of histograms holding at least one sample.
    pub fn nonzero_histograms(&self) -> usize {
        self.histograms.values().filter(|h| h.count() > 0).count()
    }

    /// Serializes the whole registry: counters and gauges verbatim,
    /// histograms as percentile summaries.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in &self.counters {
            counters.push(name, *v);
        }
        let mut gauges = Json::obj();
        for (name, v) in &self.gauges {
            gauges.push(name, *v);
        }
        let mut histograms = Json::obj();
        for (name, h) in &self.histograms {
            let s = h.summary();
            let mut o = Json::obj();
            o.push("count", s.count)
                .push("sum", Json::F64(s.sum as f64))
                .push("min", s.min)
                .push("max", s.max)
                .push("mean", s.mean)
                .push("p50", s.p50)
                .push("p90", s.p90)
                .push("p99", s.p99);
            histograms.push(name, o);
        }
        let mut doc = Json::obj();
        doc.push("counters", counters)
            .push("gauges", gauges)
            .push("histograms", histograms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histograms_record_and_list() {
        let mut r = Registry::new();
        r.observe("h.one", 10);
        r.observe("h.one", 20);
        r.observe("h.two", 5);
        assert_eq!(r.histogram("h.one").unwrap().count(), 2);
        assert_eq!(r.nonzero_histograms(), 2);
        let names: Vec<_> = r.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["h.one", "h.two"]); // BTreeMap order
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Registry::new();
        r.inc("c", 7);
        r.set_gauge("g", 0.5);
        r.observe("h", 100);
        let doc = r.to_json();
        assert_eq!(
            doc.get("counters").unwrap().get("c").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("p50").unwrap().as_f64(), Some(100.0));
        // Round-trips through our own parser.
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
