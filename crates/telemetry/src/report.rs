//! Self-contained HTML report rendering: page scaffold plus inline-SVG
//! chart builders (line chart, stacked bars, heatmap, sparkline).
//!
//! Everything is hand-rolled strings — no template engine, no JS, no
//! external CSS — so `results/report.html` opens anywhere, including from
//! a CI artifact zip. The bench layer owns *what* to plot (perf
//! trajectory, attribution buckets, attack matrix, epoch series); this
//! module owns only *how* to draw it.

/// Okabe–Ito colorblind-safe palette, cycled by series index.
const PALETTE: &[&str] = &[
    "#0072b2", "#e69f00", "#009e73", "#d55e00", "#cc79a7", "#56b4e9", "#f0e442", "#555555",
];

/// Escapes text for embedding in HTML/SVG element content or attributes.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Color for series `i`, cycling the palette.
pub fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Compact number formatting for axis labels: trims trailing zeros and
/// switches to engineering suffixes for large magnitudes.
pub fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// One named series of a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates, assumed x-sorted.
    pub points: Vec<(f64, f64)>,
}

fn bounds(series: &[Series]) -> Option<(f64, f64, f64, f64)> {
    let mut it = series.iter().flat_map(|s| s.points.iter().copied());
    let first = it.next()?;
    let mut b = (first.0, first.0, first.1, first.1);
    for (x, y) in it {
        b.0 = b.0.min(x);
        b.1 = b.1.max(x);
        b.2 = b.2.min(y);
        b.3 = b.3.max(y);
    }
    Some(b)
}

/// A multi-series line chart with y gridlines, axis labels, and a legend.
/// `x_labels`, when given, override numeric x-axis tick text (one per
/// distinct integer x, e.g. git revisions along a trajectory).
pub fn line_chart(series: &[Series], y_label: &str, x_labels: &[String]) -> String {
    let (w, h, ml, mr, mt, mb) = (720.0, 260.0, 64.0, 12.0, 12.0, 42.0);
    let Some((x0, x1, y0, y1)) = bounds(series) else {
        return "<p class=\"empty\">no data</p>".to_string();
    };
    let (x0, x1) = if x0 == x1 {
        (x0 - 0.5, x1 + 0.5)
    } else {
        (x0, x1)
    };
    // Always include zero in the y range so trends aren't exaggerated.
    let (y0, y1) = (y0.min(0.0), if y1 == y0 { y0 + 1.0 } else { y1 });
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let sx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
    let sy = |y: f64| mt + (1.0 - (y - y0) / (y1 - y0)) * ph;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
         font-family=\"sans-serif\" font-size=\"11\" role=\"img\">\n"
    );
    // Horizontal gridlines with y tick labels.
    for i in 0..=4 {
        let y = y0 + (y1 - y0) * f64::from(i) / 4.0;
        let yy = sy(y);
        svg.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\" \
             stroke=\"#ddd\"/><text x=\"{:.1}\" y=\"{:.1}\" \
             text-anchor=\"end\" fill=\"#555\">{}</text>\n",
            w - mr,
            ml - 6.0,
            yy + 4.0,
            esc(&fmt_num(y))
        ));
    }
    // X tick labels: explicit strings at integer x, else numeric min/max.
    if x_labels.is_empty() {
        for (x, anchor) in [(x0, "start"), (x1, "end")] {
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"{anchor}\" \
                 fill=\"#555\">{}</text>\n",
                sx(x),
                h - mb + 16.0,
                esc(&fmt_num(x))
            ));
        }
    } else {
        for (i, label) in x_labels.iter().enumerate() {
            let x = i as f64;
            if x < x0 || x > x1 {
                continue;
            }
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
                 fill=\"#555\">{}</text>\n",
                sx(x),
                h - mb + 16.0,
                esc(label)
            ));
        }
    }
    // Y axis label.
    svg.push_str(&format!(
        "<text x=\"14\" y=\"{:.1}\" transform=\"rotate(-90 14 {:.1})\" \
         text-anchor=\"middle\" fill=\"#333\">{}</text>\n",
        mt + ph / 2.0,
        mt + ph / 2.0,
        esc(y_label)
    ));
    for (i, s) in series.iter().enumerate() {
        let c = color(i);
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{c}\" stroke-width=\"1.8\"/>\n",
            pts.join(" ")
        ));
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{c}\">\
                 <title>{}: ({}, {})</title></circle>\n",
                sx(x),
                sy(y),
                esc(&s.name),
                esc(&fmt_num(x)),
                esc(&fmt_num(y))
            ));
        }
        // Legend swatch row in the top-right corner.
        let ly = mt + 14.0 * i as f64 + 4.0;
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{ly:.1}\" width=\"10\" height=\"10\" fill=\"{c}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" fill=\"#333\">{}</text>\n",
            w - mr - 150.0,
            w - mr - 136.0,
            ly + 9.0,
            esc(&s.name)
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Horizontal 100%-stacked bars, one row per `(label, values)` entry, with
/// a shared legend. Rows whose values sum to zero render as empty tracks.
pub fn stacked_bars(rows: &[(String, Vec<f64>)], legend: &[&str]) -> String {
    if rows.is_empty() {
        return "<p class=\"empty\">no data</p>".to_string();
    }
    let (w, row_h, ml, mr) = (720.0, 22.0, 170.0, 12.0);
    let legend_h = 20.0;
    let h = rows.len() as f64 * row_h + legend_h + 8.0;
    let pw = w - ml - mr;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w} {h:.0}\" width=\"{w}\" height=\"{h:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\" role=\"img\">\n"
    );
    let mut lx = ml;
    for (i, name) in legend.iter().enumerate() {
        svg.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"3\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"12\" fill=\"#333\">{}</text>\n",
            color(i),
            lx + 14.0,
            esc(name)
        ));
        lx += 14.0 + 7.0 * name.len() as f64 + 16.0;
    }
    for (r, (label, values)) in rows.iter().enumerate() {
        let y = legend_h + r as f64 * row_h + 4.0;
        let total: f64 = values.iter().sum();
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" fill=\"#333\">{}</text>\n",
            ml - 8.0,
            y + 12.0,
            esc(label)
        ));
        let mut x = ml;
        if total > 0.0 {
            for (i, &v) in values.iter().enumerate() {
                let bw = v / total * pw;
                if bw <= 0.0 {
                    continue;
                }
                let pct = v / total * 100.0;
                svg.push_str(&format!(
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bw:.1}\" height=\"16\" \
                     fill=\"{}\"><title>{}: {pct:.1}%</title></rect>\n",
                    color(i),
                    esc(legend.get(i).unwrap_or(&"?")),
                ));
                x += bw;
            }
        } else {
            svg.push_str(&format!(
                "<rect x=\"{ml}\" y=\"{y:.1}\" width=\"{pw}\" height=\"16\" \
                 fill=\"#f2f2f2\"/>\n"
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

/// A heatmap of `values[row][col]` in `[0, 1]`; `None` cells render gray.
/// Used for the attack-matrix success-probability grid.
pub fn heatmap(
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<Option<f64>>],
) -> String {
    if row_labels.is_empty() || col_labels.is_empty() {
        return "<p class=\"empty\">no data</p>".to_string();
    }
    let (cell_w, cell_h, ml, mt) = (72.0, 24.0, 190.0, 64.0);
    let w = ml + col_labels.len() as f64 * cell_w + 12.0;
    let h = mt + row_labels.len() as f64 * cell_h + 8.0;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\" role=\"img\">\n"
    );
    for (c, label) in col_labels.iter().enumerate() {
        let x = ml + (c as f64 + 0.5) * cell_w;
        svg.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"start\" fill=\"#333\" \
             transform=\"rotate(-35 {x:.1} {:.1})\">{}</text>\n",
            mt - 10.0,
            mt - 10.0,
            esc(label)
        ));
    }
    for (r, label) in row_labels.iter().enumerate() {
        let y = mt + (r as f64 + 0.5) * cell_h;
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" fill=\"#333\">{}</text>\n",
            ml - 8.0,
            y + 4.0,
            esc(label)
        ));
        for c in 0..col_labels.len() {
            let v = values.get(r).and_then(|row| row.get(c).copied()).flatten();
            let x = ml + c as f64 * cell_w;
            let yy = mt + r as f64 * cell_h;
            match v {
                Some(p) => {
                    let p = p.clamp(0.0, 1.0);
                    // White (0.0, attack defeated) to deep red (1.0).
                    let (g, b) = ((255.0 - 215.0 * p) as u8, (255.0 - 225.0 * p) as u8);
                    let text_fill = if p > 0.55 { "#fff" } else { "#333" };
                    svg.push_str(&format!(
                        "<rect x=\"{x:.1}\" y=\"{yy:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                         fill=\"rgb(255,{g},{b})\" stroke=\"#ccc\"/>\
                         <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
                         fill=\"{text_fill}\">{p:.2}</text>\n",
                        cell_w - 1.0,
                        cell_h - 1.0,
                        x + cell_w / 2.0,
                        yy + cell_h / 2.0 + 4.0,
                    ));
                }
                None => svg.push_str(&format!(
                    "<rect x=\"{x:.1}\" y=\"{yy:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                     fill=\"#eee\" stroke=\"#ccc\"/>\n",
                    cell_w - 1.0,
                    cell_h - 1.0,
                )),
            }
        }
    }
    svg.push_str("</svg>");
    svg
}

/// A small inline sparkline of `values` against their index.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return "<span class=\"empty\">–</span>".to_string();
    }
    let (w, h, pad) = (160.0, 28.0, 2.0);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi == lo {
        hi = lo + 1.0;
    }
    let n = values.len().max(2) as f64 - 1.0;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let x = pad + i as f64 / n * (w - 2.0 * pad);
            let y = pad + (1.0 - (v - lo) / (hi - lo)) * (h - 2.0 * pad);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.4\"/></svg>",
        pts.join(" "),
        PALETTE[0]
    )
}

/// Accumulates titled sections into one standalone HTML page.
#[derive(Debug, Default)]
pub struct HtmlReport {
    title: String,
    subtitle: String,
    sections: Vec<(String, String)>,
}

impl HtmlReport {
    /// A new report page titled `title`.
    pub fn new(title: &str) -> Self {
        HtmlReport {
            title: title.to_string(),
            ..Self::default()
        }
    }

    /// Sets the dimmed provenance line under the page title (already-built
    /// HTML is not accepted; the text is escaped).
    pub fn subtitle(&mut self, text: &str) -> &mut Self {
        self.subtitle = esc(text);
        self
    }

    /// Appends a section; `body_html` is trusted markup from this module's
    /// own builders (escape any data-derived text with [`esc`]).
    pub fn section(&mut self, title: &str, body_html: &str) -> &mut Self {
        self.sections.push((esc(title), body_html.to_string()));
        self
    }

    /// Renders the full page.
    pub fn finish(&self) -> String {
        let mut body = String::new();
        for (title, html) in &self.sections {
            body.push_str(&format!(
                "<section>\n<h2>{title}</h2>\n{html}\n</section>\n"
            ));
        }
        format!(
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
             <title>{title}</title>\n<style>\n\
             body{{font-family:sans-serif;margin:24px auto;max-width:860px;color:#222}}\n\
             h1{{font-size:22px;margin-bottom:2px}}\n\
             h2{{font-size:16px;border-bottom:1px solid #ddd;padding-bottom:4px}}\n\
             .sub{{color:#777;font-size:12px;margin-top:0}}\n\
             .empty{{color:#999;font-style:italic}}\n\
             table{{border-collapse:collapse;font-size:12px}}\n\
             td,th{{border:1px solid #ddd;padding:3px 8px;text-align:right}}\n\
             th{{background:#f5f5f5}}\n\
             td:first-child,th:first-child{{text-align:left}}\n\
             section{{margin-bottom:28px}}\n</style>\n</head>\n<body>\n\
             <h1>{title}</h1>\n<p class=\"sub\">{sub}</p>\n{body}</body>\n</html>\n",
            title = esc(&self.title),
            sub = self.subtitle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_html_metacharacters() {
        assert_eq!(esc("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
    }

    #[test]
    fn line_chart_renders_points_and_legend() {
        let s = vec![Series {
            name: "suite".to_string(),
            points: vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)],
        }];
        let svg = line_chart(
            &s,
            "secs",
            &["a".to_string(), "b".to_string(), "c".to_string()],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("suite"));
        assert!(svg.ends_with("</svg>"));
        assert!(line_chart(&[], "secs", &[]).contains("no data"));
    }

    #[test]
    fn stacked_bars_normalize_to_full_width() {
        let rows = vec![("mirza/lbm".to_string(), vec![3.0, 1.0])];
        let svg = stacked_bars(&rows, &["queue", "refresh"]);
        assert!(svg.contains("75.0%"));
        assert!(svg.contains("25.0%"));
        // Zero rows render an empty track, not a panic.
        let svg = stacked_bars(&[("x".to_string(), vec![0.0, 0.0])], &["a", "b"]);
        assert!(svg.contains("#f2f2f2"));
    }

    #[test]
    fn heatmap_marks_missing_cells_gray() {
        let svg = heatmap(
            &["feint".to_string()],
            &["mirza".to_string(), "trr".to_string()],
            &[vec![Some(0.75), None]],
        );
        assert!(svg.contains("0.75"));
        assert!(svg.contains("#eee"));
    }

    #[test]
    fn sparkline_handles_flat_and_empty_series() {
        assert!(sparkline(&[]).contains("empty"));
        assert!(sparkline(&[5.0, 5.0, 5.0]).contains("polyline"));
    }

    #[test]
    fn page_scaffold_is_standalone_html() {
        let mut r = HtmlReport::new("MIRZA run report");
        r.subtitle("rev abc123 · linux/x86_64");
        r.section("Perf trajectory", "<p>chart</p>");
        let html = r.finish();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h2>Perf trajectory</h2>"));
        assert!(html.contains("rev abc123"));
        assert!(html.ends_with("</html>\n"));
        // Titles are escaped.
        let mut r = HtmlReport::new("a<b");
        let html = r.section("x&y", "").finish();
        assert!(html.contains("a&lt;b") && html.contains("x&amp;y"));
    }
}
