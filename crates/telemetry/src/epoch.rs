//! Epoch time-series sampling with a bounded-memory coalescing reservoir.
//!
//! A [`EpochSampler`] snapshots every registered counter and gauge at fixed
//! simulated-time boundaries (default 1 µs) and stores *per-epoch deltas*
//! for counters and point samples for gauges. Memory is bounded: when the
//! reservoir reaches its capacity, adjacent epochs are merged pairwise
//! (counter deltas summed, the later gauge sample kept) and the effective
//! epoch length doubles. Coalescing is purely a function of simulated time,
//! so two identical seeded runs produce byte-identical series.
//!
//! The series is emitted as compact JSONL (one epoch per line) and
//! summarized per series (min/mean/max/p99) for the run manifest. Counter
//! summaries are normalized to rates per simulated microsecond so they stay
//! comparable across coalescing levels; gauge summaries are over the raw
//! sampled values.

use crate::json::Json;
use crate::registry::Registry;
use std::collections::BTreeMap;

/// Default epoch length: 1 simulated microsecond.
pub const DEFAULT_EPOCH_PS: u64 = 1_000_000;

/// Default reservoir capacity (epochs retained before coalescing).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One retained epoch: counter deltas and gauge samples over `[t_ps -
/// dur_ps, t_ps]`. Zero counter deltas are not stored.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch end instant (simulated picoseconds).
    pub t_ps: u64,
    /// Epoch length; doubles as records coalesce.
    pub dur_ps: u64,
    /// Counter deltas over the epoch, name-sorted, zeros omitted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values sampled at the epoch boundary, name-sorted.
    pub gauges: Vec<(String, f64)>,
}

/// Bounded-memory sampler of registry counters/gauges at fixed simulated
/// epochs. Driven by [`EpochSampler::tick`] from the simulation loop; epoch
/// resolution is therefore limited to the loop's quantum.
#[derive(Debug)]
pub struct EpochSampler {
    epoch_ps: u64,
    cap: usize,
    next_at: u64,
    last_sample_at: u64,
    prev: BTreeMap<String, u64>,
    records: Vec<EpochRecord>,
}

impl EpochSampler {
    /// A sampler with the given epoch length (clamped to >= 1 ps) and the
    /// default reservoir capacity.
    pub fn new(epoch_ps: u64) -> Self {
        Self::with_capacity(epoch_ps, DEFAULT_CAPACITY)
    }

    /// A sampler with an explicit reservoir capacity (clamped to >= 2 and
    /// rounded down to even so pairwise coalescing always halves it).
    pub fn with_capacity(epoch_ps: u64, cap: usize) -> Self {
        let epoch_ps = epoch_ps.max(1);
        let cap = (cap.max(2) / 2) * 2;
        EpochSampler {
            epoch_ps,
            cap,
            next_at: epoch_ps,
            last_sample_at: 0,
            prev: BTreeMap::new(),
            records: Vec::new(),
        }
    }

    /// Current effective epoch length (doubles as the reservoir coalesces).
    pub fn epoch_ps(&self) -> u64 {
        self.epoch_ps
    }

    /// Number of retained epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no epochs have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The retained epochs, oldest first.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Advances simulated time to `t_ps`, emitting one record per epoch
    /// boundary crossed since the last call.
    pub fn tick(&mut self, t_ps: u64, reg: &Registry) {
        while t_ps >= self.next_at {
            let at = self.next_at;
            self.sample(at, reg);
            self.next_at += self.epoch_ps;
        }
    }

    /// Closes the series at `t_ps`, emitting a final (possibly partial)
    /// epoch if time advanced past the last boundary.
    pub fn finish(&mut self, t_ps: u64, reg: &Registry) {
        self.tick(t_ps, reg);
        if t_ps > self.last_sample_at {
            self.sample(t_ps, reg);
        }
    }

    fn sample(&mut self, at: u64, reg: &Registry) {
        let mut counters = Vec::new();
        for (name, v) in reg.counters() {
            let prev = self.prev.get(name).copied().unwrap_or(0);
            // set_counter may (pathologically) move a value backwards;
            // clamp rather than wrap so the series stays well-formed.
            let delta = v.saturating_sub(prev);
            self.prev.insert(name.to_string(), v);
            if delta > 0 {
                counters.push((name.to_string(), delta));
            }
        }
        let gauges: Vec<(String, f64)> = reg.gauges().map(|(n, v)| (n.to_string(), v)).collect();
        let dur_ps = at - self.last_sample_at;
        self.last_sample_at = at;
        self.records.push(EpochRecord {
            t_ps: at,
            dur_ps,
            counters,
            gauges,
        });
        if self.records.len() >= self.cap {
            self.coalesce();
        }
    }

    /// Merges adjacent record pairs: deltas sum, durations add, and the
    /// later gauge sample wins. An odd trailing record is kept as-is.
    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.records.len() / 2 + 1);
        let mut it = self.records.drain(..);
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
                    for (k, v) in a.counters.into_iter().chain(b.counters) {
                        *sums.entry(k).or_insert(0) += v;
                    }
                    merged.push(EpochRecord {
                        t_ps: b.t_ps,
                        dur_ps: a.dur_ps + b.dur_ps,
                        counters: sums.into_iter().collect(),
                        gauges: b.gauges,
                    });
                }
                None => merged.push(a),
            }
        }
        drop(it);
        self.records = merged;
        self.epoch_ps *= 2;
    }

    /// The series as compact JSONL, one epoch per line:
    /// `{"t_ps":..,"dur_ps":..,"counters":{..},"gauges":{..}}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let mut counters = Json::obj();
            for (k, v) in &r.counters {
                counters.push(k, *v);
            }
            let mut gauges = Json::obj();
            for (k, v) in &r.gauges {
                gauges.push(k, *v);
            }
            let mut doc = Json::obj();
            doc.push("t_ps", r.t_ps)
                .push("dur_ps", r.dur_ps)
                .push("counters", counters)
                .push("gauges", gauges);
            out.push_str(&doc.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Per-series summaries for the manifest. Counter series are reported
    /// as rates per simulated microsecond (min/mean/max/p99 over epochs;
    /// the mean is duration-weighted, i.e. total delta over total time).
    /// Gauge series summarize the raw sampled values.
    pub fn summary_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("epoch_ps", self.epoch_ps)
            .push("epochs", self.records.len() as u64);

        // Counter rates: a record where a series is absent contributes a
        // zero-rate epoch, so bursty series summarize correctly.
        let mut names: Vec<&str> = Vec::new();
        for r in &self.records {
            for (k, _) in &r.counters {
                if !names.contains(&k.as_str()) {
                    names.push(k);
                }
            }
        }
        names.sort_unstable();
        let mut counters = Json::obj();
        for name in names {
            let mut rates = Vec::with_capacity(self.records.len());
            let mut total_delta = 0u64;
            let mut total_dur = 0u64;
            for r in &self.records {
                let delta = r
                    .counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .map_or(0, |(_, v)| *v);
                total_delta += delta;
                total_dur += r.dur_ps;
                rates.push(delta as f64 * 1e6 / r.dur_ps as f64);
            }
            let mean = total_delta as f64 * 1e6 / total_dur as f64;
            counters.push(name, series_stats(&rates, mean, "per_us"));
        }
        doc.push("counters", counters);

        let mut gnames: Vec<&str> = Vec::new();
        for r in &self.records {
            for (k, _) in &r.gauges {
                if !gnames.contains(&k.as_str()) {
                    gnames.push(k);
                }
            }
        }
        gnames.sort_unstable();
        let mut gauges = Json::obj();
        for name in gnames {
            let vals: Vec<f64> = self
                .records
                .iter()
                .filter_map(|r| r.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            gauges.push(name, series_stats(&vals, mean, "value"));
        }
        doc.push("gauges", gauges);
        doc
    }
}

/// `{min, mean, max, p99, unit}` over a series; `mean` is supplied by the
/// caller (duration-weighted for rates, arithmetic for gauges).
fn series_stats(vals: &[f64], mean: f64, unit: &str) -> Json {
    let mut sorted: Vec<f64> = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in series"));
    let n = sorted.len();
    let p99 = sorted[((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1];
    let mut o = Json::obj();
    o.push("min", sorted[0])
        .push("mean", mean)
        .push("max", sorted[n - 1])
        .push("p99", p99)
        .push("unit", unit);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counter: u64, gauge: f64) -> Registry {
        let mut r = Registry::new();
        r.inc("c.acts", counter);
        r.set_gauge("g.depth", gauge);
        r
    }

    #[test]
    fn deltas_not_totals() {
        let mut s = EpochSampler::new(100);
        let mut r = Registry::new();
        r.inc("c", 5);
        s.tick(100, &r);
        r.inc("c", 3);
        s.tick(200, &r);
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].counters, vec![("c".to_string(), 5)]);
        assert_eq!(s.records()[1].counters, vec![("c".to_string(), 3)]);
        assert_eq!(s.records()[1].t_ps, 200);
        assert_eq!(s.records()[1].dur_ps, 100);
    }

    #[test]
    fn tick_emits_every_crossed_boundary() {
        let mut s = EpochSampler::new(100);
        let r = reg_with(1, 2.0);
        s.tick(350, &r); // crosses 100, 200, 300
        assert_eq!(s.records().len(), 3);
        // Only the first epoch carries the delta; later ones are empty.
        assert_eq!(s.records()[0].counters.len(), 1);
        assert!(s.records()[1].counters.is_empty());
        // Gauges are sampled on every record.
        assert_eq!(s.records()[2].gauges, vec![("g.depth".to_string(), 2.0)]);
    }

    #[test]
    fn finish_emits_partial_epoch() {
        let mut s = EpochSampler::new(100);
        let r = reg_with(4, 0.0);
        s.finish(250, &r);
        assert_eq!(s.records().len(), 3);
        let last = &s.records()[2];
        assert_eq!(last.t_ps, 250);
        assert_eq!(last.dur_ps, 50);
    }

    #[test]
    fn coalescing_bounds_memory_and_preserves_totals() {
        let mut s = EpochSampler::with_capacity(10, 8);
        let mut r = Registry::new();
        for i in 1..=100u64 {
            r.inc("c", 2);
            s.tick(i * 10, &r);
        }
        s.finish(1000, &r);
        assert!(s.len() < 8, "reservoir stayed bounded: {}", s.len());
        assert!(s.epoch_ps() > 10, "epoch length doubled");
        let total: u64 = s
            .records()
            .iter()
            .flat_map(|rec| rec.counters.iter())
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, 200, "counter mass preserved across coalescing");
        let dur: u64 = s.records().iter().map(|rec| rec.dur_ps).sum();
        assert_eq!(dur, 1000, "time coverage preserved");
    }

    #[test]
    fn identical_inputs_identical_jsonl() {
        let run = || {
            let mut s = EpochSampler::with_capacity(10, 4);
            let mut r = Registry::new();
            for i in 1..=50u64 {
                r.inc("c", i % 3);
                r.set_gauge("g", (i % 7) as f64);
                s.tick(i * 10, &r);
            }
            s.finish(505, &r);
            s.to_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for line in a.lines() {
            Json::parse(line).expect("every epoch line parses");
        }
    }

    #[test]
    fn summary_reports_rates_per_us() {
        let mut s = EpochSampler::new(1_000_000); // 1 us epochs
        let mut r = Registry::new();
        r.inc("c", 10);
        s.tick(1_000_000, &r);
        r.inc("c", 30);
        s.tick(2_000_000, &r);
        let sum = s.summary_json();
        let c = sum.get("counters").unwrap().get("c").unwrap();
        assert_eq!(c.get("min").unwrap().as_f64(), Some(10.0));
        assert_eq!(c.get("max").unwrap().as_f64(), Some(30.0));
        assert_eq!(c.get("mean").unwrap().as_f64(), Some(20.0));
        assert_eq!(sum.get("epochs").unwrap().as_u64(), Some(2));
    }
}
