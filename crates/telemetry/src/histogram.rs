//! Log2-bucketed histograms with percentile estimation.
//!
//! Values are `u64` (the simulator records picoseconds, nanoseconds, queue
//! depths and counts). Bucket 0 holds exactly the value 0; bucket `i >= 1`
//! holds `[2^(i-1), 2^i - 1]`. Percentiles interpolate linearly inside a
//! bucket and are clamped to the observed `[min, max]`, so a histogram fed
//! a single distinct value reports that value exactly.

/// Number of buckets: one for zero plus one per power of two up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The index of the bucket holding `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value bounds `(lo, hi)` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples recorded in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside the
    /// containing bucket and clamped to the observed range. 0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        // 1-based rank of the sample that bounds the quantile from above.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let into = (rank - seen - 1) as f64 / c as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Merges `other` into `self` (used to aggregate sub-channels).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A compact summary (for manifests and log lines).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// Percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u128,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn counts_sum_min_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_count(0), 1); // the zero
        assert_eq!(h.bucket_count(1), 1); // the one
        assert_eq!(h.bucket_count(3), 2); // the fives
        assert_eq!(h.bucket_count(10), 1); // 1000 in [512, 1023]
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 777.0, "q={q}");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bracketed() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Log2 buckets: the median of 1..=1000 (500) lies in [256, 511].
        assert!((256.0..=511.0).contains(&p50), "p50={p50}");
        assert!((512.0..=1000.0).contains(&p90), "p90={p90}");
        assert!((512.0..=1000.0).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(1.0), 1000.0);
    }

    #[test]
    fn merge_is_the_sum_of_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 306);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
    }

    #[test]
    fn summary_carries_all_fields() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 60);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!(s.p50 >= 10.0 && s.p99 <= 30.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_quantile() {
        let _ = Histogram::new().percentile(1.5);
    }
}
