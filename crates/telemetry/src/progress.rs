//! Locked stderr progress lines.
//!
//! Heartbeats, "running <key>"-style status lines, and pool progress all
//! land on stderr. Serial code could `eprintln!` freely, but parallel sweep
//! workers racing the same stream can splice partial lines together. This
//! module is the one shared chokepoint: a process-wide mutex plus a single
//! `write_all` per line, so concurrent emitters interleave only at line
//! granularity. (The lock is writer-side, here — call sites never manage
//! their own.)
//!
//! `std::io::Stderr` is itself line-locked per call, but formatting through
//! `eprintln!` may issue several writes for one logical line; routing
//! through [`line`] closes that gap and gives non-stderr consumers (tests)
//! a capture hook.

use std::io::Write;
use std::sync::Mutex;

static PROGRESS: Mutex<()> = Mutex::new(());

/// Writes one complete progress line to stderr, atomically with respect to
/// every other [`line`] caller in the process.
pub fn line(text: &str) {
    let mut buf = String::with_capacity(text.len() + 1);
    buf.push_str(text);
    buf.push('\n');
    let _guard = PROGRESS.lock().expect("progress mutex poisoned");
    let _ = std::io::stderr().write_all(buf.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    // Deadlock smoke only — stderr writes bypass the test harness's output
    // capture, so keep the noise to one line per thread.
    #[test]
    fn concurrent_lines_do_not_deadlock() {
        std::thread::scope(|scope| {
            for w in 0..2 {
                scope.spawn(move || line(&format!("progress-test worker {w}")));
            }
        });
    }
}
