//! Canonical telemetry names.
//!
//! Every counter, gauge, histogram, and structured-event kind the simulator
//! records is declared here as a `&'static str` constant, so call sites in
//! dram/memctrl/core/sim/bench share one spelling and the unit tests below
//! can reject duplicates and malformed names. Manifest consumers (epoch
//! streams, `scripts/*.py`, EXPERIMENTS.md) key on these exact strings —
//! renaming one is a manifest-schema change.
//!
//! Naming convention: `<component>.<metric>` in `[a-z0-9_.]`, where the
//! component prefix is one of the registered set in
//! [`METRIC_COMPONENTS`]. Event kinds are bare `[a-z0-9_]` words.

// --- Memory-controller metrics (memctrl::controller) ---

/// Histogram: queue occupancy sampled at each enqueue.
pub const MC_QUEUE_OCCUPANCY: &str = "mc.queue_occupancy";
/// Histogram: length of each row-buffer hit streak.
pub const MC_ROW_HIT_RUN: &str = "mc.row_hit_run";
/// Counter: read requests completed.
pub const MC_READS: &str = "mc.reads";
/// Counter: write requests completed.
pub const MC_WRITES: &str = "mc.writes";
/// Histogram: read latency (arrival to data) in nanoseconds.
pub const MC_READ_LATENCY_NS: &str = "mc.read_latency_ns";
/// Counter: ACT commands issued.
pub const MC_ACTS: &str = "mc.acts";
/// Counter: REF commands issued.
pub const MC_REFS: &str = "mc.refs";
/// Histogram: ALERT service stall (observe to RFM issue) in nanoseconds.
pub const MC_ALERT_STALL_NS: &str = "mc.alert_stall_ns";
/// Counter: ALERT back-offs serviced.
pub const MC_ALERTS: &str = "mc.alerts";
/// Counter: proactive RFMs issued.
pub const MC_RFMS: &str = "mc.rfms";
/// Gauge: outstanding requests across all bank queues (epoch input).
pub const MC_QUEUE_DEPTH: &str = "mc.queue_depth";

// --- Hot-path opportunity counters (memctrl::controller, sim::system) ---
//
// Armed with `Telemetry::with_opportunity`; they size the residual waste
// left in the event-driven core (ROADMAP item 2). A "pass" is one
// `run_until` call — the system's inner progress loop makes at least one
// per visited quantum per controller.

/// Counter: scheduler passes (`run_until` calls) executed.
pub const MC_OPP_SCHED_PASSES: &str = "mc.opp_sched_passes";
/// Counter: scheduler passes that issued zero commands — under the event
/// core, windows visited that held no device event.
pub const MC_OPP_IDLE_PASSES: &str = "mc.opp_idle_passes";
/// Histogram: commands issued per scheduler pass.
pub const MC_OPP_CMDS_PER_PASS: &str = "mc.opp_cmds_per_pass";
/// Histogram: gap from the window end to the next pending command's legal
/// instant, in nanoseconds — the time a next-event loop could skip.
pub const MC_OPP_SKIP_GAP_NS: &str = "mc.opp_skip_gap_ns";

// --- Device metrics (dram::device, sim::system) ---

/// Gauge: banks with an open row (epoch input).
pub const DRAM_OPEN_BANKS: &str = "dram.open_banks";
/// Histogram: end-of-run ACT count per (bank, subarray).
pub const DRAM_ACTS_PER_SUBARRAY: &str = "dram.acts_per_subarray";

// --- System metrics (sim::system) ---

/// Counter: instructions retired across all cores (epoch input).
pub const SIM_INSTRUCTIONS: &str = "sim.instructions";
/// Gauge: simulated time at end of run, in milliseconds.
pub const SIM_ELAPSED_MS: &str = "sim.elapsed_ms";
/// Histogram: simulated time the event loop actually jumped past quantum
/// boundaries with every core blocked, in nanoseconds per skip.
pub const SIM_OPP_SKIP_TAKEN_NS: &str = "sim.opp_skip_taken_ns";

// --- LLC metrics (sim::system) ---

/// Gauge: end-of-run LLC hit rate.
pub const LLC_HIT_RATE: &str = "llc.hit_rate";

// --- Frontend core metrics (sim::system, from frontend::core) ---

/// Counter: time cores spent stalled on a full MSHR, in picoseconds.
pub const CORE_MSHR_STALL_PS: &str = "core.mshr_stall_ps";
/// Counter: time cores spent stalled on the ROB-limit load, in picoseconds.
pub const CORE_ROB_STALL_PS: &str = "core.rob_stall_ps";

/// Counters: per-core retired instructions (epoch inputs). Static names so
/// per-core series need no allocation; cores past this table still count
/// toward [`SIM_INSTRUCTIONS`].
pub const CORE_INSTR: [&str; 16] = [
    "core00.instructions",
    "core01.instructions",
    "core02.instructions",
    "core03.instructions",
    "core04.instructions",
    "core05.instructions",
    "core06.instructions",
    "core07.instructions",
    "core08.instructions",
    "core09.instructions",
    "core10.instructions",
    "core11.instructions",
    "core12.instructions",
    "core13.instructions",
    "core14.instructions",
    "core15.instructions",
];

// --- Protocol auditor metrics (dram::audit) ---

/// Counter: protocol violations the shadow auditor flagged.
pub const AUDIT_VIOLATIONS: &str = "audit.violations";
/// Counter (absolute): maximum per-row ACT census across devices.
pub const AUDIT_MAX_ROW_ACTS: &str = "audit.max_row_acts";

// --- Fault-injection metrics (sim::faults) ---

/// Counter: fault injections attempted.
pub const FAULTS_ATTEMPTED: &str = "faults.attempted";
/// Counter: fault injections that changed state.
pub const FAULTS_INJECTED: &str = "faults.injected";

// --- MIRZA engine metrics (core::mirza) ---

/// Gauge: maximum RCT counter value at the last reset scan.
pub const RCT_MAX: &str = "rct.max";
/// Gauge: mean RCT counter value at the last reset scan.
pub const RCT_MEAN: &str = "rct.mean";
/// Counter: mitigations performed by the MIRZA engine.
pub const MIRZA_MITIGATIONS: &str = "mirza.mitigations";
/// Histogram: MIRZA-Q occupancy when an entry drains.
pub const MIRZAQ_OCCUPANCY_AT_DRAIN: &str = "mirzaq.occupancy_at_drain";
/// Histogram: MIRZA-Q entry tardiness (count) when it drains.
pub const MIRZAQ_TARDINESS_AT_DRAIN: &str = "mirzaq.tardiness_at_drain";

// --- Supervised work-pool metrics (mirza-runner, recorded reducer-side) ---

/// Gauge (as counter): worker slots the pool actually spawned.
pub const RUNNER_WORKERS: &str = "runner.workers";
/// Counter: cells that completed successfully.
pub const RUNNER_CELLS_COMPLETED: &str = "runner.cells_completed";
/// Counter: retry attempts scheduled beyond first attempts.
pub const RUNNER_CELLS_RETRIED: &str = "runner.cells_retried";
/// Counter: cells that failed after supervision (exhausted retries or
/// deterministic errors).
pub const RUNNER_CELLS_FAILED: &str = "runner.cells_failed";
/// Counter: cells replayed from a checkpoint journal instead of re-run.
pub const RUNNER_CELLS_RESUMED: &str = "runner.cells_resumed";
/// Histogram: per-cell wall clock, in microseconds.
pub const RUNNER_CELL_WALL_US: &str = "runner.cell_wall_us";

/// Counters: cells executed per worker slot (first 8 slots get named
/// series, mirroring [`CORE_INSTR`]; slots past the table still count
/// toward [`RUNNER_CELLS_COMPLETED`]).
pub const RUNNER_WORKER_CELLS: [&str; 8] = [
    "worker00.cells",
    "worker01.cells",
    "worker02.cells",
    "worker03.cells",
    "worker04.cells",
    "worker05.cells",
    "worker06.cells",
    "worker07.cells",
];

// --- Structured event kinds ---

/// The device asserted ALERT_n and the controller observed it.
pub const EV_ALERT_RAISED: &str = "alert_raised";
/// The controller finished servicing an ALERT back-off.
pub const EV_ALERT_CLEARED: &str = "alert_cleared";
/// A proactive RFM was issued.
pub const EV_RFM_ISSUED: &str = "rfm_issued";
/// The refresh pointer wrapped a full pass over the rows.
pub const EV_REFRESH_POINTER_WRAP: &str = "refresh_pointer_wrap";
/// The MIRZA mitigation queue overflowed into an ALERT request.
pub const EV_MIRZAQ_OVERFLOW: &str = "mirzaq_overflow";
/// The shadow auditor flagged an inter-command constraint violation.
pub const EV_PROTOCOL_VIOLATION: &str = "protocol_violation";
/// The fault injector changed simulator state.
pub const EV_FAULT_INJECTED: &str = "fault_injected";
/// One attack-matrix cell completed.
pub const EV_ATTACK_CELL: &str = "attack_cell";
/// A supervised sweep cell failed after retries (panic, watchdog, or
/// deterministic error); the campaign continued degraded.
pub const EV_CELL_FAILED: &str = "cell_failed";

/// Component prefixes a metric name may carry (`<component>.<metric>`).
pub const METRIC_COMPONENTS: &[&str] = &[
    "mc", "dram", "sim", "llc", "core", "audit", "faults", "rct", "mirza", "mirzaq", "runner",
    "core00", "core01", "core02", "core03", "core04", "core05", "core06", "core07", "core08",
    "core09", "core10", "core11", "core12", "core13", "core14", "core15", "worker00", "worker01",
    "worker02", "worker03", "worker04", "worker05", "worker06", "worker07",
];

/// Every registered metric name (used by the uniqueness test and by tools
/// that want to validate manifests against the known schema).
pub const ALL_METRICS: &[&str] = &[
    MC_QUEUE_OCCUPANCY,
    MC_ROW_HIT_RUN,
    MC_READS,
    MC_WRITES,
    MC_READ_LATENCY_NS,
    MC_ACTS,
    MC_REFS,
    MC_ALERT_STALL_NS,
    MC_ALERTS,
    MC_RFMS,
    MC_QUEUE_DEPTH,
    MC_OPP_SCHED_PASSES,
    MC_OPP_IDLE_PASSES,
    MC_OPP_CMDS_PER_PASS,
    MC_OPP_SKIP_GAP_NS,
    DRAM_OPEN_BANKS,
    DRAM_ACTS_PER_SUBARRAY,
    SIM_INSTRUCTIONS,
    SIM_ELAPSED_MS,
    SIM_OPP_SKIP_TAKEN_NS,
    LLC_HIT_RATE,
    CORE_MSHR_STALL_PS,
    CORE_ROB_STALL_PS,
    CORE_INSTR[0],
    CORE_INSTR[1],
    CORE_INSTR[2],
    CORE_INSTR[3],
    CORE_INSTR[4],
    CORE_INSTR[5],
    CORE_INSTR[6],
    CORE_INSTR[7],
    CORE_INSTR[8],
    CORE_INSTR[9],
    CORE_INSTR[10],
    CORE_INSTR[11],
    CORE_INSTR[12],
    CORE_INSTR[13],
    CORE_INSTR[14],
    CORE_INSTR[15],
    AUDIT_VIOLATIONS,
    AUDIT_MAX_ROW_ACTS,
    FAULTS_ATTEMPTED,
    FAULTS_INJECTED,
    RCT_MAX,
    RCT_MEAN,
    MIRZA_MITIGATIONS,
    MIRZAQ_OCCUPANCY_AT_DRAIN,
    MIRZAQ_TARDINESS_AT_DRAIN,
    RUNNER_WORKERS,
    RUNNER_CELLS_COMPLETED,
    RUNNER_CELLS_RETRIED,
    RUNNER_CELLS_FAILED,
    RUNNER_CELLS_RESUMED,
    RUNNER_CELL_WALL_US,
    RUNNER_WORKER_CELLS[0],
    RUNNER_WORKER_CELLS[1],
    RUNNER_WORKER_CELLS[2],
    RUNNER_WORKER_CELLS[3],
    RUNNER_WORKER_CELLS[4],
    RUNNER_WORKER_CELLS[5],
    RUNNER_WORKER_CELLS[6],
    RUNNER_WORKER_CELLS[7],
];

/// Every registered structured-event kind.
pub const ALL_EVENTS: &[&str] = &[
    EV_ALERT_RAISED,
    EV_ALERT_CLEARED,
    EV_RFM_ISSUED,
    EV_REFRESH_POINTER_WRAP,
    EV_MIRZAQ_OVERFLOW,
    EV_PROTOCOL_VIOLATION,
    EV_FAULT_INJECTED,
    EV_ATTACK_CELL,
    EV_CELL_FAILED,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn well_formed(name: &str, allow_dot: bool) -> bool {
        !name.is_empty()
            && !name.starts_with(['.', '_'])
            && !name.ends_with(['.', '_'])
            && name.chars().all(|c| {
                c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || (allow_dot && c == '.')
            })
    }

    #[test]
    fn metric_names_are_unique() {
        let set: BTreeSet<&str> = ALL_METRICS.iter().copied().collect();
        assert_eq!(set.len(), ALL_METRICS.len(), "duplicate metric name");
    }

    #[test]
    fn event_kinds_are_unique_and_distinct_from_metrics() {
        let set: BTreeSet<&str> = ALL_EVENTS.iter().copied().collect();
        assert_eq!(set.len(), ALL_EVENTS.len(), "duplicate event kind");
        for ev in ALL_EVENTS {
            assert!(
                !ALL_METRICS.contains(ev),
                "event kind {ev:?} collides with a metric name"
            );
        }
    }

    #[test]
    fn metric_names_carry_a_registered_component_prefix() {
        for name in ALL_METRICS {
            assert!(well_formed(name, true), "malformed metric name {name:?}");
            let (component, rest) = name
                .split_once('.')
                .unwrap_or_else(|| panic!("metric {name:?} lacks a component prefix"));
            assert!(
                METRIC_COMPONENTS.contains(&component),
                "metric {name:?} uses unregistered component {component:?}"
            );
            assert!(well_formed(rest, false), "malformed metric field {rest:?}");
        }
    }

    #[test]
    fn event_kinds_are_bare_words() {
        for ev in ALL_EVENTS {
            assert!(well_formed(ev, false), "malformed event kind {ev:?}");
        }
    }
}
