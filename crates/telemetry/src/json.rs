//! Hand-rolled JSON values, writer, and a minimal parser.
//!
//! The build environment has no crates.io access, so the telemetry layer
//! carries its own serialization instead of depending on serde. The writer
//! produces valid RFC 8259 output (non-finite floats become `null`); the
//! parser exists so tests and the manifest tooling can round-trip documents
//! without external tools.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (most simulator metrics).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; NaN/Inf serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key/value pair to an object (panics on non-objects).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, accepting any numeric representation that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as f64, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    /// Parses a JSON document (strict enough for round-tripping our output).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 always keeps a distinguishing fraction or exponent,
        // so integral floats print as e.g. `1.0` — wanted, it preserves
        // the number's type through a round-trip.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are never emitted by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-borrow as str to handle multi-byte UTF-8.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::F64(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::F64(2.0).to_string_compact(), "2.0");
    }

    #[test]
    fn object_round_trips_through_parser() {
        let mut doc = Json::obj();
        doc.push("name", "mirza \"Q\"")
            .push("count", 42u64)
            .push("neg", -7i64)
            .push("pi", 3.25)
            .push("ok", true)
            .push("none", Json::Null)
            .push("list", vec![Json::U64(1), Json::Str("two".into())]);
        let compact = doc.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn parser_handles_unicode_and_escapes() {
        let parsed = Json::parse(r#"{"s": "héllo A\n"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("héllo A\n"));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
    }

    #[test]
    fn number_types_survive_round_trip() {
        let parsed = Json::parse("[18446744073709551615, -3, 2.0]").unwrap();
        let items = parsed.as_arr().unwrap();
        assert_eq!(items[0], Json::U64(u64::MAX));
        assert_eq!(items[1], Json::I64(-3));
        assert_eq!(items[2], Json::F64(2.0));
    }

    #[test]
    fn accessors() {
        let mut doc = Json::obj();
        doc.push("n", 5u64).push("f", 1.5).push("s", "x");
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(5.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }
}
