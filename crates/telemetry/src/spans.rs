//! Request-lifecycle spans and slowdown attribution in **simulated** time.
//!
//! The memory controller reports three things per subchannel while a run
//! executes:
//!
//! * [`SpanCollector::block_span`] — an interval during which the whole
//!   subchannel could not issue demand commands (REF tRFC, proactive RFM,
//!   ALERT back-off recovery), tagged with the [`StallBucket`] that caused
//!   it. Intervals arrive in start order and are clipped against the
//!   previous one, so the per-subchannel timeline is ordered and
//!   non-overlapping.
//! * [`SpanCollector::request_done`] — one finished read/write with its
//!   arrival time, the time it became the oldest request needing its bank
//!   (`own_ps`), and its column-command issue time. The stall
//!   `issue − arrival` is decomposed exactly (integer picoseconds) into the
//!   six buckets; any part overlapping a blocking interval goes to that
//!   interval's bucket, the pre-ownership residual is queue conflict, and
//!   the post-ownership residual is bank timing.
//! * [`SpanCollector::bank_span`] — a row's open interval on a bank, for
//!   the Chrome trace only.
//!
//! Conservation is structural: every picosecond of each request's stall
//! lands in exactly one bucket, so per-bank and global bucket sums equal
//! the respective total stall — checked by a debug assert per request and
//! re-checked downstream by `scripts/attribution_gate.py`.

use crate::chrome::ChromeTraceSink;
use crate::json::Json;
use std::collections::BTreeMap;

/// Where a stalled picosecond of a request's life is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallBucket {
    /// Waiting behind older requests for the same bank (scheduler order),
    /// outside any blocking interval.
    QueueConflict,
    /// Oldest for its bank but blocked by DDR5 bank/bus timing
    /// (tRCD/tRP/tCCD/tRRD/tFAW/bus turnaround), outside any blocking
    /// interval.
    BankTiming,
    /// ALERT back-off: from the controller observing ALERT_n to the end of
    /// the recovery RFM's tRFM window.
    AboAlert,
    /// tRFC of a REF that performed mitigative (TRR-style) refreshes.
    MitigativeRef,
    /// tRFC of a regular REF.
    Refresh,
    /// tRFM of a proactive (RAA-triggered) RFM.
    Rfm,
}

/// Number of buckets; arrays indexed by [`StallBucket::index`].
pub const BUCKETS: usize = 6;

impl StallBucket {
    /// All buckets in index order.
    pub const ALL: [StallBucket; BUCKETS] = [
        StallBucket::QueueConflict,
        StallBucket::BankTiming,
        StallBucket::AboAlert,
        StallBucket::MitigativeRef,
        StallBucket::Refresh,
        StallBucket::Rfm,
    ];

    /// Position in per-bucket arrays and CSV column order.
    pub fn index(self) -> usize {
        match self {
            StallBucket::QueueConflict => 0,
            StallBucket::BankTiming => 1,
            StallBucket::AboAlert => 2,
            StallBucket::MitigativeRef => 3,
            StallBucket::Refresh => 4,
            StallBucket::Rfm => 5,
        }
    }

    /// Stable manifest/CSV key.
    pub fn key(self) -> &'static str {
        match self {
            StallBucket::QueueConflict => "queue_conflict",
            StallBucket::BankTiming => "bank_timing",
            StallBucket::AboAlert => "abo_alert",
            StallBucket::MitigativeRef => "mitigative_ref",
            StallBucket::Refresh => "refresh",
            StallBucket::Rfm => "rfm",
        }
    }
}

/// One subchannel-wide blocking interval `[start, end)`.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: u64,
    end: u64,
    bucket: StallBucket,
}

#[derive(Debug, Default)]
struct SubchState {
    /// Ordered, non-overlapping blocking timeline (clipped on insert).
    blocks: Vec<Block>,
}

/// Stall attribution for one `(subchannel, bank)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankAttribution {
    /// Requests completed on this bank.
    pub requests: u64,
    /// Total stall (`issue − arrival` summed), integer picoseconds.
    pub total_stall_ps: u64,
    /// Per-bucket stall, indexed by [`StallBucket::index`].
    pub buckets_ps: [u64; BUCKETS],
}

impl BankAttribution {
    /// Whether this bank's buckets sum exactly to its total stall.
    pub fn conserved(&self) -> bool {
        self.buckets_ps.iter().sum::<u64>() == self.total_stall_ps
    }
}

/// Run-level attribution rollup, embedded in `SimReport`/manifests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionSummary {
    /// Requests attributed.
    pub requests: u64,
    /// Total stall across all requests, integer picoseconds.
    pub total_stall_ps: u64,
    /// Per-bucket stall, indexed by [`StallBucket::index`].
    pub buckets_ps: [u64; BUCKETS],
    /// The conservation invariant, re-evaluated at summary time.
    pub conserved: bool,
}

impl AttributionSummary {
    /// Percentage of total stall in `bucket` (0 when there was no stall).
    pub fn pct(&self, bucket: StallBucket) -> f64 {
        if self.total_stall_ps == 0 {
            0.0
        } else {
            self.buckets_ps[bucket.index()] as f64 * 100.0 / self.total_stall_ps as f64
        }
    }

    /// Manifest shape: `{requests, total_stall_ps, conserved,
    /// buckets: {<key>: {ps, pct}}}`.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("requests", self.requests);
        doc.push("total_stall_ps", self.total_stall_ps);
        doc.push("conserved", self.conserved);
        let mut buckets = Json::obj();
        for b in StallBucket::ALL {
            let mut entry = Json::obj();
            entry.push("ps", self.buckets_ps[b.index()]);
            entry.push("pct", self.pct(b));
            buckets.push(b.key(), entry);
        }
        doc.push("buckets", buckets);
        doc
    }
}

/// Accumulates spans for a whole run. Held inside the telemetry recorder;
/// all methods are driven through the `Telemetry` handle's `span_*`
/// wrappers so the disabled path stays one branch.
#[derive(Debug, Default)]
pub struct SpanCollector {
    subch: Vec<SubchState>,
    banks: BTreeMap<(u32, usize), BankAttribution>,
    requests: u64,
    total_stall_ps: u64,
    buckets_ps: [u64; BUCKETS],
    chrome: Option<ChromeTraceSink>,
}

impl SpanCollector {
    /// An attribution-only collector (no Chrome trace).
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Also mirror blocking and bank-occupancy spans into `sink`.
    pub fn with_chrome(mut self, sink: ChromeTraceSink) -> Self {
        self.chrome = Some(sink);
        self
    }

    fn subch_mut(&mut self, subch: u32) -> &mut SubchState {
        let i = subch as usize;
        if self.subch.len() <= i {
            self.subch.resize_with(i + 1, SubchState::default);
        }
        &mut self.subch[i]
    }

    /// Records a subchannel-wide blocking interval `[start_ps, end_ps)`
    /// charged to `bucket`. Must be called in issue order per subchannel;
    /// the start is clipped to the previous interval's end (the only
    /// overlap the controller produces is an ALERT observed at the instant
    /// a REF/RFM issued).
    pub fn block_span(&mut self, subch: u32, bucket: StallBucket, start_ps: u64, end_ps: u64) {
        let state = self.subch_mut(subch);
        let floor = state.blocks.last().map_or(0, |b| b.end);
        let start = start_ps.max(floor);
        let end = end_ps.max(start);
        if end > start {
            state.blocks.push(Block { start, end, bucket });
        }
        if let Some(chrome) = &mut self.chrome {
            if end > start {
                chrome.span(&format!("sc{subch} blocking"), bucket.key(), start, end);
            }
        }
    }

    /// Total overlap of `[start, end)` with the blocking timeline,
    /// accumulated per bucket into `per`. Returns the overlapped total.
    fn charge_blocked(state: &SubchState, start: u64, end: u64, per: &mut [u64; BUCKETS]) -> u64 {
        if end <= start {
            return 0;
        }
        let mut covered = 0;
        let from = state.blocks.partition_point(|b| b.end <= start);
        for b in &state.blocks[from..] {
            if b.start >= end {
                break;
            }
            let lo = b.start.max(start);
            let hi = b.end.min(end);
            per[b.bucket.index()] += hi - lo;
            covered += hi - lo;
        }
        covered
    }

    /// Attributes one finished request on `(subch, bank)`.
    ///
    /// `arrival_ps` ≤ `issue_ps` is the request's stall window. `own_ps` is
    /// when it became the oldest request needing its bank (absent for pure
    /// row hits that never owned an ACT/PRE — their whole wait is ordering,
    /// i.e. queue conflict, so `own` defaults to `issue`).
    pub fn request_done(
        &mut self,
        subch: u32,
        bank: usize,
        arrival_ps: u64,
        own_ps: Option<u64>,
        issue_ps: u64,
    ) {
        let issue = issue_ps.max(arrival_ps);
        let own = own_ps.map_or(issue, |o| o.clamp(arrival_ps, issue));
        let total = issue - arrival_ps;

        let mut per = [0u64; BUCKETS];
        let state = self.subch_mut(subch);
        let blocked_queue = Self::charge_blocked(state, arrival_ps, own, &mut per);
        let blocked_bank = Self::charge_blocked(state, own, issue, &mut per);
        per[StallBucket::QueueConflict.index()] += (own - arrival_ps) - blocked_queue;
        per[StallBucket::BankTiming.index()] += (issue - own) - blocked_bank;
        debug_assert_eq!(
            per.iter().sum::<u64>(),
            total,
            "stall attribution must conserve: sc{subch} bank{bank} \
             arrival={arrival_ps} own={own} issue={issue}"
        );

        let bank_attr = self.banks.entry((subch, bank)).or_default();
        bank_attr.requests += 1;
        bank_attr.total_stall_ps += total;
        self.requests += 1;
        self.total_stall_ps += total;
        for (i, ps) in per.iter().enumerate() {
            bank_attr.buckets_ps[i] += ps;
            self.buckets_ps[i] += ps;
        }
    }

    /// Records a row's open interval on a bank (Chrome trace only; no
    /// effect on attribution). Called at precharge, when both endpoints
    /// are known.
    pub fn bank_span(&mut self, subch: u32, bank: usize, row: u64, opened_ps: u64, closed_ps: u64) {
        if let Some(chrome) = &mut self.chrome {
            chrome.span(
                &format!("sc{subch}/bank{bank:02}"),
                &format!("row{row}"),
                opened_ps,
                closed_ps,
            );
        }
    }

    /// Run-level rollup.
    pub fn summary(&self) -> AttributionSummary {
        AttributionSummary {
            requests: self.requests,
            total_stall_ps: self.total_stall_ps,
            buckets_ps: self.buckets_ps,
            conserved: self.buckets_ps.iter().sum::<u64>() == self.total_stall_ps
                && self.banks.values().all(BankAttribution::conserved),
        }
    }

    /// Per-bank attributions in deterministic `(subch, bank)` order.
    pub fn bank_attributions(&self) -> Vec<((u32, usize), BankAttribution)> {
        self.banks.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Flushes the Chrome sink's buffered bytes (error paths).
    pub fn flush(&mut self) {
        if let Some(chrome) = &mut self.chrome {
            chrome.flush();
        }
    }

    /// Terminates the Chrome trace array (success path).
    pub fn finish(&mut self) {
        if let Some(chrome) = &mut self.chrome {
            chrome.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedBuf;

    #[test]
    fn residuals_split_into_queue_conflict_and_bank_timing() {
        let mut c = SpanCollector::new();
        // No blocking: 40 ps waiting for ownership, 60 ps on bank timing.
        c.request_done(0, 3, 100, Some(140), 200);
        let s = c.summary();
        assert_eq!(s.requests, 1);
        assert_eq!(s.total_stall_ps, 100);
        assert_eq!(s.buckets_ps[StallBucket::QueueConflict.index()], 40);
        assert_eq!(s.buckets_ps[StallBucket::BankTiming.index()], 60);
        assert!(s.conserved);
    }

    #[test]
    fn own_defaults_to_issue_for_pure_row_hits() {
        let mut c = SpanCollector::new();
        c.request_done(0, 0, 100, None, 175);
        let s = c.summary();
        assert_eq!(s.buckets_ps[StallBucket::QueueConflict.index()], 75);
        assert_eq!(s.buckets_ps[StallBucket::BankTiming.index()], 0);
    }

    #[test]
    fn blocking_overlap_charges_the_blocking_bucket() {
        let mut c = SpanCollector::new();
        // REF blocks [120, 160); request waits [100, own=150, issue=200).
        c.block_span(0, StallBucket::Refresh, 120, 160);
        c.request_done(0, 1, 100, Some(150), 200);
        let s = c.summary();
        assert_eq!(s.total_stall_ps, 100);
        // [100,150) ∩ [120,160) = 30 → refresh; residual 20 → queue.
        // [150,200) ∩ [120,160) = 10 → refresh; residual 40 → bank timing.
        assert_eq!(s.buckets_ps[StallBucket::Refresh.index()], 40);
        assert_eq!(s.buckets_ps[StallBucket::QueueConflict.index()], 20);
        assert_eq!(s.buckets_ps[StallBucket::BankTiming.index()], 40);
        assert!(s.conserved);
    }

    #[test]
    fn block_spans_clip_against_the_previous_interval() {
        let mut c = SpanCollector::new();
        c.block_span(0, StallBucket::Refresh, 100, 200);
        // ALERT observed at 150 while the REF was still blocking: the ABO
        // span starts where the REF span ends.
        c.block_span(0, StallBucket::AboAlert, 150, 300);
        c.request_done(0, 0, 100, Some(100), 300);
        let s = c.summary();
        assert_eq!(s.buckets_ps[StallBucket::Refresh.index()], 100);
        assert_eq!(s.buckets_ps[StallBucket::AboAlert.index()], 100);
        assert!(s.conserved);
    }

    #[test]
    fn empty_clipped_blocks_are_dropped() {
        let mut c = SpanCollector::new();
        c.block_span(0, StallBucket::Refresh, 100, 300);
        c.block_span(0, StallBucket::Rfm, 150, 250); // fully shadowed
        c.request_done(0, 0, 100, Some(100), 300);
        let s = c.summary();
        assert_eq!(s.buckets_ps[StallBucket::Refresh.index()], 200);
        assert_eq!(s.buckets_ps[StallBucket::Rfm.index()], 0);
    }

    #[test]
    fn per_bank_attribution_tracks_separately_and_conserves() {
        let mut c = SpanCollector::new();
        c.block_span(1, StallBucket::Rfm, 0, 50);
        c.request_done(1, 2, 0, Some(0), 100);
        c.request_done(1, 5, 40, None, 60);
        c.request_done(0, 2, 0, Some(10), 30);
        let banks = c.bank_attributions();
        assert_eq!(
            banks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![(0, 2), (1, 2), (1, 5)]
        );
        for (_, b) in &banks {
            assert!(b.conserved());
        }
        let b12 = banks.iter().find(|(k, _)| *k == (1, 2)).unwrap().1;
        assert_eq!(b12.buckets_ps[StallBucket::Rfm.index()], 50);
        assert_eq!(b12.buckets_ps[StallBucket::BankTiming.index()], 50);
        // Subchannel 1's block does not leak into subchannel 0.
        let b02 = banks.iter().find(|(k, _)| *k == (0, 2)).unwrap().1;
        assert_eq!(b02.buckets_ps[StallBucket::Rfm.index()], 0);
        assert_eq!(c.summary().total_stall_ps, 100 + 20 + 30);
        assert!(c.summary().conserved);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let mut c = SpanCollector::new();
        // issue before arrival and own outside the window: clamp, zero stall.
        c.request_done(0, 0, 100, Some(500), 90);
        let s = c.summary();
        assert_eq!(s.total_stall_ps, 0);
        assert!(s.conserved);
    }

    #[test]
    fn summary_json_shape_and_percentages() {
        let mut c = SpanCollector::new();
        c.block_span(0, StallBucket::AboAlert, 0, 25);
        c.request_done(0, 0, 0, Some(25), 100);
        let doc = c.summary().to_json();
        assert_eq!(doc.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("total_stall_ps").unwrap().as_u64(), Some(100));
        let buckets = doc.get("buckets").unwrap();
        let abo = buckets.get("abo_alert").unwrap();
        assert_eq!(abo.get("ps").unwrap().as_u64(), Some(25));
        assert_eq!(abo.get("pct").unwrap().as_f64(), Some(25.0));
        for b in StallBucket::ALL {
            assert!(buckets.get(b.key()).is_some(), "missing bucket {}", b.key());
        }
    }

    #[test]
    fn chrome_mirror_receives_block_and_bank_spans() {
        let buf = SharedBuf::new();
        let mut c = SpanCollector::new().with_chrome(ChromeTraceSink::new(buf.writer()));
        c.block_span(0, StallBucket::Refresh, 100_000, 200_000);
        c.bank_span(0, 4, 1234, 50_000, 150_000);
        c.finish();
        let doc = Json::parse(&buf.contents()).unwrap();
        let events = doc.as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["refresh", "row1234"]);
        let tracks: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(tracks, vec!["sc0 blocking", "sc0/bank04"]);
    }
}
