//! Dependency-free telemetry for the MIRZA simulator stack.
//!
//! Three concerns live here, all hand-rolled because the build environment
//! has no crates.io access (no serde, no tracing):
//!
//! * **Metrics** — a [`Registry`] of named counters, gauges, and
//!   log2-bucketed [`Histogram`]s with p50/p90/p99 summaries.
//! * **Traces** — an [`EventSink`] emitting one JSON object per rare
//!   episode (ALERT raised/cleared, RFM, queue overflow, ...) and a
//!   [`TraceSink`] emitting a DRAMSim3-style per-command text trace.
//! * **Manifests** — the [`Json`] value type plus writer/parser used by the
//!   bench layer to emit one machine-readable document per experiment run.
//!
//! The whole layer is reached through one cheap handle, [`Telemetry`]:
//! a disabled handle is a `None` and every recording method is a single
//! branch, so the simulator's hot path pays nothing when observability is
//! off. The simulator is single-threaded, so the enabled handle is an
//! `Rc<RefCell<Recorder>>` clone shared by every component.

pub mod chrome;
pub mod epoch;
pub mod heartbeat;
pub mod histogram;
pub mod json;
pub mod names;
pub mod profiler;
pub mod progress;
pub mod registry;
pub mod report;
pub mod sink;
pub mod spans;

pub use chrome::ChromeTraceSink;
pub use epoch::{EpochRecord, EpochSampler};
pub use heartbeat::Heartbeat;
pub use histogram::{Histogram, Summary};
pub use json::Json;
pub use profiler::{Phase, PhaseProfiler};
pub use registry::Registry;
pub use report::HtmlReport;
pub use sink::{EventSink, LockedWriter, SharedBuf, TraceSink};
pub use spans::{AttributionSummary, BankAttribution, SpanCollector, StallBucket};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Everything one enabled telemetry session accumulates.
#[derive(Debug, Default)]
pub struct Recorder {
    /// Named counters, gauges, histograms.
    pub registry: Registry,
    /// Structured JSONL event sink, when attached.
    pub events: Option<EventSink>,
    /// Per-command text trace sink, when attached.
    pub trace: Option<TraceSink>,
    /// Events seen per kind — counted even with no sink attached, so
    /// manifests can report episode counts without paying for I/O.
    pub event_counts: BTreeMap<String, u64>,
    /// Epoch time-series sampler, when attached.
    pub epochs: Option<EpochSampler>,
    /// Host-phase wall-clock profiler, when attached.
    pub profiler: Option<PhaseProfiler>,
    /// Request-lifecycle span collector (simulated-time stall
    /// attribution, optional Chrome trace), when attached.
    pub spans: Option<SpanCollector>,
    /// Whether hot-path opportunity counters are armed (per-pass work
    /// counters and skip-gap histograms in the controller and device).
    pub opportunity: bool,
}

/// Cheap, cloneable handle to a telemetry session.
///
/// `Telemetry::disabled()` costs one `Option` check per call site;
/// `Telemetry::enabled()` records into a shared [`Recorder`]. Components
/// must not hold a borrow of the recorder across calls into other
/// components — each method here borrows and releases within the call.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Telemetry {
    /// A no-op handle: every method is one branch and returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle with metrics only (no sinks).
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Recorder::default()))),
        }
    }

    /// Attaches a structured-event sink (JSONL).
    pub fn with_events(self, sink: EventSink) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().events = Some(sink);
        }
        self
    }

    /// Attaches a per-command text trace sink.
    pub fn with_trace(self, sink: TraceSink) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().trace = Some(sink);
        }
        self
    }

    /// Attaches an epoch time-series sampler.
    pub fn with_epochs(self, sampler: EpochSampler) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().epochs = Some(sampler);
        }
        self
    }

    /// Attaches a host-phase wall-clock profiler.
    pub fn with_profiler(self) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().profiler = Some(PhaseProfiler::new());
        }
        self
    }

    /// Attaches a request-lifecycle span collector.
    pub fn with_spans(self, spans: SpanCollector) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().spans = Some(spans);
        }
        self
    }

    /// Arms the hot-path opportunity counters (`mc.opp_*`, `dram.opp_*`).
    pub fn with_opportunity(self) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().opportunity = true;
        }
        self
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether an epoch sampler is attached (callers skip per-quantum gauge
    /// updates entirely when not).
    pub fn has_epochs(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.borrow().epochs.is_some())
    }

    /// Whether a host-phase profiler is attached.
    pub fn is_profiling(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.borrow().profiler.is_some())
    }

    /// Whether a per-command trace sink is attached (callers skip building
    /// trace strings entirely when not).
    pub fn is_tracing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.borrow().trace.is_some())
    }

    /// Whether a span collector is attached. The controller and device
    /// cache this at `set_telemetry` time so the disabled hot path stays
    /// one local bool test.
    pub fn has_spans(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.borrow().spans.is_some())
    }

    /// Whether opportunity counters are armed. Cached by the controller
    /// and device at `set_telemetry` time, like [`Telemetry::has_spans`].
    pub fn has_opportunity(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.borrow().opportunity)
    }

    /// Adds `by` to a named counter.
    pub fn inc(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.inc(name, by);
        }
    }

    /// Records one histogram sample.
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.observe(name, v);
        }
    }

    /// Sets a named gauge.
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.set_gauge(name, v);
        }
    }

    /// Sets a named counter to an absolute (cumulative) value.
    pub fn set_counter(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.set_counter(name, v);
        }
    }

    /// Advances the epoch sampler to simulated time `t_ps` (no-op unless a
    /// sampler is attached). Call once per simulation quantum, after
    /// updating any per-quantum counters/gauges.
    pub fn epoch_tick(&self, t_ps: u64) {
        if let Some(inner) = &self.inner {
            let rec = &mut *inner.borrow_mut();
            if let Some(s) = rec.epochs.as_mut() {
                s.tick(t_ps, &rec.registry);
            }
        }
    }

    /// Closes the epoch series at simulated time `t_ps`, emitting a final
    /// partial epoch if needed.
    pub fn epoch_finish(&self, t_ps: u64) {
        if let Some(inner) = &self.inner {
            let rec = &mut *inner.borrow_mut();
            if let Some(s) = rec.epochs.as_mut() {
                s.finish(t_ps, &rec.registry);
            }
        }
    }

    /// The epoch series as compact JSONL; `None` unless a sampler is
    /// attached.
    pub fn epochs_jsonl(&self) -> Option<String> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().epochs.as_ref().map(EpochSampler::to_jsonl))
    }

    /// Per-series epoch summaries for the manifest; `None` unless a
    /// sampler is attached.
    pub fn epochs_summary_json(&self) -> Option<Json> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().epochs.as_ref().map(EpochSampler::summary_json))
    }

    /// Starts a profiled span; pair with [`Telemetry::profile_end`].
    /// Returns `None` (and costs one branch) when no profiler is attached.
    /// This split API exists for call sites where a closure would fight the
    /// borrow checker; prefer [`Telemetry::profile`] elsewhere.
    pub fn profile_start(&self) -> Option<Instant> {
        if self.is_profiling() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends the span for `phase` and opens the next one with a single
    /// clock read: the instant that closes `phase` is returned as the
    /// start of the following span. Back-to-back phases in a hot loop
    /// should chain through this instead of paying `profile_end` +
    /// `profile_start` (two reads) per boundary — on the event core the
    /// vDSO `clock_gettime` calls are otherwise visible in profiles.
    pub fn profile_next(&self, phase: Phase, start: Option<Instant>) -> Option<Instant> {
        self.profile_next_scaled(phase, start, 1)
    }

    /// [`Telemetry::profile_next`] with sampled attribution: the measured
    /// duration is multiplied by `scale` before it is added to `phase`.
    /// Chains through a hot loop that only times every `scale`-th pass.
    pub fn profile_next_scaled(
        &self,
        phase: Phase,
        start: Option<Instant>,
        scale: u32,
    ) -> Option<Instant> {
        let start = start?;
        let now = Instant::now();
        if let Some(inner) = &self.inner {
            if let Some(p) = inner.borrow_mut().profiler.as_mut() {
                p.add(phase, (now - start) * scale);
            }
        }
        Some(now)
    }

    /// Ends a profiled span started by [`Telemetry::profile_start`],
    /// attributing `scale` times the measured duration to `phase`. For
    /// sampled attribution on very hot call sites: time every `scale`-th
    /// call, scale back up, and the phase total stays statistically right
    /// while the clock-read cost drops by the same factor.
    pub fn profile_end_scaled(&self, phase: Phase, start: Option<Instant>, scale: u32) {
        if let (Some(start), Some(inner)) = (start, &self.inner) {
            if let Some(p) = inner.borrow_mut().profiler.as_mut() {
                p.add(phase, start.elapsed() * scale);
            }
        }
    }

    /// Ends a profiled span started by [`Telemetry::profile_start`].
    pub fn profile_end(&self, phase: Phase, start: Option<Instant>) {
        if let (Some(start), Some(inner)) = (start, &self.inner) {
            if let Some(p) = inner.borrow_mut().profiler.as_mut() {
                p.add(phase, start.elapsed());
            }
        }
    }

    /// Runs `f`, attributing its wall-clock to `phase` when a profiler is
    /// attached. The recorder is not borrowed while `f` runs, so `f` may
    /// itself use this handle.
    pub fn profile<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = self.profile_start();
        let out = f();
        self.profile_end(phase, start);
        out
    }

    /// The host-phase profile for the manifest; `None` unless a profiler
    /// is attached.
    pub fn profile_json(&self) -> Option<Json> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().profiler.as_ref().map(PhaseProfiler::to_json))
    }

    /// Records a structured event: counted always, written to the event
    /// sink when one is attached. `fields` are only built by the caller
    /// when enabled — guard with [`Telemetry::is_enabled`] if building
    /// them is not free.
    pub fn event(&self, t_ps: u64, kind: &str, fields: &[(&str, Json)]) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            *rec.event_counts.entry(kind.to_string()).or_insert(0) += 1;
            if let Some(sink) = rec.events.as_mut() {
                sink.emit(t_ps, kind, fields);
            }
        }
    }

    /// Writes one command-trace line; `line` is only invoked when a trace
    /// sink is attached, so the hot path never formats.
    pub fn trace_line(&self, line: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            if let Some(sink) = rec.trace.as_mut() {
                let text = line();
                sink.line(&text);
            }
        }
    }

    /// Records a subchannel-wide blocking interval (REF/RFM/ALERT) for
    /// stall attribution; see [`SpanCollector::block_span`].
    pub fn span_block(&self, subch: u32, bucket: StallBucket, start_ps: u64, end_ps: u64) {
        if let Some(inner) = &self.inner {
            if let Some(s) = inner.borrow_mut().spans.as_mut() {
                s.block_span(subch, bucket, start_ps, end_ps);
            }
        }
    }

    /// Attributes one finished memory request; see
    /// [`SpanCollector::request_done`].
    pub fn span_request(
        &self,
        subch: u32,
        bank: usize,
        arrival_ps: u64,
        own_ps: Option<u64>,
        issue_ps: u64,
    ) {
        if let Some(inner) = &self.inner {
            if let Some(s) = inner.borrow_mut().spans.as_mut() {
                s.request_done(subch, bank, arrival_ps, own_ps, issue_ps);
            }
        }
    }

    /// Records a row's open interval for the Chrome trace; see
    /// [`SpanCollector::bank_span`].
    pub fn span_bank(&self, subch: u32, bank: usize, row: u64, opened_ps: u64, closed_ps: u64) {
        if let Some(inner) = &self.inner {
            if let Some(s) = inner.borrow_mut().spans.as_mut() {
                s.bank_span(subch, bank, row, opened_ps, closed_ps);
            }
        }
    }

    /// Run-level attribution rollup; `None` unless a span collector is
    /// attached.
    pub fn spans_summary(&self) -> Option<AttributionSummary> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().spans.as_ref().map(SpanCollector::summary))
    }

    /// Per-bank attributions in deterministic order; empty unless a span
    /// collector is attached.
    pub fn spans_bank_attributions(&self) -> Vec<((u32, usize), BankAttribution)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.borrow()
                .spans
                .as_ref()
                .map_or_else(Vec::new, SpanCollector::bank_attributions)
        })
    }

    /// Terminates the span collector's Chrome trace array (success path;
    /// error paths rely on [`Telemetry::flush`] plus drop).
    pub fn spans_finish(&self) {
        if let Some(inner) = &self.inner {
            if let Some(s) = inner.borrow_mut().spans.as_mut() {
                s.finish();
            }
        }
    }

    /// Runs `f` with the recorder (no-op when disabled). For reads at
    /// report time, not for the hot path.
    pub fn with_recorder<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
        self.inner.as_ref().map(|i| f(&mut i.borrow_mut()))
    }

    /// Snapshot of a counter value (0 when disabled or never set).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.borrow().registry.counter(name))
    }

    /// Snapshot of a histogram's sample count.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.borrow().registry.histogram(name).map_or(0, |h| h.count())
        })
    }

    /// Serializes the registry plus event counts (for manifests); `None`
    /// when disabled.
    pub fn to_json(&self) -> Option<Json> {
        self.inner.as_ref().map(|i| {
            let rec = i.borrow();
            let mut doc = rec.registry.to_json();
            let mut events = Json::obj();
            for (kind, n) in &rec.event_counts {
                events.push(kind, *n);
            }
            doc.push("events", events);
            doc
        })
    }

    /// Flushes every attached sink — events, command trace, and the span
    /// collector's Chrome trace. Error paths that bypass destructors
    /// (`std::process::exit`) must call this so no buffered records are
    /// lost.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            if let Some(sink) = rec.events.as_mut() {
                sink.flush();
            }
            if let Some(sink) = rec.trace.as_mut() {
                sink.flush();
            }
            if let Some(spans) = rec.spans.as_mut() {
                spans.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.is_tracing());
        t.inc("c", 1);
        t.observe("h", 10);
        t.set_gauge("g", 1.0);
        t.event(0, "x", &[]);
        t.trace_line(|| panic!("must not format when disabled"));
        assert_eq!(t.counter("c"), 0);
        assert_eq!(t.histogram_count("h"), 0);
        assert!(t.to_json().is_none());
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.inc("c", 2);
        u.inc("c", 3);
        assert_eq!(t.counter("c"), 5);
        u.observe("h", 9);
        assert_eq!(t.histogram_count("h"), 1);
    }

    #[test]
    fn events_counted_without_sink_and_written_with_one() {
        let t = Telemetry::enabled();
        t.event(1, "alert_raised", &[]);
        let counts = t
            .with_recorder(|r| r.event_counts.get("alert_raised").copied())
            .unwrap();
        assert_eq!(counts, Some(1));

        let buf = SharedBuf::new();
        let t = Telemetry::enabled().with_events(EventSink::new(buf.writer()));
        t.event(7, "rfm", &[("bank", Json::U64(3))]);
        t.flush();
        let line = buf.contents();
        let parsed = Json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("t_ps").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("bank").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn trace_lines_only_format_when_sink_attached() {
        let t = Telemetry::enabled();
        assert!(!t.is_tracing());
        t.trace_line(|| panic!("no sink attached"));

        let buf = SharedBuf::new();
        let t = Telemetry::enabled().with_trace(TraceSink::new(buf.writer()));
        assert!(t.is_tracing());
        t.trace_line(|| "100 ACT sc0 ba1 row2".to_string());
        t.flush();
        assert_eq!(buf.contents(), "100 ACT sc0 ba1 row2\n");
    }

    #[test]
    fn epoch_sampler_through_handle() {
        let t = Telemetry::enabled().with_epochs(EpochSampler::new(100));
        assert!(t.has_epochs());
        t.inc("c", 3);
        t.epoch_tick(100);
        t.inc("c", 4);
        t.epoch_finish(150);
        let jsonl = t.epochs_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        let sum = t.epochs_summary_json().unwrap();
        assert_eq!(sum.get("epochs").unwrap().as_u64(), Some(2));

        let d = Telemetry::disabled().with_epochs(EpochSampler::new(100));
        assert!(!d.has_epochs());
        d.epoch_tick(100);
        assert!(d.epochs_jsonl().is_none());
    }

    #[test]
    fn profiler_through_handle() {
        let t = Telemetry::enabled().with_profiler();
        assert!(t.is_profiling());
        let x = t.profile(Phase::Device, || {
            // Nested use of the handle must not deadlock on the RefCell.
            t.inc("inner", 1);
            42
        });
        assert_eq!(x, 42);
        let doc = t.profile_json().unwrap();
        let dev = doc.get("phases").unwrap().get("device").unwrap();
        assert_eq!(dev.get("calls").unwrap().as_u64(), Some(1));

        let d = Telemetry::disabled();
        assert!(!d.is_profiling());
        assert!(d.profile_start().is_none());
        assert_eq!(d.profile(Phase::Io, || 7), 7);
        assert!(d.profile_json().is_none());
    }

    #[test]
    fn span_collector_through_handle() {
        let t = Telemetry::enabled().with_spans(SpanCollector::new());
        assert!(t.has_spans());
        t.span_block(0, StallBucket::Refresh, 50, 100);
        t.span_request(0, 1, 0, Some(40), 120);
        let s = t.spans_summary().unwrap();
        assert_eq!(s.requests, 1);
        assert_eq!(s.total_stall_ps, 120);
        assert!(s.conserved);
        assert_eq!(t.spans_bank_attributions().len(), 1);

        let d = Telemetry::disabled().with_spans(SpanCollector::new());
        assert!(!d.has_spans());
        d.span_request(0, 0, 0, None, 10);
        assert!(d.spans_summary().is_none());
        assert!(d.spans_bank_attributions().is_empty());
    }

    #[test]
    fn flush_covers_the_chrome_sink() {
        // Stage bytes behind a flush boundary (like a BufWriter) and prove
        // Telemetry::flush pushes them through — the SimError exit paths
        // depend on this.
        struct Staged {
            staged: Vec<u8>,
            out: SharedBuf,
        }
        impl std::io::Write for Staged {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.staged.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                let staged = std::mem::take(&mut self.staged);
                let mut w: Box<dyn std::io::Write> = self.out.writer();
                w.write_all(&staged)
            }
        }
        let buf = SharedBuf::new();
        let sink = ChromeTraceSink::new(Box::new(Staged {
            staged: Vec::new(),
            out: buf.clone(),
        }));
        let t = Telemetry::enabled().with_spans(SpanCollector::new().with_chrome(sink));
        t.span_bank(0, 0, 7, 0, 1_000_000);
        assert_eq!(buf.contents(), "", "bytes staged until flush");
        t.flush();
        assert!(buf.contents().contains("row7"));
        t.spans_finish();
        t.flush();
        assert!(Json::parse(&buf.contents()).is_ok());
    }

    #[test]
    fn opportunity_flag_through_handle() {
        let t = Telemetry::enabled();
        assert!(!t.has_opportunity());
        let t = t.with_opportunity();
        assert!(t.has_opportunity());
        // Arming a disabled handle stays inert.
        let d = Telemetry::disabled().with_opportunity();
        assert!(!d.has_opportunity());
    }

    #[test]
    fn set_counter_is_absolute() {
        let t = Telemetry::enabled();
        t.set_counter("core0.instructions", 10);
        t.set_counter("core0.instructions", 25);
        assert_eq!(t.counter("core0.instructions"), 25);
    }

    #[test]
    fn to_json_includes_event_counts() {
        let t = Telemetry::enabled();
        t.inc("acts", 4);
        t.event(0, "rfm", &[]);
        t.event(1, "rfm", &[]);
        let doc = t.to_json().unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("acts").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            doc.get("events").unwrap().get("rfm").unwrap().as_u64(),
            Some(2)
        );
    }
}
