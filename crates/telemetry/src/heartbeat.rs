//! Progress heartbeat: periodic one-line status while a long run executes.

use std::time::Instant;

/// Emits a formatted progress line every `every` retired instructions.
#[derive(Debug)]
pub struct Heartbeat {
    every: u64,
    next_at: u64,
    started: Instant,
}

impl Heartbeat {
    /// A heartbeat firing every `every` instructions (clamped to >= 1).
    pub fn new(every: u64) -> Self {
        let every = every.max(1);
        Heartbeat {
            every,
            next_at: every,
            started: Instant::now(),
        }
    }

    /// Called with cumulative progress; returns a line to print when the
    /// next threshold has been crossed, else `None`.
    pub fn tick(&mut self, instructions: u64, sim_ps: u64) -> Option<String> {
        if instructions < self.next_at {
            return None;
        }
        // Skip ahead past bursts so one tick never prints twice.
        while self.next_at <= instructions {
            self.next_at += self.every;
        }
        let wall = self.started.elapsed().as_secs_f64();
        let minstr = instructions as f64 / 1e6;
        let rate = if wall > 0.0 { minstr / wall } else { 0.0 };
        Some(format!(
            "[hb] {minstr:.1} Minstr retired | {:.3} ms simulated | {rate:.2} Minstr/s",
            sim_ps as f64 / 1e9,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_at_thresholds() {
        let mut hb = Heartbeat::new(1_000_000);
        assert!(hb.tick(500_000, 1).is_none());
        let line = hb.tick(1_000_000, 2_000_000_000).unwrap();
        assert!(line.contains("1.0 Minstr"), "{line}");
        assert!(line.contains("2.000 ms"), "{line}");
        assert!(hb.tick(1_500_000, 3).is_none());
        assert!(hb.tick(2_000_000, 4).is_some());
    }

    #[test]
    fn burst_past_several_thresholds_prints_once() {
        let mut hb = Heartbeat::new(100);
        assert!(hb.tick(1000, 0).is_some());
        assert!(hb.tick(1000, 0).is_none());
        assert!(hb.tick(1099, 0).is_none());
        assert!(hb.tick(1100, 0).is_some());
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut hb = Heartbeat::new(0);
        assert!(hb.tick(1, 0).is_some());
    }
}
