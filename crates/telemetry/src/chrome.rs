//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Emits the JSON Array Format understood by `chrome://tracing`,
//! <https://ui.perfetto.dev>, and Speedscope: one object per event, `ph:"B"`
//! / `ph:"E"` duration pairs plus `ph:"M"` thread-name metadata. Timestamps
//! are **simulated** time in microseconds (the format's unit), so a loaded
//! trace shows bank occupancy and blocking commands (REF/RFM/ALERT) on the
//! simulator's own clock.
//!
//! The array's closing `]` is written by [`ChromeTraceSink::finish`] (or on
//! drop). Both viewers accept a truncated array without the terminator, so
//! a run that dies mid-way still leaves a loadable file as long as buffered
//! bytes were flushed — which the `Drop` impl and
//! [`crate::Telemetry::flush`] guarantee on the error paths.

use std::io::Write;

/// Writes Chrome trace-event JSON. Tracks (named horizontal lanes in the
/// viewer) map to `tid`s, allocated on first use; everything shares `pid` 0.
pub struct ChromeTraceSink {
    out: Box<dyn Write>,
    /// Track names in tid order (tid = index).
    tracks: Vec<String>,
    events: u64,
    finished: bool,
}

impl std::fmt::Debug for ChromeTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceSink")
            .field("tracks", &self.tracks.len())
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl ChromeTraceSink {
    /// A sink writing the event array to `out`.
    pub fn new(out: Box<dyn Write>) -> Self {
        let mut sink = ChromeTraceSink {
            out,
            tracks: Vec::new(),
            events: 0,
            finished: false,
        };
        let _ = write!(sink.out, "[");
        sink
    }

    /// Events written so far (including metadata records).
    pub fn events(&self) -> u64 {
        self.events
    }

    fn tid(&mut self, track: &str) -> u64 {
        if let Some(i) = self.tracks.iter().position(|t| t == track) {
            return i as u64;
        }
        let tid = self.tracks.len() as u64;
        self.tracks.push(track.to_string());
        // Name the lane so the viewer shows the track string, not a number.
        self.raw(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{track}\"}}}}"
        ));
        tid
    }

    fn raw(&mut self, event: &str) {
        let sep = if self.events == 0 { "\n" } else { ",\n" };
        let _ = write!(self.out, "{sep}{event}");
        self.events += 1;
    }

    fn ts(t_ps: u64) -> f64 {
        t_ps as f64 / 1e6
    }

    /// Emits a complete `[start_ps, end_ps)` span named `name` on `track`.
    /// Spans on one track must be recorded in start order and must not
    /// overlap — exactly what the span collector's clipped timeline and the
    /// one-open-row-per-bank invariant provide — so `ts` stays monotone per
    /// track and every `B` has a matching `E`.
    pub fn span(&mut self, track: &str, name: &str, start_ps: u64, end_ps: u64) {
        if self.finished {
            return;
        }
        let tid = self.tid(track);
        let b = Self::ts(start_ps);
        let e = Self::ts(end_ps.max(start_ps));
        self.raw(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{b:?},\"pid\":0,\"tid\":{tid}}}"
        ));
        self.raw(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{e:?},\"pid\":0,\"tid\":{tid}}}"
        ));
    }

    /// Flushes buffered output without terminating the array (the partial
    /// file stays loadable; call on error paths).
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }

    /// Writes the closing `]` and flushes. Idempotent; further spans are
    /// dropped.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let _ = writeln!(self.out, "\n]");
        }
        self.flush();
    }
}

/// Terminate and flush on drop so early exits still leave a complete file —
/// see `EventSink`'s `Drop` impl for the staged-bytes rationale.
impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::SharedBuf;

    #[test]
    fn emits_parseable_array_with_named_tracks() {
        let buf = SharedBuf::new();
        {
            let mut sink = ChromeTraceSink::new(buf.writer());
            sink.span("sc0/bank00", "row42", 1_000_000, 3_000_000);
            sink.span("sc0 mitigations", "refresh", 2_000_000, 4_000_000);
            sink.finish();
        }
        let doc = Json::parse(&buf.contents()).expect("valid JSON array");
        let events = doc.as_arr().expect("array format");
        // 2 metadata + 2 B/E pairs.
        assert_eq!(events.len(), 6);
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("sc0/bank00")
        );
        let begins: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(begins[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(begins[0].get("name").unwrap().as_str(), Some("row42"));
    }

    #[test]
    fn tracks_reuse_one_tid_and_spans_pair_up() {
        let buf = SharedBuf::new();
        {
            let mut sink = ChromeTraceSink::new(buf.writer());
            sink.span("t", "a", 0, 10);
            sink.span("t", "b", 10, 25);
            sink.finish();
        }
        let doc = Json::parse(&buf.contents()).unwrap();
        let events = doc.as_arr().unwrap();
        let tids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        assert!(tids.iter().all(|&t| t == 0), "one track, one tid");
        let mut open = 0i64;
        let mut last_ts = f64::NEG_INFINITY;
        for e in events {
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => open += 1,
                Some("E") => {
                    open -= 1;
                    assert!(open >= 0, "E without matching B");
                }
                _ => continue,
            }
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "ts must be monotone per track");
            last_ts = ts;
        }
        assert_eq!(open, 0, "every B matched by an E");
    }

    /// Models a `BufWriter` whose staged bytes would be lost without the
    /// sink's `Drop` guard (same idea as the `LazyBuf` in `sink.rs` tests).
    struct LazyBuf {
        staged: Vec<u8>,
        out: SharedBuf,
    }

    impl Write for LazyBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.staged.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            let staged = std::mem::take(&mut self.staged);
            let mut w: Box<dyn Write> = self.out.writer();
            w.write_all(&staged)
        }
    }

    #[test]
    fn drop_terminates_and_flushes() {
        let buf = SharedBuf::new();
        {
            let mut sink = ChromeTraceSink::new(Box::new(LazyBuf {
                staged: Vec::new(),
                out: buf.clone(),
            }));
            sink.span("t", "a", 0, 5);
            assert_eq!(buf.contents(), "", "bytes still staged before drop");
        }
        let doc = Json::parse(&buf.contents()).expect("dropped sink left a complete array");
        assert_eq!(doc.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn flush_preserves_loadable_truncated_array() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(Box::new(LazyBuf {
            staged: Vec::new(),
            out: buf.clone(),
        }));
        sink.span("t", "a", 0, 5);
        sink.flush();
        // No `]` yet: the fatal-exit path leaves this shape behind. Both
        // viewers accept it; completing the array must make it parse.
        let truncated = buf.contents();
        assert!(!truncated.trim_end().ends_with(']'));
        let completed = format!("{truncated}\n]");
        assert!(Json::parse(&completed).is_ok());
        sink.finish();
        assert!(Json::parse(&buf.contents()).is_ok());
    }

    #[test]
    fn finish_is_idempotent_and_closes_the_sink() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(buf.writer());
        sink.span("t", "a", 0, 5);
        sink.finish();
        sink.finish();
        sink.span("t", "late", 10, 20);
        let doc = Json::parse(&buf.contents()).expect("still one valid array");
        assert_eq!(doc.as_arr().unwrap().len(), 3, "post-finish span dropped");
    }
}
