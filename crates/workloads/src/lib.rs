//! # mirza-workloads — workload and attack substrate
//!
//! The paper's evaluation inputs, rebuilt synthetically:
//!
//! * [`spec`] — the 24 Table-IV workloads (12 SPEC-2017, 6 GAP, 6 mixes) as
//!   statistical profiles calibrated to the published MPKI / ACT-PKI /
//!   footprint characteristics (see DESIGN.md §3 for the substitution
//!   rationale),
//! * [`synth`] — the trace generator realizing a profile as an
//!   [`AccessStream`](mirza_frontend::trace::AccessStream), and
//! * [`attacks`] — Rowhammer attack kernels (single/double/many-sided,
//!   circular, same-region CGF evasion) at the row-activation level, and
//! * [`tracefile`] — plain-text trace I/O for replaying real program
//!   traces instead of the synthetic generators.

pub mod attacks;
pub mod spec;
pub mod synth;
pub mod tracefile;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::attacks::RowPattern;
    pub use crate::spec::{MixSpec, WorkloadSpec, TABLE4_MIXES, TABLE4_WORKLOADS};
    pub use crate::synth::{SyntheticWorkload, Zipf};
}
