//! Workload specifications calibrated to Table IV.
//!
//! The paper evaluates 12 SPEC-2017 benchmarks (L3 MPKI >= 1), the six GAP
//! kernels, and six mixes. Without the proprietary SimPoint traces, each
//! benchmark is modeled as a statistical stream whose knobs are set from the
//! published characteristics:
//!
//! * `apki` — LLC accesses per kilo-instruction. Working sets far exceed
//!   the 16 MB LLC, so essentially every generated access misses and
//!   `apki` calibrates the published *L3 MPKI*.
//! * `run_lines` — consecutive lines per spatial run; with MOP4 mapping a
//!   run of 4 lines costs one ACT, so this knob sets the published
//!   ACT-PKI / MPKI ratio.
//! * `store_frac` — fraction of stores; dirty evictions add write-back
//!   ACTs (how `lbm`/`xz` exceed ACT-PKI ≈ MPKI).
//! * `pages`, `zipf_s` — footprint and page-popularity skew, which shape
//!   the ACTs-per-subarray spread (Table IV's μ ± σ, Figure 6).

/// Statistical description of one benchmark's memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in Table IV.
    pub name: &'static str,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Consecutive cache lines per spatial run.
    pub run_lines: u32,
    /// Fraction of accesses that are stores.
    pub store_frac: f64,
    /// Working-set size in 4 KB pages.
    pub pages: u64,
    /// Zipf skew of page popularity (0 = uniform).
    pub zipf_s: f64,
}

impl WorkloadSpec {
    /// Looks a benchmark up by name.
    pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
        TABLE4_WORKLOADS.iter().find(|w| w.name == name)
    }
}

macro_rules! spec {
    ($name:literal, $apki:expr, $run:expr, $store:expr, $pages:expr, $zipf:expr) => {
        WorkloadSpec {
            name: $name,
            apki: $apki,
            run_lines: $run,
            store_frac: $store,
            pages: $pages,
            zipf_s: $zipf,
        }
    };
}

/// The 18 single-program workloads of Table IV (GAP first, then SPEC-2017),
/// calibrated as described in the module docs.
pub static TABLE4_WORKLOADS: &[WorkloadSpec] = &[
    // GAP kernels: large graph footprints, mostly-read pointer chasing.
    spec!("bc", 58.8, 2, 0.10, 131_072, 0.55),
    spec!("bfs", 30.9, 2, 0.10, 131_072, 0.70),
    spec!("cc", 57.9, 1, 0.15, 196_608, 0.75),
    spec!("pr", 57.7, 2, 0.10, 131_072, 0.55),
    spec!("sssp", 27.2, 2, 0.10, 98_304, 0.50),
    spec!("tc", 87.8, 2, 0.05, 131_072, 0.40),
    // SPEC-2017 (MPKI >= 1).
    spec!("blender", 1.1, 2, 0.20, 32_768, 0.60),
    spec!("bwaves", 41.6, 3, 0.10, 131_072, 0.55),
    spec!("cactuBSSN", 3.5, 1, 0.20, 65_536, 0.80),
    spec!("cam4", 3.7, 2, 0.25, 49_152, 0.85),
    spec!("fotonik3d", 26.6, 1, 0.30, 65_536, 0.45),
    spec!("lbm", 27.7, 1, 0.50, 98_304, 0.40),
    spec!("mcf", 19.0, 2, 0.15, 131_072, 0.75),
    spec!("omnetpp", 9.2, 1, 0.25, 98_304, 0.75),
    spec!("parest", 26.5, 2, 0.10, 98_304, 0.70),
    spec!("roms", 7.8, 2, 0.15, 65_536, 0.80),
    spec!("xalancbmk", 1.6, 1, 0.40, 32_768, 0.85),
    spec!("xz", 5.2, 1, 0.50, 65_536, 0.85),
];

/// A rate-mode mix: which benchmark each of the 8 cores runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Mix name as in Table IV.
    pub name: &'static str,
    /// Benchmark per core.
    pub cores: [&'static str; 8],
}

/// The six mixed workloads of Table IV.
pub static TABLE4_MIXES: &[MixSpec] = &[
    MixSpec {
        name: "mix_1",
        cores: [
            "mcf",
            "lbm",
            "bc",
            "omnetpp",
            "fotonik3d",
            "xz",
            "cc",
            "parest",
        ],
    },
    MixSpec {
        name: "mix_2",
        cores: [
            "bwaves", "mcf", "cc", "roms", "lbm", "parest", "bfs", "omnetpp",
        ],
    },
    MixSpec {
        name: "mix_3",
        cores: ["fotonik3d", "cam4", "pr", "xz", "mcf", "roms", "lbm", "bfs"],
    },
    MixSpec {
        name: "mix_4",
        cores: [
            "omnetpp",
            "xz",
            "lbm",
            "cactuBSSN",
            "fotonik3d",
            "cam4",
            "mcf",
            "roms",
        ],
    },
    MixSpec {
        name: "mix_5",
        cores: [
            "lbm",
            "fotonik3d",
            "omnetpp",
            "mcf",
            "xz",
            "xalancbmk",
            "cam4",
            "cc",
        ],
    },
    MixSpec {
        name: "mix_6",
        cores: [
            "parest",
            "lbm",
            "roms",
            "fotonik3d",
            "bfs",
            "omnetpp",
            "mcf",
            "xz",
        ],
    },
];

/// Every workload name of Table IV, singles then mixes.
pub fn all_workload_names() -> Vec<&'static str> {
    TABLE4_WORKLOADS
        .iter()
        .map(|w| w.name)
        .chain(TABLE4_MIXES.iter().map(|m| m.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_18_singles_and_6_mixes() {
        assert_eq!(TABLE4_WORKLOADS.len(), 18);
        assert_eq!(TABLE4_MIXES.len(), 6);
        assert_eq!(all_workload_names().len(), 24);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(WorkloadSpec::by_name("lbm").unwrap().store_frac, 0.50);
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn mixes_reference_real_benchmarks() {
        for mix in TABLE4_MIXES {
            for core in mix.cores {
                assert!(
                    WorkloadSpec::by_name(core).is_some(),
                    "{} references unknown {core}",
                    mix.name
                );
            }
        }
    }

    #[test]
    fn specs_are_sane() {
        for w in TABLE4_WORKLOADS {
            assert!(w.apki > 0.0 && w.apki < 200.0, "{}", w.name);
            assert!((1..=8).contains(&w.run_lines), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.store_frac), "{}", w.name);
            assert!(w.pages >= 1024, "{} footprint too small", w.name);
            assert!((0.0..2.0).contains(&w.zipf_s), "{}", w.name);
        }
    }

    #[test]
    fn footprints_exceed_the_llc() {
        // Streaming assumption: working set >> 16 MB (4096 pages).
        for w in TABLE4_WORKLOADS {
            assert!(
                w.pages * 4096 > 16 * 1024 * 1024,
                "{} fits in the LLC, calibration invalid",
                w.name
            );
        }
    }
}
