//! Synthetic trace generation from a [`WorkloadSpec`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mirza_frontend::trace::{AccessStream, TraceOp};

use crate::spec::WorkloadSpec;

/// Approximate Zipf sampler over `0..n` using the inverse-CDF of the
/// continuous power-law approximation (exact enough for shaping page
/// popularity; `s = 0` degenerates to uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed (n^(1-s) - 1) for the inverse transform.
    scale: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "need a non-empty domain");
        assert!(s >= 0.0, "skew must be non-negative");
        // Avoid the s == 1 singularity of the closed form.
        let s = if (s - 1.0).abs() < 1e-6 { 0.999999 } else { s };
        Zipf {
            n,
            s,
            scale: (n as f64).powf(1.0 - s) - 1.0,
        }
    }

    /// Draws one rank (0 = most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = (self.scale * u + 1.0).powf(1.0 / (1.0 - self.s));
        (x as u64).min(self.n - 1)
    }
}

/// Streams [`TraceOp`]s matching a [`WorkloadSpec`].
///
/// Each spatial run picks a page by Zipf rank (ranks are scattered over the
/// virtual address space with a Feistel-like permutation so popular pages do
/// not cluster), a random starting line, and emits `run_lines` sequential
/// accesses. Gaps between accesses realize the spec's APKI exactly on
/// average using an error accumulator.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    rng: SmallRng,
    zipf: Zipf,
    /// Remaining (page, next line) of the current run.
    run: Option<(u64, u32, u32)>,
    /// Fixed-point accumulator of non-memory instructions owed.
    gap_acc: f64,
}

impl SyntheticWorkload {
    /// Creates the generator for `spec` with a deterministic `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        SyntheticWorkload {
            zipf: Zipf::new(spec.pages, spec.zipf_s),
            rng: SmallRng::seed_from_u64(seed),
            run: None,
            gap_acc: 0.0,
            spec,
        }
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Scatters Zipf rank -> virtual page number so popular pages spread
    /// over the footprint (multiplicative hashing, stable per workload).
    fn rank_to_vpn(&self, rank: u64) -> u64 {
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.spec.pages
    }
}

/// Lines per 4 KB page.
const LINES_PER_PAGE: u32 = 64;

impl AccessStream for SyntheticWorkload {
    fn next_op(&mut self) -> Option<TraceOp> {
        let (page, line, left) = match self.run.take() {
            Some(r) => r,
            None => {
                let rank = self.zipf.sample(&mut self.rng);
                let page = self.rank_to_vpn(rank);
                let max_start = LINES_PER_PAGE - self.spec.run_lines.min(LINES_PER_PAGE);
                let start = if max_start == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=max_start)
                };
                (page, start, self.spec.run_lines)
            }
        };
        if left > 1 {
            self.run = Some((page, line + 1, left - 1));
        }
        // Non-memory gap: 1000/apki instructions per access, minus the
        // access itself, kept exact on average.
        self.gap_acc += 1000.0 / self.spec.apki - 1.0;
        let nonmem = if self.gap_acc >= 1.0 {
            let g = self.gap_acc.floor();
            self.gap_acc -= g;
            g as u32
        } else {
            0
        };
        let vaddr = page * 4096 + u64::from(line) * 64;
        let is_store = self.rng.gen_bool(self.spec.store_frac);
        Some(TraceOp {
            nonmem,
            vaddr,
            is_store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn spec(apki: f64, run: u32, store: f64) -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            apki,
            run_lines: run,
            store_frac: store,
            pages: 8192,
            zipf_s: 0.5,
        }
    }

    #[test]
    fn apki_is_exact_on_average() {
        let mut w = SyntheticWorkload::new(spec(25.0, 2, 0.1), 1);
        let mut instr = 0u64;
        let n = 100_000;
        for _ in 0..n {
            let op = w.next_op().unwrap();
            instr += u64::from(op.nonmem) + 1;
        }
        let apki = n as f64 * 1000.0 / instr as f64;
        assert!((apki - 25.0).abs() < 0.5, "measured APKI {apki}");
    }

    #[test]
    fn runs_are_sequential_lines() {
        let mut w = SyntheticWorkload::new(spec(10.0, 4, 0.0), 2);
        let a = w.next_op().unwrap();
        let b = w.next_op().unwrap();
        let c = w.next_op().unwrap();
        let d = w.next_op().unwrap();
        assert_eq!(b.vaddr, a.vaddr + 64);
        assert_eq!(c.vaddr, a.vaddr + 128);
        assert_eq!(d.vaddr, a.vaddr + 192);
        // Next run starts elsewhere (with overwhelming probability).
        let e = w.next_op().unwrap();
        assert_ne!(e.vaddr, a.vaddr + 256);
    }

    #[test]
    fn store_fraction_tracks_spec() {
        let mut w = SyntheticWorkload::new(spec(10.0, 1, 0.3), 3);
        let stores = (0..50_000)
            .filter(|_| w.next_op().unwrap().is_store)
            .count();
        let frac = stores as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "store fraction {frac}");
    }

    #[test]
    fn footprint_stays_within_pages() {
        let mut w = SyntheticWorkload::new(spec(10.0, 1, 0.0), 4);
        for _ in 0..10_000 {
            let op = w.next_op().unwrap();
            assert!(op.vaddr < 8192 * 4096);
        }
    }

    #[test]
    fn zipf_skews_popularity() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut top_decile = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                top_decile += 1;
            }
        }
        // With s=1, the top 10% of ranks draw well over half the mass.
        assert!(
            top_decile as f64 > 0.5 * n as f64,
            "top decile only {top_decile}/{n}"
        );
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SyntheticWorkload::new(spec(10.0, 2, 0.2), 9);
        let mut b = SyntheticWorkload::new(spec(10.0, 2, 0.2), 9);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
