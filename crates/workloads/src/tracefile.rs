//! Plain-text trace files, for users who have real program traces instead
//! of the synthetic Table-IV generators.
//!
//! Format (Ramulator-style), one record per line:
//!
//! ```text
//! <nonmem-instructions> <hex-or-decimal-address> <R|W>
//! # comments and blank lines are ignored
//! 12 0x7f3a40 R
//! 0 81920 W
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use mirza_frontend::error::SimError;
use mirza_frontend::trace::TraceOp;

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_addr(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Parses one trace line (`None` for blank/comment lines).
///
/// # Errors
/// Returns the reason when the record is malformed.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<TraceOp>, ParseTraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let err = |message: &str| ParseTraceError {
        line: lineno,
        message: message.to_string(),
    };
    let nonmem = parts
        .next()
        .and_then(|t| t.parse::<u32>().ok())
        .ok_or_else(|| err("expected a non-negative instruction count"))?;
    let vaddr = parts
        .next()
        .and_then(parse_addr)
        .ok_or_else(|| err("expected a hex (0x...) or decimal address"))?;
    let is_store = match parts.next() {
        Some("R") | Some("r") | Some("L") | Some("l") | None => false,
        Some("W") | Some("w") | Some("S") | Some("s") => true,
        Some(other) => return Err(err(&format!("unknown access kind {other:?}"))),
    };
    if parts.next().is_some() {
        return Err(err("trailing tokens"));
    }
    Ok(Some(TraceOp {
        nonmem,
        vaddr,
        is_store,
    }))
}

/// Loads a whole trace file.
///
/// # Errors
/// [`SimError::Io`] for open/read failures, [`SimError::TraceParse`]
/// (naming `path:line`) for malformed records.
pub fn load(path: &Path) -> Result<Vec<TraceOp>, SimError> {
    let shown = path.display().to_string();
    let f = BufReader::new(File::open(path).map_err(|e| SimError::io(&shown, &e))?);
    let mut ops = Vec::new();
    for (i, line) in f.lines().enumerate() {
        let line = line.map_err(|e| SimError::io(&shown, &e))?;
        let parsed = parse_line(&line, i + 1).map_err(|e| SimError::TraceParse {
            path: shown.clone(),
            line: e.line,
            reason: e.message,
        })?;
        if let Some(op) = parsed {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// [`load`], but a trace with zero records (empty file or comments only)
/// is itself an error — replaying it would simulate nothing.
///
/// # Errors
/// Everything [`load`] reports, plus [`SimError::TraceParse`] with
/// `line == 0` for an empty trace.
pub fn load_nonempty(path: &Path) -> Result<Vec<TraceOp>, SimError> {
    let ops = load(path)?;
    if ops.is_empty() {
        return Err(SimError::TraceParse {
            path: path.display().to_string(),
            line: 0,
            reason: "trace contains no records".into(),
        });
    }
    Ok(ops)
}

/// Saves a trace in the same format (addresses in hex).
///
/// # Errors
/// Propagates I/O failures.
pub fn save(path: &Path, ops: &[TraceOp]) -> std::io::Result<()> {
    let mut f = BufWriter::new(File::create(path)?);
    for op in ops {
        writeln!(
            f,
            "{} {:#x} {}",
            op.nonmem,
            op.vaddr,
            if op.is_store { 'W' } else { 'R' }
        )?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_formats() {
        assert_eq!(
            parse_line("12 0x7f3a40 R", 1).unwrap(),
            Some(TraceOp {
                nonmem: 12,
                vaddr: 0x7f3a40,
                is_store: false
            })
        );
        assert_eq!(
            parse_line("0 81920 W", 1).unwrap(),
            Some(TraceOp {
                nonmem: 0,
                vaddr: 81920,
                is_store: true
            })
        );
        // Kind defaults to read.
        assert!(!parse_line("3 0x10", 1).unwrap().unwrap().is_store);
        assert_eq!(parse_line("  # comment", 1).unwrap(), None);
        assert_eq!(parse_line("", 1).unwrap(), None);
    }

    #[test]
    fn rejects_malformed_records() {
        for bad in ["x 0x10 R", "1 zz R", "1 0x10 Q", "1 0x10 R extra"] {
            let e = parse_line(bad, 7).unwrap_err();
            assert_eq!(e.line, 7, "{bad}");
            assert!(e.to_string().contains("line 7"));
        }
    }

    #[test]
    fn save_load_round_trip() {
        let ops: Vec<TraceOp> = (0..50)
            .map(|i| TraceOp {
                nonmem: i % 7,
                vaddr: u64::from(i) * 4096 + 64,
                is_store: i % 3 == 0,
            })
            .collect();
        let path = std::env::temp_dir().join("mirza_trace_roundtrip.trace");
        save(&path, &ops).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, ops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_reports_line_numbers() {
        let path = std::env::temp_dir().join("mirza_trace_badline.trace");
        std::fs::write(&path, "1 0x10 R\nnot a record\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, SimError::TraceParse { line: 2, .. }), "{err}");
        let shown = err.to_string();
        assert!(shown.contains("badline.trace:2"), "{shown}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load(Path::new("/nonexistent/mirza.trace")).unwrap_err();
        assert!(matches!(err, SimError::Io { .. }), "{err}");
    }

    #[test]
    fn empty_trace_is_an_error_only_for_nonempty_loads() {
        let path = std::env::temp_dir().join("mirza_trace_empty.trace");
        std::fs::write(&path, "# only a comment\n\n").unwrap();
        assert_eq!(load(&path).unwrap(), Vec::new());
        let err = load_nonempty(&path).unwrap_err();
        assert!(matches!(err, SimError::TraceParse { line: 0, .. }), "{err}");
        assert!(err.to_string().contains("no records"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
