//! Rowhammer attack kernels (Sections II-A, IX; Figures 10 and 12).
//!
//! Attack patterns are expressed at the row-activation level: an infinite
//! circular sequence of row addresses for one bank. The security harness
//! (`mirza-security`) replays them against a mitigator; the DoS study wraps
//! them into uncached trace streams for the full-system simulator.

use mirza_dram::address::{RegionMap, RowMapping};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An infinite circular activation pattern over one bank.
///
/// # The circular contract
///
/// [`next_act`] and [`take_acts`] form one infinite cyclic stream over
/// [`rows`]: `next_act` yields `rows[idx]` and advances `idx` modulo
/// `rows.len()`, and `take_acts(n)` is exactly `n` calls to `next_act` —
/// the cursor persists across both, so interleaving them continues the
/// same cycle rather than restarting it (the scripted Appendix-B attacks
/// rely on this). The cycle is total: every constructor guarantees a
/// non-empty `rows`, so `next_act` never exhausts and the modulo never
/// divides by zero.
///
/// [`next_act`]: RowPattern::next_act
/// [`take_acts`]: RowPattern::take_acts
/// [`rows`]: RowPattern::rows
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPattern {
    rows: Vec<u32>,
    idx: usize,
}

impl RowPattern {
    /// A circular pattern over explicit rows (the MINT worst case).
    ///
    /// # Panics
    /// Panics if `rows` is empty.
    pub fn circular(rows: Vec<u32>) -> Self {
        assert!(!rows.is_empty(), "pattern needs at least one row");
        RowPattern { rows, idx: 0 }
    }

    /// Classic single-sided hammering of one row.
    pub fn single_sided(row: u32) -> Self {
        Self::circular(vec![row])
    }

    /// Double-sided attack on the victim at physical index `victim_phys`:
    /// alternate the two physically adjacent aggressor rows.
    ///
    /// # Panics
    /// Panics if the victim sits at a subarray edge (no two-sided neighbors).
    pub fn double_sided(mapping: &RowMapping, victim_phys: u32) -> Self {
        let victim_row = mapping.row_of(victim_phys);
        let aggrs = mapping.neighbors(victim_row, 1);
        assert_eq!(
            aggrs.len(),
            2,
            "victim at subarray edge has no double-sided aggressors"
        );
        Self::circular(aggrs)
    }

    /// Many-sided (TRRespass/Blacksmith-style) pattern: `pairs` double-sided
    /// pairs spaced out in the same subarray, designed to thrash small
    /// tracker tables.
    ///
    /// # Panics
    /// Panics if the subarray cannot fit the requested pairs.
    pub fn many_sided(mapping: &RowMapping, subarray: u32, pairs: u32) -> Self {
        let rps = mapping.rows_per_subarray();
        assert!(pairs * 4 < rps, "too many pairs for one subarray");
        let base = subarray * rps;
        let mut rows = Vec::with_capacity(2 * pairs as usize);
        for i in 0..pairs {
            let victim = base + 4 * i + 1;
            rows.push(mapping.row_of(victim - 1));
            rows.push(mapping.row_of(victim + 1));
        }
        Self::circular(rows)
    }

    /// Half-Double style pattern: hammer the distance-2 rows heavily and
    /// sprinkle ACTs on the distance-1 rows so their occasional victim
    /// refreshes "assist" the far aggressors.
    ///
    /// # Panics
    /// Panics if the victim has no distance-2 neighbors on both sides.
    pub fn half_double(mapping: &RowMapping, victim_phys: u32) -> Self {
        let victim_row = mapping.row_of(victim_phys);
        let near = mapping.neighbors(victim_row, 1);
        let all = mapping.neighbors(victim_row, 2);
        let far: Vec<u32> = all.iter().copied().filter(|r| !near.contains(r)).collect();
        assert_eq!(far.len(), 2, "victim needs distance-2 rows on both sides");
        assert_eq!(near.len(), 2, "victim needs distance-1 rows on both sides");
        // 8 far ACTs per near ACT, interleaved.
        let mut rows = Vec::with_capacity(18);
        for &near_row in &near {
            for _ in 0..4 {
                rows.push(far[0]);
                rows.push(far[1]);
            }
            rows.push(near_row);
        }
        Self::circular(rows)
    }

    /// Blacksmith-style non-uniform pattern: `k` rows of one subarray in a
    /// randomized phase order with repetition counts drawn per row, making
    /// the per-row cadence irregular (what breaks sampling-based TRR).
    ///
    /// # Panics
    /// Panics if the subarray cannot host `k` rows.
    pub fn blacksmith(mapping: &RowMapping, subarray: u32, k: u32, seed: u64) -> Self {
        let rps = mapping.rows_per_subarray();
        assert!(k > 0 && k <= rps / 2, "need 1..={} rows", rps / 2);
        let base = subarray * rps;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut phase = Vec::new();
        for i in 0..k {
            let row = mapping.row_of(base + 2 * i + 1);
            // Irregular intensity: 1..=4 ACTs of this row per phase.
            let reps = 1 + (i % 4);
            for _ in 0..reps {
                phase.push(row);
            }
        }
        phase.shuffle(&mut rng);
        Self::circular(phase)
    }

    /// `k` distinct rows of one RCT region (the CGF-evading performance
    /// attack of Figure 12, and the priming kernel of Section IX-B).
    ///
    /// # Panics
    /// Panics if the region holds fewer than `k` rows.
    pub fn same_region(mapping: &RowMapping, regions: &RegionMap, region: u32, k: u32) -> Self {
        assert!(
            k <= regions.rows_per_region(),
            "region holds only {} rows",
            regions.rows_per_region()
        );
        let rows = regions
            .phys_range(region)
            .take(k as usize)
            .map(|p| mapping.row_of(p))
            .collect();
        Self::circular(rows)
    }

    /// The distinct rows of the pattern.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Produces the next activation and advances the circular cursor (see
    /// the type-level *circular contract*).
    pub fn next_act(&mut self) -> u32 {
        // Every constructor funnels through `circular`, which rejects empty
        // row sets; this guards the invariant against future constructors.
        debug_assert!(!self.rows.is_empty(), "pattern constructed empty");
        let r = self.rows[self.idx];
        self.idx = (self.idx + 1) % self.rows.len();
        r
    }

    /// Takes `n` activations as a vector (testing convenience). Continues
    /// the cycle from the current cursor; it does not restart it.
    pub fn take_acts(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_act()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_dram::address::MappingScheme;

    fn strided() -> RowMapping {
        RowMapping::new(MappingScheme::Strided, 128 * 1024, 128)
    }

    #[test]
    fn circular_wraps() {
        let mut p = RowPattern::circular(vec![1, 2, 3]);
        assert_eq!(p.take_acts(7), vec![1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    fn double_sided_straddles_the_victim() {
        let m = strided();
        // Victim at physical index 500 (subarray 0, offset 500):
        // aggressors are physical 499/501 = row addresses 499*128 / 501*128.
        let p = RowPattern::double_sided(&m, 500);
        let mut rows = p.rows().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![499 * 128, 501 * 128]);
    }

    #[test]
    #[should_panic(expected = "subarray edge")]
    fn double_sided_rejects_edge_victims() {
        let m = strided();
        let _ = RowPattern::double_sided(&m, 0);
    }

    #[test]
    fn many_sided_has_2n_distinct_rows() {
        let m = strided();
        let p = RowPattern::many_sided(&m, 3, 10);
        assert_eq!(p.rows().len(), 20);
        let mut uniq = p.rows().to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
        // All rows are inside subarray 3.
        for &r in p.rows() {
            assert_eq!(m.subarray_of_row(r), 3);
        }
    }

    #[test]
    fn same_region_rows_share_the_rct_counter() {
        let m = strided();
        let regions = RegionMap::new(128 * 1024, 128);
        let p = RowPattern::same_region(&m, &regions, 5, 32);
        assert_eq!(p.rows().len(), 32);
        for &r in p.rows() {
            assert_eq!(regions.region_of_phys(m.phys_of(r)), 5);
        }
    }

    #[test]
    fn half_double_mixes_far_and_near() {
        let m = strided();
        let p = RowPattern::half_double(&m, 5_000);
        let far_a = m.row_of(4998);
        let near_a = m.row_of(4999);
        let rows = p.rows();
        let far_count = rows.iter().filter(|&&r| r == far_a).count();
        let near_count = rows.iter().filter(|&&r| r == near_a).count();
        assert!(
            far_count >= 4 * near_count.max(1),
            "{far_count} vs {near_count}"
        );
    }

    #[test]
    fn blacksmith_is_irregular_but_bounded() {
        let m = strided();
        let p = RowPattern::blacksmith(&m, 2, 16, 9);
        // All rows stay in subarray 2.
        for &r in p.rows() {
            assert_eq!(m.subarray_of_row(r), 2);
        }
        // Repetition counts differ across rows (non-uniform cadence).
        let mut counts = std::collections::HashMap::new();
        for &r in p.rows() {
            *counts.entry(r).or_insert(0u32) += 1;
        }
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max > min, "pattern should be non-uniform");
        // Deterministic per seed.
        assert_eq!(p.rows(), RowPattern::blacksmith(&m, 2, 16, 9).rows());
        assert_ne!(p.rows(), RowPattern::blacksmith(&m, 2, 16, 10).rows());
    }

    #[test]
    #[should_panic(expected = "region holds only")]
    fn same_region_rejects_oversized_k() {
        let m = strided();
        let regions = RegionMap::new(128 * 1024, 128);
        let _ = RowPattern::same_region(&m, &regions, 0, 2000);
    }
}
