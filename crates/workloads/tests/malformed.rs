//! Malformed-input fixtures: every broken trace file must surface as a
//! structured [`SimError`] naming the offending `path:line` — never a
//! panic — and a failed load must leave nothing behind on disk.

use std::path::PathBuf;

use mirza_frontend::error::SimError;
use mirza_workloads::tracefile::{self, parse_line};

/// A fresh fixture directory holding exactly one file named `input.trace`
/// with the given contents. Dropping it cleans up.
struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str, contents: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mirza_malformed_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("input.trace"), contents).unwrap();
        Fixture { dir }
    }

    fn path(&self) -> PathBuf {
        self.dir.join("input.trace")
    }

    /// Every file currently in the fixture directory.
    fn files(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn empty_trace_is_a_structured_error() {
    let fx = Fixture::new("empty", "# only a comment\n\n");
    let err = tracefile::load_nonempty(&fx.path()).unwrap_err();
    match &err {
        SimError::TraceParse { path, reason, .. } => {
            assert!(path.contains("input.trace"), "path in {err}");
            assert!(reason.contains("no records"), "reason in {err}");
        }
        other => panic!("expected TraceParse, got {other}"),
    }
    assert_eq!(fx.files(), ["input.trace"], "no partial outputs on failure");
}

#[test]
fn truncated_last_line_names_its_line_number() {
    let fx = Fixture::new("trunc", "3 0x1000 R\n2 0x2000 W\n12 0x");
    let err = tracefile::load(&fx.path()).unwrap_err();
    match &err {
        SimError::TraceParse { path, line, .. } => {
            assert!(path.contains("input.trace"));
            assert_eq!(*line, 3, "truncated record is on line 3: {err}");
        }
        other => panic!("expected TraceParse, got {other}"),
    }
    let shown = err.to_string();
    assert!(shown.contains("input.trace:3"), "message was: {shown}");
    assert_eq!(fx.files(), ["input.trace"], "no partial outputs on failure");
}

#[test]
fn non_numeric_field_is_a_parse_error_not_a_panic() {
    let fx = Fixture::new("nonnum", "3 0x1000 R\nbanana 0x2000 W\n");
    let err = tracefile::load(&fx.path()).unwrap_err();
    match &err {
        SimError::TraceParse { line, .. } => assert_eq!(*line, 2),
        other => panic!("expected TraceParse, got {other}"),
    }
    assert_eq!(err.exit_code(), 3);
    assert_eq!(fx.files(), ["input.trace"], "no partial outputs on failure");
}

#[test]
fn bad_op_kind_field_is_rejected() {
    let fx = Fixture::new("badop", "3 0x1000 Q\n");
    let err = tracefile::load(&fx.path()).unwrap_err();
    assert!(matches!(err, SimError::TraceParse { line: 1, .. }), "{err}");
}

#[test]
fn missing_file_maps_to_io_error_with_exit_code_5() {
    let err = tracefile::load(std::path::Path::new("/nonexistent/nowhere.trace")).unwrap_err();
    match &err {
        SimError::Io { path, .. } => assert!(path.contains("nowhere.trace")),
        other => panic!("expected Io, got {other}"),
    }
    assert_eq!(err.exit_code(), 5);
}

mod fuzz {
    //! Satellite fuzz harness: arbitrary byte-level mutations of a valid
    //! trace must either parse or return an error — never panic.

    use proptest::prelude::*;

    use mirza_workloads::tracefile::parse_line;

    fn valid_trace_text() -> String {
        (0..64u64)
            .map(|i| {
                format!(
                    "{} {:#x} {}\n",
                    i % 9,
                    i * 4096 + 64,
                    if i % 3 == 0 { 'W' } else { 'R' }
                )
            })
            .collect()
    }

    proptest! {
        /// Flip arbitrary bytes at arbitrary offsets in a valid trace and
        /// feed every resulting line to the parser.
        #[test]
        fn mutated_traces_never_panic(
            edits in prop::collection::vec((any::<u16>(), any::<u8>()), 1..16usize),
        ) {
            let mut bytes = valid_trace_text().into_bytes();
            for (pos, val) in &edits {
                let idx = *pos as usize % bytes.len();
                bytes[idx] = *val;
            }
            let text = String::from_utf8_lossy(&bytes);
            for (i, line) in text.lines().enumerate() {
                // Ok(Some), Ok(None) and Err are all acceptable; a panic
                // fails the test.
                let _ = parse_line(line, i + 1);
            }
        }

        /// Pure garbage lines are likewise panic-free.
        #[test]
        fn garbage_lines_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64usize)) {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            let _ = parse_line(&text, 1);
        }
    }
}

// Keep the top-level import used even though the fuzz module has its own.
#[test]
fn parse_line_accepts_the_canonical_form() {
    let op = parse_line("5 0x1040 W", 1).unwrap().unwrap();
    assert_eq!(op.nonmem, 5);
    assert_eq!(op.vaddr, 0x1040);
    assert!(op.is_store);
}
