//! Property-based tests for workload generation and attack kernels.

use proptest::prelude::*;

use mirza_dram::address::{MappingScheme, RegionMap, RowMapping};
use mirza_frontend::trace::AccessStream;
use mirza_workloads::attacks::RowPattern;
use mirza_workloads::spec::WorkloadSpec;
use mirza_workloads::synth::SyntheticWorkload;

proptest! {
    /// Generated APKI converges to the spec within 5% for any sane spec.
    #[test]
    fn apki_converges(
        apki in 1.0f64..100.0,
        run in 1u32..8,
        store in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec {
            name: "prop",
            apki,
            run_lines: run,
            store_frac: store,
            pages: 8192,
            zipf_s: 0.5,
        };
        let mut w = SyntheticWorkload::new(spec, seed);
        let n = 30_000u64;
        let mut instr = 0u64;
        for _ in 0..n {
            let op = w.next_op().unwrap();
            instr += u64::from(op.nonmem) + 1;
        }
        let measured = n as f64 * 1000.0 / instr as f64;
        prop_assert!(
            (measured - apki).abs() / apki < 0.05,
            "target {apki}, measured {measured}"
        );
    }

    /// Generated addresses stay inside the declared footprint.
    #[test]
    fn footprint_respected(pages in 1024u64..32768, seed in any::<u64>()) {
        let spec = WorkloadSpec {
            name: "prop",
            apki: 10.0,
            run_lines: 2,
            store_frac: 0.1,
            pages,
            zipf_s: 0.7,
        };
        let mut w = SyntheticWorkload::new(spec, seed);
        for _ in 0..2_000 {
            prop_assert!(w.next_op().unwrap().vaddr < pages * 4096);
        }
    }

    /// A circular pattern visits each row the same number of times
    /// (within one) over any horizon.
    #[test]
    fn circular_patterns_are_fair(
        k in 1usize..32,
        horizon in 1usize..500,
    ) {
        let rows: Vec<u32> = (0..k as u32).map(|i| i * 7).collect();
        let mut p = RowPattern::circular(rows.clone());
        let mut counts = vec![0u32; k];
        for _ in 0..horizon {
            let r = p.next_act();
            let idx = rows.iter().position(|&x| x == r).unwrap();
            counts[idx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unfair rotation: {counts:?}");
    }

    /// Same-region patterns only touch their region, for any region and
    /// any k within capacity.
    #[test]
    fn same_region_stays_home(region in 0u32..128, k in 1u32..64) {
        let mapping = RowMapping::new(MappingScheme::Strided, 128 * 1024, 128);
        let regions = RegionMap::new(128 * 1024, 128);
        let mut p = RowPattern::same_region(&mapping, &regions, region, k);
        for _ in 0..200 {
            let row = p.next_act();
            prop_assert_eq!(regions.region_of_phys(mapping.phys_of(row)), region);
        }
    }

    /// Double-sided aggressors straddle their victim physically.
    #[test]
    fn double_sided_straddles(victim in 1u32..1023) {
        let mapping = RowMapping::new(MappingScheme::Strided, 128 * 1024, 128);
        let p = RowPattern::double_sided(&mapping, victim);
        let mut phys: Vec<u32> = p.rows().iter().map(|&r| mapping.phys_of(r)).collect();
        phys.sort_unstable();
        prop_assert_eq!(phys, vec![victim - 1, victim + 1]);
    }
}
