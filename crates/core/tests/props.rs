//! Property-based tests for the MIRZA core: MINT window discipline, queue
//! invariants, RCT counting conservation, and whole-tracker accounting.

use proptest::prelude::*;

use mirza_core::config::MirzaConfig;
use mirza_core::mint::MintSampler;
use mirza_core::mirza::Mirza;
use mirza_core::queue::MirzaQueue;
use mirza_core::rct::{FilterDecision, RegionCountTable, ResetPolicy};
use mirza_dram::address::RegionMap;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

fn small_geom() -> Geometry {
    Geometry {
        subchannels: 1,
        ranks: 1,
        banks: 2,
        rows_per_bank: 4096,
        row_bytes: 4096,
        line_bytes: 64,
        subarrays_per_bank: 4,
        rows_per_ref: 16,
    }
}

proptest! {
    /// MINT selects exactly one candidate per window, whatever the window
    /// size, seed or stream content.
    #[test]
    fn mint_selects_one_per_window(
        w in 1u32..64,
        seed in any::<u64>(),
        windows in 1u32..50,
    ) {
        let mut mint = MintSampler::new(w, seed);
        let mut selections = 0;
        for i in 0..w * windows {
            if mint.observe(i).is_some() {
                selections += 1;
            }
        }
        prop_assert_eq!(selections, windows);
    }

    /// The queue never exceeds capacity, never holds duplicates, and
    /// `wants_alert` is exactly `full || any count > QTH`.
    #[test]
    fn queue_invariants(
        cap in 1usize..8,
        qth in 1u32..32,
        ops in proptest::collection::vec((0u32..16, any::<bool>()), 0..200),
    ) {
        let mut q = MirzaQueue::new(cap, qth);
        for (row, pop) in ops {
            if pop {
                let before = q.len();
                let e = q.pop_max();
                prop_assert_eq!(e.is_some(), before > 0);
            } else if q.bump(row).is_none() {
                let _ = q.insert(row);
            }
            prop_assert!(q.len() <= cap);
            let mut rows: Vec<u32> = q.iter().map(|e| e.row).collect();
            rows.sort_unstable();
            let mut dedup = rows.clone();
            dedup.dedup();
            prop_assert_eq!(&rows, &dedup, "duplicate rows buffered");
            let expect = q.is_full() || q.iter().any(|e| e.count > qth);
            prop_assert_eq!(q.wants_alert(), expect);
        }
    }

    /// RCT conservation under Safe reset: for any ACT stream without
    /// refresh, a region's counter equals min(ACTs counted, FTH+1), where
    /// interior ACTs count once and edge ACTs also count toward the
    /// neighbor.
    #[test]
    fn rct_counts_conserve(
        fth in 1u32..64,
        acts in proptest::collection::vec(0u32..128, 0..300),
    ) {
        let regions = RegionMap::new(128, 8);
        let mut rct = RegionCountTable::new(1, regions, fth, ResetPolicy::Safe);
        let mut expected = [0u64; 8];
        for phys in acts {
            let r = regions.region_of_phys(phys);
            let before = rct.counter(0, r);
            let d = rct.observe(0, phys);
            prop_assert_eq!(
                matches!(d, FilterDecision::Candidate),
                before > fth,
                "decision must use the pre-increment counter"
            );
            if before <= fth {
                expected[r as usize] += 1;
                if let Some(adj) = regions.adjacent_region_of_edge(phys) {
                    expected[adj as usize] += 1;
                }
            }
        }
        for r in 0..8u32 {
            let c = u64::from(rct.counter(0, r));
            prop_assert!(c <= u64::from(fth) + 1);
            prop_assert!(c <= expected[r as usize]);
        }
    }

    /// Whole-tracker accounting: filtered + candidates == observed, and
    /// victim rows are between 2x and 4x mitigations (subarray edges).
    #[test]
    fn mirza_accounting(
        seed in any::<u64>(),
        rows in proptest::collection::vec(0u32..4096, 1..400),
    ) {
        let g = small_geom();
        let cfg = MirzaConfig {
            fth: 8,
            mint_w: 4,
            regions_per_bank: 4,
            ..MirzaConfig::trhd_1000()
        };
        let mut m = Mirza::new(cfg, &g, seed);
        for (i, row) in rows.iter().enumerate() {
            m.on_activate(i % 2, *row, Ps::ZERO);
            if m.alert_pending() {
                m.on_rfm(true, Ps::ZERO);
            }
        }
        let s = m.stats();
        prop_assert_eq!(s.acts_filtered + s.acts_candidate, s.acts_observed);
        prop_assert!(s.victim_rows_refreshed >= 2 * s.mitigations);
        prop_assert!(s.victim_rows_refreshed <= 4 * s.mitigations);
        prop_assert_eq!(s.ref_mitigations, 0, "MIRZA never cannibalizes REF");
    }

    /// The safe reset protocol never lets a region's effective counter
    /// drop below the number of ACTs it received since its last refresh
    /// completed (no under-counting, Appendix B).
    #[test]
    fn safe_reset_never_undercounts(
        fth in 4u32..40,
        burst_a in 0u32..40,
        burst_b in 0u32..40,
    ) {
        let regions = RegionMap::new(128, 8);
        let mut rct = RegionCountTable::new(1, regions, fth, ResetPolicy::Safe);
        let mut candidates = 0u64;
        // Phase 1: burst_a ACTs to region 0 before its refresh begins.
        for _ in 0..burst_a {
            if matches!(rct.observe(0, 5), FilterDecision::Candidate) {
                candidates += 1;
            }
        }
        // Region 0 starts refreshing.
        rct.on_ref(&RefreshSlice { index: 0, phys_rows: 0..8 });
        // Phase 2: burst_b ACTs while refreshing; decisions use the RRC.
        for _ in 0..burst_b {
            if matches!(rct.observe(0, 5), FilterDecision::Candidate) {
                candidates += 1;
            }
        }
        // Filtered ACTs across both phases never exceed FTH+2 in total:
        // the RRC carries phase-1 counts into phase-2 decisions.
        let filtered = u64::from(burst_a + burst_b) - candidates;
        prop_assert!(
            filtered <= u64::from(fth) + 2,
            "{} filtered ACTs with FTH {}",
            filtered,
            fth
        );
    }
}
