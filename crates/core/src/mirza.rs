//! The MIRZA mitigation engine (Section V, Figure 8): RCT filtering,
//! MINT probabilistic selection, MIRZA-Q buffering, and reactive ALERT
//! back-off. Also provides the *Naive MIRZA* ablation (MINT+ABO without
//! filtering, Section IV-A).

use mirza_dram::address::{RegionMap, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{
    DeviceFault, MitigationLog, MitigationStats, Mitigator, RefreshSlice,
};
use mirza_dram::time::Ps;
use mirza_telemetry::{names, Json, Telemetry};

use crate::config::{MirzaConfig, BLAST_RADIUS};
use crate::mint::MintSampler;
use crate::queue::MirzaQueue;
use crate::rct::{FilterDecision, RegionCountTable, ResetPolicy};

/// MIRZA for one sub-channel: per-bank RCT rows, MINT samplers and queues.
///
/// ```
/// use mirza_core::config::MirzaConfig;
/// use mirza_core::mirza::Mirza;
/// use mirza_dram::geometry::Geometry;
/// use mirza_dram::mitigation::Mitigator;
/// use mirza_dram::time::Ps;
///
/// let mut m = Mirza::new(MirzaConfig::trhd_1000(), &Geometry::ddr5_32gb(), 42);
/// m.on_activate(0, 1234, Ps::ZERO);
/// assert_eq!(m.stats().acts_filtered, 1); // cold region: filtered
/// ```
pub struct Mirza {
    cfg: MirzaConfig,
    mapping: RowMapping,
    rct: Option<RegionCountTable>,
    mint: Vec<MintSampler>,
    queues: Vec<MirzaQueue>,
    stats: MitigationStats,
    alert: bool,
    log: MitigationLog,
    telemetry: Telemetry,
}

impl std::fmt::Debug for Mirza {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mirza")
            .field("cfg", &self.cfg)
            .field("filtering", &self.rct.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Mirza {
    /// Creates a full MIRZA instance for the banks of one sub-channel.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`MirzaConfig::validate`].
    pub fn new(cfg: MirzaConfig, geom: &Geometry, seed: u64) -> Self {
        Self::with_reset_policy(cfg, geom, seed, ResetPolicy::Safe)
    }

    /// Creates MIRZA with an explicit RCT reset policy (the eager/lazy
    /// variants exist to demonstrate the Appendix-B under-count attack).
    pub fn with_reset_policy(
        cfg: MirzaConfig,
        geom: &Geometry,
        seed: u64,
        policy: ResetPolicy,
    ) -> Self {
        cfg.validate().expect("invalid MIRZA configuration");
        let banks = geom.banks_per_subchannel() as usize;
        let regions = RegionMap::new(geom.rows_per_bank, cfg.regions_per_bank);
        let rct = Some(RegionCountTable::new(banks, regions, cfg.fth, policy));
        Self::build(cfg, geom, seed, rct)
    }

    /// Creates *Naive MIRZA*: MINT+ABO with no coarse-grained filtering
    /// (every ACT is a selection candidate). Used for Table V.
    pub fn naive(mint_w: u32, queue_capacity: usize, geom: &Geometry, seed: u64) -> Self {
        let cfg = MirzaConfig {
            mint_w,
            queue_capacity,
            // FTH/regions are unused without an RCT; keep defaults.
            ..MirzaConfig::trhd_1000()
        };
        Self::build(cfg, geom, seed, None)
    }

    fn build(cfg: MirzaConfig, geom: &Geometry, seed: u64, rct: Option<RegionCountTable>) -> Self {
        let banks = geom.banks_per_subchannel() as usize;
        let mapping = RowMapping::for_geometry(cfg.mapping, geom);
        let mint = (0..banks)
            .map(|b| MintSampler::new(cfg.mint_w, seed.wrapping_add(b as u64)))
            .collect();
        let queues = (0..banks)
            .map(|_| MirzaQueue::new(cfg.queue_capacity, cfg.qth))
            .collect();
        Mirza {
            cfg,
            mapping,
            rct,
            mint,
            queues,
            stats: MitigationStats::default(),
            alert: false,
            log: MitigationLog::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MirzaConfig {
        &self.cfg
    }

    /// Whether coarse-grained filtering is enabled (false for Naive MIRZA).
    pub fn filtering_enabled(&self) -> bool {
        self.rct.is_some()
    }

    /// Read-only access to the RCT (None for Naive MIRZA).
    pub fn rct(&self) -> Option<&RegionCountTable> {
        self.rct.as_ref()
    }

    /// The per-bank queue state.
    pub fn queue(&self, bank: usize) -> &MirzaQueue {
        &self.queues[bank]
    }

    /// Total selections dropped on full queues across all banks.
    pub fn queue_drops(&self) -> u64 {
        self.queues.iter().map(MirzaQueue::drops).sum()
    }

    fn recompute_alert(&mut self) {
        self.alert = self.queues.iter().any(MirzaQueue::wants_alert);
    }
}

impl Mitigator for Mirza {
    fn name(&self) -> &'static str {
        if self.rct.is_some() {
            "mirza"
        } else {
            "mirza-naive"
        }
    }

    fn on_activate(&mut self, bank: usize, row: u32, now: Ps) {
        self.stats.acts_observed += 1;
        let decision = match self.rct.as_mut() {
            Some(rct) => rct.observe(bank, self.mapping.phys_of(row)),
            None => FilterDecision::Candidate,
        };
        match decision {
            FilterDecision::Filtered => {
                self.stats.acts_filtered += 1;
            }
            FilterDecision::Candidate => {
                self.stats.acts_candidate += 1;
                let qth = self.cfg.qth;
                let q = &mut self.queues[bank];
                match q.bump(row) {
                    Some(count) => {
                        // The first count past QTH is the tardiness expiry
                        // that warrants an ALERT for this entry.
                        if count == qth + 1 {
                            self.telemetry.event(
                                now.as_ps(),
                                "tardiness_expiry",
                                &[
                                    ("bank", Json::U64(bank as u64)),
                                    ("row", Json::U64(u64::from(row))),
                                    ("count", Json::U64(u64::from(count))),
                                ],
                            );
                        }
                    }
                    None => {
                        if let Some(selected) = self.mint[bank].observe(row) {
                            if !q.insert(selected) {
                                self.telemetry.event(
                                    now.as_ps(),
                                    names::EV_MIRZAQ_OVERFLOW,
                                    &[
                                        ("bank", Json::U64(bank as u64)),
                                        ("row", Json::U64(u64::from(selected))),
                                    ],
                                );
                            }
                        }
                    }
                }
                if self.queues[bank].wants_alert() {
                    self.alert = true;
                }
            }
        }
    }

    fn alert_pending(&self) -> bool {
        self.alert
    }

    fn on_ref(&mut self, slice: &RefreshSlice, _now: Ps) {
        // MIRZA performs no mitigation under REF (zero refresh
        // cannibalization); REF only drives the safe RCT reset walk.
        if let Some(rct) = self.rct.as_mut() {
            rct.on_ref(slice);
        }
        // REF cadence (~tREFI) is a natural sampling point for RCT
        // saturation gauges feeding the epoch time series.
        if self.telemetry.is_enabled() {
            if let Some(rct) = self.rct.as_ref() {
                let (max, mean) = rct.counter_stats();
                self.telemetry.set_gauge(names::RCT_MAX, f64::from(max));
                self.telemetry.set_gauge(names::RCT_MEAN, mean);
            }
        }
    }

    fn on_rfm(&mut self, alert: bool, _now: Ps) {
        if alert {
            self.stats.alerts_requested += 1;
        }
        for (bank, q) in self.queues.iter_mut().enumerate() {
            let occupancy = q.len() as u64;
            if let Some(entry) = q.pop_max() {
                self.telemetry
                    .observe(names::MIRZAQ_OCCUPANCY_AT_DRAIN, occupancy);
                self.telemetry
                    .observe(names::MIRZAQ_TARDINESS_AT_DRAIN, u64::from(entry.count));
                self.stats.mitigations += 1;
                self.telemetry.inc(names::MIRZA_MITIGATIONS, 1);
                self.stats.victim_rows_refreshed +=
                    self.mapping.neighbors(entry.row, BLAST_RADIUS).len() as u64;
                self.log.push(bank, entry.row);
            }
        }
        self.recompute_alert();
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn inject_fault(&mut self, fault: &DeviceFault, _now: Ps) -> bool {
        // Raw selectors are reduced modulo the live structure sizes so the
        // same fault plan stays meaningful across geometries. Queue faults
        // re-derive the ALERT level afterwards: a flipped tardiness bit can
        // raise it, a lost entry can clear it.
        match *fault {
            DeviceFault::RctCounterBitFlip { bank, region, bit } => {
                let Some(rct) = self.rct.as_mut() else {
                    return false;
                };
                let bank = (bank % rct.banks() as u64) as usize;
                let region = (region % u64::from(rct.regions().regions())) as u32;
                rct.flip_counter_bit(bank, region, bit);
                true
            }
            DeviceFault::QueueTardinessBitFlip { bank, slot, bit } => {
                let bank = (bank % self.queues.len() as u64) as usize;
                let q = &mut self.queues[bank];
                if q.is_empty() {
                    return false;
                }
                let slot = (slot % q.len() as u64) as usize;
                let hit = q.flip_count_bit(slot, bit).is_some();
                self.recompute_alert();
                hit
            }
            DeviceFault::QueueDropEntry { bank, slot } => {
                let bank = (bank % self.queues.len() as u64) as usize;
                let q = &mut self.queues[bank];
                if q.is_empty() {
                    return false;
                }
                let slot = (slot % q.len() as u64) as usize;
                let hit = q.lose_entry(slot).is_some();
                self.recompute_alert();
                hit
            }
            DeviceFault::QueueDuplicateEntry { bank, slot } => {
                let bank = (bank % self.queues.len() as u64) as usize;
                let q = &mut self.queues[bank];
                if q.is_empty() {
                    return false;
                }
                let slot = (slot % q.len() as u64) as usize;
                let hit = q.duplicate_entry(slot).is_some();
                self.recompute_alert();
                hit
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    fn cfg(fth: u32, mint_w: u32) -> MirzaConfig {
        MirzaConfig {
            fth,
            mint_w,
            regions_per_bank: 4,
            ..MirzaConfig::trhd_1000()
        }
    }

    #[test]
    fn cold_regions_filter_everything() {
        let g = small_geom();
        let mut m = Mirza::new(cfg(1000, 4), &g, 1);
        for i in 0..500 {
            m.on_activate(0, i % 64, Ps::ZERO);
        }
        let s = m.stats();
        assert_eq!(s.acts_observed, 500);
        assert_eq!(s.acts_filtered, 500);
        assert_eq!(s.acts_candidate, 0);
        assert!(!m.alert_pending());
    }

    #[test]
    fn hot_region_feeds_mint_and_triggers_alert() {
        let g = small_geom();
        let mut m = Mirza::new(cfg(10, 4), &g, 1);
        // Hammer rows of one region far past FTH; queue (cap 4) must fill
        // or a tardiness counter must blow through QTH -> ALERT.
        for i in 0..2000u32 {
            m.on_activate(0, i % 8, Ps::ZERO);
        }
        assert!(m.alert_pending());
        let s = m.stats();
        assert!(s.acts_candidate > 0);
        assert!(s.acts_filtered >= 10);
        // Servicing the alert mitigates one entry per bank.
        m.on_rfm(true, Ps::ZERO);
        let s = m.stats();
        assert_eq!(s.alerts_requested, 1);
        assert!(s.mitigations >= 1);
        assert!(s.victim_rows_refreshed >= 2);
    }

    #[test]
    fn alert_clears_when_queue_drains() {
        let g = small_geom();
        let mut m = Mirza::new(cfg(0, 4), &g, 3);
        while !m.alert_pending() {
            for i in 0..64u32 {
                m.on_activate(0, i, Ps::ZERO);
            }
        }
        // Drain: repeated back-off RFMs empty the queues.
        for _ in 0..16 {
            m.on_rfm(true, Ps::ZERO);
        }
        assert!(!m.alert_pending());
        assert!(m.queue(0).is_empty());
    }

    #[test]
    fn naive_variant_treats_every_act_as_candidate() {
        let g = small_geom();
        let mut m = Mirza::naive(4, 4, &g, 9);
        assert!(!m.filtering_enabled());
        assert_eq!(m.name(), "mirza-naive");
        for i in 0..100u32 {
            m.on_activate(1, i, Ps::ZERO);
        }
        let s = m.stats();
        assert_eq!(s.acts_candidate, 100);
        assert_eq!(s.acts_filtered, 0);
        assert!(m.alert_pending(), "queue of 4 fills after ~16 ACTs");
    }

    #[test]
    fn mitigation_refreshes_four_victims_for_interior_rows() {
        let g = small_geom();
        let mut m = Mirza::naive(4, 4, &g, 5);
        // Strided mapping on 4 subarrays: row 500 is interior.
        for _ in 0..64 {
            m.on_activate(0, 500, Ps::ZERO);
        }
        // Row 500 is eventually selected (it is the only candidate).
        m.on_rfm(true, Ps::ZERO);
        let s = m.stats();
        assert_eq!(s.victim_rows_refreshed, 4 * s.mitigations);
    }

    #[test]
    fn per_bank_isolation() {
        let g = small_geom();
        let mut m = Mirza::new(cfg(10, 4), &g, 1);
        for _ in 0..100 {
            m.on_activate(0, 3, Ps::ZERO);
        }
        // Bank 1 never activated anything: its queue must be empty.
        assert!(m.queue(1).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let g = small_geom();
        let run = |seed| {
            let mut m = Mirza::new(cfg(5, 4), &g, seed);
            for i in 0..3000u32 {
                m.on_activate(0, i % 16, Ps::ZERO);
                if m.alert_pending() {
                    m.on_rfm(true, Ps::ZERO);
                }
            }
            let s = m.stats();
            (s.mitigations, s.alerts_requested, s.acts_candidate)
        };
        assert_eq!(run(11), run(11));
    }
}
