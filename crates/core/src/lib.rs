//! # mirza-core — the paper's contribution
//!
//! MIRZA (*Mitigating Rowhammer with Randomization and ALERT*, HPCA 2026):
//! a low-cost **reactive** in-DRAM Rowhammer mitigation built from
//!
//! * [`mint`] — the single-entry randomized MINT tracker,
//! * [`rct`] — the Region Count Table for coarse-grained filtering with the
//!   safe reset protocol,
//! * [`queue`] — the per-bank MIRZA-Q with tardiness counters, and
//! * [`mirza`] — the composed [`Mirza`] engine implementing the DRAM-side
//!   [`Mitigator`](mirza_dram::mitigation::Mitigator) trait, including the
//!   Naive-MIRZA (no filtering) ablation.
//!
//! Configuration presets reproducing Table VII live in [`config`].
//!
//! ```
//! use mirza_core::prelude::*;
//! use mirza_dram::prelude::*;
//!
//! let cfg = MirzaConfig::trhd_1000();
//! assert_eq!(cfg.sram_bytes_per_bank(), 196); // Table VII
//! let mirza = Mirza::new(cfg, &Geometry::ddr5_32gb(), 42);
//! assert_eq!(mirza.name(), "mirza");
//! ```
//!
//! [`Mirza`]: mirza::Mirza

pub mod config;
pub mod mint;
pub mod mirza;
pub mod queue;
pub mod rct;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::config::{MirzaConfig, ABO_EXTRA_ACTS, BLAST_RADIUS, DEFAULT_QTH};
    pub use crate::mint::MintSampler;
    pub use crate::mirza::Mirza;
    pub use crate::queue::{MirzaQueue, QueueEntry};
    pub use crate::rct::{FilterDecision, RegionCountTable, ResetPolicy};
}
