//! The Region Count Table (RCT): coarse-grained filtering (Sections IV-C,
//! V-A) with the safe reset protocol of Appendix B.
//!
//! One untagged counter per region per bank. ACTs to a region at or below
//! the Filtering Threshold (FTH) bump the counter and are *filtered* (no
//! mitigation participation). Once the counter exceeds FTH it saturates at
//! FTH+1 and every further ACT to the region becomes a mitigation
//! *candidate*, until the region is refreshed and its counter reset.

use mirza_dram::address::RegionMap;
use mirza_dram::mitigation::RefreshSlice;

/// When the RCT counter of a region is cleared relative to the region's
/// refresh (Appendix B, Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetPolicy {
    /// Copy the counter into the RRC register at the region's first REF,
    /// clear the counter, and use the RRC (updated alongside) for filtering
    /// decisions while the region is being refreshed. Secure.
    #[default]
    Safe,
    /// Clear at the region's first REF. **Insecure** — rows refreshed late
    /// in the region can be under-counted by up to FTH-1 (kept for the
    /// Appendix-B demonstration).
    Eager,
    /// Clear at the region's last REF. **Insecure** — rows refreshed early
    /// can be under-counted (kept for the Appendix-B demonstration).
    Lazy,
}

/// Outcome of presenting one ACT to the RCT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// The region is cold: the ACT is absorbed by filtering.
    Filtered,
    /// The region exceeded FTH: the row must participate in randomized
    /// selection.
    Candidate,
}

/// Region Count Table for all banks of one sub-channel.
#[derive(Debug, Clone)]
pub struct RegionCountTable {
    fth: u32,
    policy: ResetPolicy,
    regions: RegionMap,
    banks: usize,
    /// `banks x regions`, row-major by bank. Saturates at FTH+1.
    counters: Vec<u32>,
    /// Refreshed-Region-Counter register, one per bank (Safe policy).
    rrc: Vec<u32>,
    region_in_refresh: Option<u32>,
}

impl RegionCountTable {
    /// Creates a zeroed RCT.
    ///
    /// # Panics
    /// Panics if `banks` is zero.
    pub fn new(banks: usize, regions: RegionMap, fth: u32, policy: ResetPolicy) -> Self {
        assert!(banks > 0, "need at least one bank");
        RegionCountTable {
            fth,
            policy,
            banks,
            counters: vec![0; banks * regions.regions() as usize],
            rrc: vec![0; banks],
            region_in_refresh: None,
            regions,
        }
    }

    /// The filtering threshold.
    pub fn fth(&self) -> u32 {
        self.fth
    }

    /// The reset policy in force.
    pub fn policy(&self) -> ResetPolicy {
        self.policy
    }

    /// The region map.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// Current counter of `region` in `bank`.
    pub fn counter(&self, bank: usize, region: u32) -> u32 {
        self.counters[bank * self.regions.regions() as usize + region as usize]
    }

    /// The RRC register of `bank` (meaningful only under [`ResetPolicy::Safe`]
    /// while a region is being refreshed).
    pub fn rrc(&self, bank: usize) -> u32 {
        self.rrc[bank]
    }

    /// Max and mean over all region counters (saturation telemetry: how
    /// close the table runs to FTH between resets).
    pub fn counter_stats(&self) -> (u32, f64) {
        let max = self.counters.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.counters.iter().map(|&c| u64::from(c)).sum();
        let mean = if self.counters.is_empty() {
            0.0
        } else {
            sum as f64 / self.counters.len() as f64
        };
        (max, mean)
    }

    /// The region currently being walked by refresh, if any.
    pub fn region_in_refresh(&self) -> Option<u32> {
        self.region_in_refresh
    }

    /// Number of banks the table covers.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Fault-injection hook (SEU model): flips one bit of the counter of
    /// `region` in `bank` and returns its new value. The bit index is
    /// reduced to the counter's physical width, `ceil(log2(FTH+2))` bits
    /// (just enough to hold the saturation value FTH+1), so every flip
    /// lands in implemented storage.
    pub fn flip_counter_bit(&mut self, bank: usize, region: u32, bit: u32) -> u32 {
        let width = 32 - (self.fth + 1).leading_zeros();
        let i = self.idx(bank, region);
        self.counters[i] ^= 1 << (bit % width.max(1));
        self.counters[i]
    }

    fn idx(&self, bank: usize, region: u32) -> usize {
        bank * self.regions.regions() as usize + region as usize
    }

    fn bump(&mut self, bank: usize, region: u32) {
        let sat = self.fth + 1;
        let i = self.idx(bank, region);
        if self.counters[i] < sat {
            self.counters[i] += 1;
        }
        if self.policy == ResetPolicy::Safe
            && self.region_in_refresh == Some(region)
            && self.rrc[bank] < sat
        {
            self.rrc[bank] += 1;
        }
    }

    /// Presents an ACT to physical row `phys` of `bank` and returns whether
    /// it is filtered or must participate in randomized selection.
    ///
    /// Implements the footnote-3 edge rule: ACTs to the first/last row of a
    /// region also bump the neighboring region's counter, so a victim on the
    /// region boundary cannot see `2*FTH` unfiltered aggressor ACTs.
    pub fn observe(&mut self, bank: usize, phys: u32) -> FilterDecision {
        let region = self.regions.region_of_phys(phys);
        let effective =
            if self.policy == ResetPolicy::Safe && self.region_in_refresh == Some(region) {
                self.rrc[bank]
            } else {
                self.counter(bank, region)
            };
        if effective <= self.fth {
            self.bump(bank, region);
            if let Some(adj) = self.regions.adjacent_region_of_edge(phys) {
                self.bump(bank, adj);
            }
            FilterDecision::Filtered
        } else {
            FilterDecision::Candidate
        }
    }

    /// Applies a REF slice: manages region reset per the configured policy.
    /// Must be called once per REF (the slice applies to every bank).
    pub fn on_ref(&mut self, slice: &RefreshSlice) {
        let rpr = self.regions.rows_per_region();
        let start = slice.phys_rows.start;
        let end = slice.phys_rows.end;
        if start.is_multiple_of(rpr) {
            // Entering a new region.
            let region = self.regions.region_of_phys(start);
            match self.policy {
                ResetPolicy::Safe => {
                    for bank in 0..self.banks {
                        self.rrc[bank] = self.counter(bank, region);
                        let i = self.idx(bank, region);
                        self.counters[i] = 0;
                    }
                    self.region_in_refresh = Some(region);
                }
                ResetPolicy::Eager => {
                    for bank in 0..self.banks {
                        let i = self.idx(bank, region);
                        self.counters[i] = 0;
                    }
                }
                ResetPolicy::Lazy => {}
            }
        }
        if end.is_multiple_of(rpr) {
            // Leaving the region containing the last refreshed row.
            let region = self.regions.region_of_phys(end - 1);
            match self.policy {
                ResetPolicy::Safe => {
                    if self.region_in_refresh == Some(region) {
                        self.region_in_refresh = None;
                    }
                }
                ResetPolicy::Lazy => {
                    for bank in 0..self.banks {
                        let i = self.idx(bank, region);
                        self.counters[i] = 0;
                    }
                }
                ResetPolicy::Eager => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rct(fth: u32, policy: ResetPolicy) -> RegionCountTable {
        // 8 regions of 16 rows for compact tests.
        RegionCountTable::new(2, RegionMap::new(128, 8), fth, policy)
    }

    fn slice(index: u64, start: u32, end: u32) -> RefreshSlice {
        RefreshSlice {
            index,
            phys_rows: start..end,
        }
    }

    #[test]
    fn filters_until_fth_then_candidates() {
        let mut r = rct(10, ResetPolicy::Safe);
        // Interior row (no edge rule interference).
        for i in 0..11 {
            assert_eq!(r.observe(0, 5), FilterDecision::Filtered, "act {i}");
        }
        // Counter is now 11 = FTH+1 -> candidates forever (until refresh).
        for _ in 0..5 {
            assert_eq!(r.observe(0, 5), FilterDecision::Candidate);
        }
        assert_eq!(r.counter(0, 0), 11); // saturated at FTH+1
                                         // Other bank unaffected.
        assert_eq!(r.counter(1, 0), 0);
    }

    #[test]
    fn any_row_in_region_shares_the_counter() {
        let mut r = rct(3, ResetPolicy::Safe);
        r.observe(0, 1);
        r.observe(0, 2);
        r.observe(0, 3);
        r.observe(0, 4);
        // Counter is 4 > FTH=3: next ACT to any row of region 0 is a candidate.
        assert_eq!(r.observe(0, 9), FilterDecision::Candidate);
    }

    #[test]
    fn edge_rows_bump_both_regions() {
        let mut r = rct(100, ResetPolicy::Safe);
        // Row 15 is the last row of region 0 -> also bumps region 1.
        r.observe(0, 15);
        assert_eq!(r.counter(0, 0), 1);
        assert_eq!(r.counter(0, 1), 1);
        // Row 16 is the first row of region 1 -> also bumps region 0.
        r.observe(0, 16);
        assert_eq!(r.counter(0, 0), 2);
        assert_eq!(r.counter(0, 1), 2);
        // Bank-boundary edges bump only their own region.
        r.observe(0, 0);
        assert_eq!(r.counter(0, 0), 3);
    }

    #[test]
    fn safe_reset_uses_rrc_during_region_refresh() {
        let mut r = rct(4, ResetPolicy::Safe);
        for _ in 0..5 {
            r.observe(0, 5);
        }
        assert_eq!(r.observe(0, 5), FilterDecision::Candidate);
        // Region 0 starts refreshing (rows 0..8 of 16).
        r.on_ref(&slice(0, 0, 8));
        assert_eq!(r.region_in_refresh(), Some(0));
        assert_eq!(r.counter(0, 0), 0, "RCT entry cleared");
        assert_eq!(r.rrc(0), 5, "old count preserved in RRC");
        // Decision still uses the RRC: the region stays hot.
        assert_eq!(r.observe(0, 5), FilterDecision::Candidate);
        // Region refresh completes: back to the (low) RCT counter.
        r.on_ref(&slice(1, 8, 16));
        assert_eq!(r.region_in_refresh(), None);
        assert_eq!(r.observe(0, 5), FilterDecision::Filtered);
    }

    #[test]
    fn safe_reset_counts_acts_during_refresh_into_new_window() {
        let mut r = rct(4, ResetPolicy::Safe);
        for _ in 0..3 {
            r.observe(0, 5);
        }
        r.on_ref(&slice(0, 0, 8));
        // Two ACTs land while the region refreshes: both RCT and RRC move.
        r.observe(0, 5);
        r.observe(0, 5);
        assert_eq!(r.rrc(0), 5);
        assert_eq!(r.counter(0, 0), 2, "RCT seeded with refresh-period ACTs");
        r.on_ref(&slice(1, 8, 16));
        // Post-refresh the region carries those 2 ACTs forward.
        assert_eq!(r.counter(0, 0), 2);
    }

    #[test]
    fn eager_reset_clears_at_first_ref() {
        let mut r = rct(4, ResetPolicy::Eager);
        for _ in 0..5 {
            r.observe(0, 5);
        }
        r.on_ref(&slice(0, 0, 8));
        assert_eq!(r.counter(0, 0), 0);
        // Insecure: immediately filtered again even though the region's later
        // rows have not been refreshed yet.
        assert_eq!(r.observe(0, 15), FilterDecision::Filtered);
    }

    #[test]
    fn lazy_reset_clears_at_last_ref() {
        let mut r = rct(4, ResetPolicy::Lazy);
        for _ in 0..5 {
            r.observe(0, 5);
        }
        r.on_ref(&slice(0, 0, 8));
        assert_eq!(r.counter(0, 0), 5, "lazy does not reset at first REF");
        assert_eq!(r.observe(0, 5), FilterDecision::Candidate);
        r.on_ref(&slice(1, 8, 16));
        assert_eq!(r.counter(0, 0), 0);
    }

    #[test]
    fn counter_bit_flips_stay_in_field_width() {
        let mut r = rct(10, ResetPolicy::Safe);
        // FTH+1 = 11 needs 4 bits; raw bit 70 reduces to 70 % 4 = 2.
        assert_eq!(r.flip_counter_bit(0, 3, 70), 4);
        assert_eq!(r.counter(0, 3), 4);
        assert_eq!(r.flip_counter_bit(0, 3, 70), 0, "second flip restores");
    }

    #[test]
    fn single_slice_covering_whole_region_enters_and_leaves() {
        // rows_per_ref == rows_per_region.
        let mut r = RegionCountTable::new(1, RegionMap::new(64, 4), 2, ResetPolicy::Safe);
        for _ in 0..3 {
            r.observe(0, 0);
        }
        r.on_ref(&slice(0, 0, 16));
        assert_eq!(r.region_in_refresh(), None, "enter then leave in one REF");
        assert_eq!(r.counter(0, 0), 0);
    }
}
