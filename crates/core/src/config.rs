//! MIRZA configuration presets (Table VII) and the SRAM budget model.

use mirza_dram::address::MappingScheme;

/// Number of ACTs an attacker can land on a queued row after ALERT triggers
/// and before its mitigation completes (Phase-D, Figure 10): three ACTs in
/// the first prologue, the mandatory epilogue ACT, and three ACTs in the
/// second prologue — the hammered entry becomes the highest-count entry and
/// is popped at the second back-off.
pub const ABO_EXTRA_ACTS: u32 = 7;

/// Default Queue Tardiness Threshold (Section VI-C).
pub const DEFAULT_QTH: u32 = 16;

/// Default MIRZA-Q capacity (Section IV-A).
pub const DEFAULT_QUEUE_CAPACITY: usize = 4;

/// Rowhammer blast radius assumed by mitigation: victims refreshed on each
/// side of an aggressor (2 -> four victim rows per mitigation).
pub const BLAST_RADIUS: u32 = 2;

/// Calibrated MINT tolerated double-sided threshold for window `w`
/// (fit to the published MINT data points; see DESIGN.md §3.4).
pub fn mint_tolerated_trhd(w: u32) -> u32 {
    20 * w
}

/// Calibrated MINT tolerated single-sided threshold for window `w`.
pub fn mint_tolerated_trhs(w: u32) -> u32 {
    40 * w
}

/// Full parameterization of one MIRZA instance (per bank structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirzaConfig {
    /// Target double-sided Rowhammer threshold this config tolerates.
    pub target_trhd: u32,
    /// Filtering threshold: RCT counters at or below this filter ACTs.
    pub fth: u32,
    /// MINT window size (one of every `mint_w` candidate ACTs is selected).
    pub mint_w: u32,
    /// RCT regions per bank.
    pub regions_per_bank: u32,
    /// MIRZA-Q capacity per bank.
    pub queue_capacity: usize,
    /// Queue tardiness threshold.
    pub qth: u32,
    /// Row-to-subarray mapping scheme.
    pub mapping: MappingScheme,
}

impl MirzaConfig {
    /// Table VII row for TRHD = 2000.
    pub fn trhd_2000() -> Self {
        Self::preset(2000, 3330, 16, 64)
    }

    /// Table VII row for TRHD = 1000 (the paper's default).
    pub fn trhd_1000() -> Self {
        Self::preset(1000, 1500, 12, 128)
    }

    /// Table VII row for TRHD = 500.
    pub fn trhd_500() -> Self {
        Self::preset(500, 660, 8, 256)
    }

    /// Table XII configuration for the current threshold of 4.8K
    /// (32 regions, 72 bytes per bank).
    pub fn trhd_4800() -> Self {
        Self::preset(4800, 8000, 16, 32)
    }

    /// Sensitivity-study configuration (Table IX): FTH/MINT-W pairs at
    /// TRHD = 1000 with 128 regions.
    ///
    /// # Panics
    /// Panics if `mint_w` is not one of 4, 8, 12, 16.
    pub fn sensitivity_1000(mint_w: u32) -> Self {
        let fth = match mint_w {
            4 => 1820,
            8 => 1660,
            12 => 1500,
            16 => 1350,
            _ => panic!("Table IX covers MINT-W of 4/8/12/16, got {mint_w}"),
        };
        Self::preset(1000, fth, mint_w, 128)
    }

    fn preset(target_trhd: u32, fth: u32, mint_w: u32, regions: u32) -> Self {
        MirzaConfig {
            target_trhd,
            fth,
            mint_w,
            regions_per_bank: regions,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            qth: DEFAULT_QTH,
            mapping: MappingScheme::Strided,
        }
    }

    /// Derives the FTH that meets `target_trhd` for a given window size,
    /// using the Section VI-B bound:
    /// `TRHD_safe > FTH/2 + MINT_TRHD(W) + QTH + ABO_ACTS`.
    pub fn derive_fth(target_trhd: u32, mint_w: u32, qth: u32) -> u32 {
        let slack = mint_tolerated_trhd(mint_w) + qth + ABO_EXTRA_ACTS;
        2 * target_trhd.saturating_sub(slack + 1)
    }

    /// The Section VI-B safe double-sided threshold of this configuration:
    /// the maximum unmitigated ACTs plus one.
    pub fn safe_trhd(&self) -> u32 {
        self.fth / 2 + mint_tolerated_trhd(self.mint_w) + self.qth + ABO_EXTRA_ACTS + 1
    }

    /// The Section VI-A safe single-sided threshold.
    pub fn safe_trhs(&self) -> u32 {
        self.fth + mint_tolerated_trhs(self.mint_w) + self.qth + ABO_EXTRA_ACTS + 1
    }

    /// Bits per RCT counter: enough to hold FTH + 1 (the saturation value).
    pub fn rct_counter_bits(&self) -> u32 {
        32 - (self.fth + 1).leading_zeros()
    }

    /// SRAM bytes per bank: RCT storage plus a fixed 20-byte allowance for
    /// MIRZA-Q, MINT state and the RRC register (matches Table VII:
    /// 116/196/340 bytes for TRHD 2K/1K/500).
    pub fn sram_bytes_per_bank(&self) -> u32 {
        let rct_bits = self.regions_per_bank * self.rct_counter_bits();
        rct_bits.div_ceil(8) + 20
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    /// Returns a description of the violated constraint, e.g. a window too
    /// small for the steady-state ABO insertion bound (`MINT-W >= 4`,
    /// Section V-D) or an FTH that breaks the target threshold.
    pub fn validate(&self) -> Result<(), String> {
        if self.mint_w < 4 {
            return Err(format!(
                "MINT-W must be >= 4 to bound insertions to one per ALERT, got {}",
                self.mint_w
            ));
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be non-zero".into());
        }
        if self.regions_per_bank == 0 || !self.regions_per_bank.is_power_of_two() {
            return Err("regions per bank must be a non-zero power of two".into());
        }
        Ok(())
    }
}

impl Default for MirzaConfig {
    fn default() -> Self {
        Self::trhd_1000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_sram_budgets() {
        assert_eq!(MirzaConfig::trhd_2000().sram_bytes_per_bank(), 116);
        assert_eq!(MirzaConfig::trhd_1000().sram_bytes_per_bank(), 196);
        assert_eq!(MirzaConfig::trhd_500().sram_bytes_per_bank(), 340);
    }

    #[test]
    fn table12_sram_budget() {
        assert_eq!(MirzaConfig::trhd_4800().sram_bytes_per_bank(), 72);
    }

    #[test]
    fn counter_bits_match_table10() {
        // 11-bit counters at TRHD=1K (Table X).
        assert_eq!(MirzaConfig::trhd_1000().rct_counter_bits(), 11);
        assert_eq!(MirzaConfig::trhd_2000().rct_counter_bits(), 12);
        assert_eq!(MirzaConfig::trhd_500().rct_counter_bits(), 10);
    }

    #[test]
    fn presets_are_safe_for_their_target() {
        for cfg in [
            MirzaConfig::trhd_2000(),
            MirzaConfig::trhd_1000(),
            MirzaConfig::trhd_500(),
            MirzaConfig::trhd_4800(),
        ] {
            assert!(cfg.validate().is_ok());
            assert!(
                cfg.safe_trhd() <= cfg.target_trhd + cfg.target_trhd / 10,
                "{cfg:?}: safe_trhd {} far above target {}",
                cfg.safe_trhd(),
                cfg.target_trhd
            );
        }
    }

    #[test]
    fn sensitivity_rows_share_sram_budget() {
        for w in [4, 8, 12, 16] {
            let cfg = MirzaConfig::sensitivity_1000(w);
            assert_eq!(cfg.sram_bytes_per_bank(), 196, "W={w}");
        }
    }

    #[test]
    #[should_panic(expected = "Table IX")]
    fn sensitivity_rejects_unknown_window() {
        let _ = MirzaConfig::sensitivity_1000(6);
    }

    #[test]
    fn derive_fth_respects_bound() {
        for (trhd, w) in [(2000u32, 16u32), (1000, 12), (500, 8)] {
            let fth = MirzaConfig::derive_fth(trhd, w, DEFAULT_QTH);
            let cfg = MirzaConfig {
                fth,
                mint_w: w,
                target_trhd: trhd,
                ..MirzaConfig::trhd_1000()
            };
            assert!(cfg.safe_trhd() <= trhd, "derived FTH {fth} unsafe");
        }
    }

    #[test]
    fn validate_rejects_small_window() {
        let cfg = MirzaConfig {
            mint_w: 2,
            ..MirzaConfig::trhd_1000()
        };
        assert!(cfg.validate().is_err());
    }
}
