//! MINT: the Minimalist In-DRAM Tracker (Section II-E, Figure 2).
//!
//! MINT operates on windows of `W` candidate activations. Before each window
//! it uniformly picks which of the next `W` candidates will be *selected*;
//! when that candidate arrives its row is emitted for mitigation. A single
//! register of state per bank suffices.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One MINT sampling window over a stream of candidate activations.
///
/// ```
/// use mirza_core::mint::MintSampler;
/// let mut mint = MintSampler::new(4, 7);
/// let mut selected = Vec::new();
/// for row in 0..8u32 {
///     if let Some(sel) = mint.observe(row) {
///         selected.push(sel);
///     }
/// }
/// // Exactly one selection per window of four candidates.
/// assert_eq!(selected.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MintSampler {
    w: u32,
    seen: u32,
    target: u32,
    rng: SmallRng,
}

impl MintSampler {
    /// Creates a sampler with window size `w`, seeded deterministically.
    ///
    /// # Panics
    /// Panics if `w` is zero.
    pub fn new(w: u32, seed: u64) -> Self {
        assert!(w > 0, "MINT window must be non-zero");
        let mut rng = SmallRng::seed_from_u64(seed);
        let target = rng.gen_range(1..=w);
        MintSampler {
            w,
            seen: 0,
            target,
            rng,
        }
    }

    /// Window size.
    pub fn window(&self) -> u32 {
        self.w
    }

    /// Candidates observed in the current window so far.
    pub fn seen_in_window(&self) -> u32 {
        self.seen
    }

    /// Feeds one candidate activation. Returns `Some(row)` when this
    /// candidate is the one selected for the current window.
    pub fn observe(&mut self, row: u32) -> Option<u32> {
        self.seen += 1;
        let hit = self.seen == self.target;
        if self.seen == self.w {
            self.seen = 0;
            self.target = self.rng.gen_range(1..=self.w);
        }
        hit.then_some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exactly_one_selection_per_window() {
        for w in [1u32, 4, 12, 75] {
            let mut mint = MintSampler::new(w, 42);
            let mut selections = 0;
            for i in 0..(w * 100) {
                if mint.observe(i).is_some() {
                    selections += 1;
                }
            }
            assert_eq!(selections, 100, "window {w}");
        }
    }

    #[test]
    fn selection_is_uniform_over_positions() {
        let w = 8u32;
        let trials = 40_000;
        let mut counts: HashMap<u32, u32> = HashMap::new();
        let mut mint = MintSampler::new(w, 7);
        for _ in 0..trials {
            for pos in 0..w {
                if mint.observe(pos).is_some() {
                    *counts.entry(pos).or_default() += 1;
                }
            }
        }
        let expect = trials as f64 / w as f64;
        for pos in 0..w {
            let c = f64::from(*counts.get(&pos).unwrap_or(&0));
            assert!(
                (c - expect).abs() < expect * 0.1,
                "position {pos} selected {c} times, expected ~{expect}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = MintSampler::new(12, seed);
            (0..1000u32)
                .filter_map(|i| m.observe(i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn window_of_one_selects_everything() {
        let mut m = MintSampler::new(1, 0);
        for i in 0..10u32 {
            assert_eq!(m.observe(i), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = MintSampler::new(0, 0);
    }
}
