//! MIRZA-Q: the per-bank queue of MINT-selected aggressor rows with
//! tardiness counters (Sections IV-A, V-A).

/// One buffered aggressor row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// The buffered row address.
    pub row: u32,
    /// Tardiness counter: ACTs this row received since entering the queue
    /// (insertion counts as 1).
    pub count: u32,
    /// Insertion order, for oldest-first tie-breaking.
    seq: u64,
}

/// A small per-bank queue (default 4 entries) with no duplicate rows.
///
/// An ALERT is warranted ([`MirzaQueue::wants_alert`]) when the queue is
/// full or any entry's tardiness counter exceeds the Queue Tardiness
/// Threshold (QTH).
#[derive(Debug, Clone)]
pub struct MirzaQueue {
    capacity: usize,
    qth: u32,
    entries: Vec<QueueEntry>,
    next_seq: u64,
    /// Selections dropped because the queue was full (should be ~0 when
    /// MINT-W >= 4; tracked for diagnostics).
    drops: u64,
}

impl MirzaQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, qth: u32) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        MirzaQueue {
            capacity,
            qth,
            entries: Vec::with_capacity(capacity),
            next_seq: 0,
            drops: 0,
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Selections dropped on a full queue.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Iterates over the buffered entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// If `row` is buffered, increments its tardiness counter and returns
    /// the new count.
    pub fn bump(&mut self, row: u32) -> Option<u32> {
        let e = self.entries.iter_mut().find(|e| e.row == row)?;
        e.count += 1;
        Some(e.count)
    }

    /// Inserts `row` with a tardiness count of 1. Returns `false` (and
    /// counts a drop) when the queue is full; duplicates are rejected with
    /// a panic since callers must [`bump`](Self::bump) first.
    ///
    /// # Panics
    /// Panics if `row` is already buffered.
    pub fn insert(&mut self, row: u32) -> bool {
        assert!(
            self.entries.iter().all(|e| e.row != row),
            "duplicate insertion of row {row}"
        );
        if self.is_full() {
            self.drops += 1;
            return false;
        }
        self.entries.push(QueueEntry {
            row,
            count: 1,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        true
    }

    /// True when the queue is full or any entry's count exceeds QTH.
    pub fn wants_alert(&self) -> bool {
        self.is_full() || self.entries.iter().any(|e| e.count > self.qth)
    }

    /// Removes and returns the entry with the highest tardiness count
    /// (oldest wins ties) — the row mitigated on ALERT.
    pub fn pop_max(&mut self) -> Option<QueueEntry> {
        let (i, _) = self
            .entries
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.count.cmp(&b.count).then(b.seq.cmp(&a.seq)))?;
        Some(self.entries.swap_remove(i))
    }

    /// Fault-injection hook (SEU model): flips one bit of the tardiness
    /// counter of the entry in `slot`, returning `(row, new_count)`. The
    /// bit index is reduced to the tardiness field's physical width,
    /// `ceil(log2(QTH+2))` bits (enough to hold the alert value QTH+1).
    /// `None` when `slot` is unoccupied.
    pub fn flip_count_bit(&mut self, slot: usize, bit: u32) -> Option<(u32, u32)> {
        let e = self.entries.get_mut(slot)?;
        let width = 32 - (self.qth + 1).leading_zeros();
        e.count ^= 1 << (bit % width.max(1));
        Some((e.row, e.count))
    }

    /// Fault-injection hook: silently loses the entry in `slot` (its
    /// pending mitigation vanishes). `None` when `slot` is unoccupied.
    pub fn lose_entry(&mut self, slot: usize) -> Option<QueueEntry> {
        if slot >= self.entries.len() {
            return None;
        }
        Some(self.entries.swap_remove(slot))
    }

    /// Fault-injection hook: duplicates the entry in `slot` into a free
    /// slot (control-logic upset), returning the duplicated row. The copy
    /// gets a fresh `seq`, so `pop_max` drains the copies one at a time;
    /// [`bump`](Self::bump) touches whichever copy it finds first, which
    /// keeps `insert`'s no-duplicate precondition intact (a buffered row
    /// is always bumped, never re-inserted). `None` when `slot` is
    /// unoccupied or the queue is full.
    pub fn duplicate_entry(&mut self, slot: usize) -> Option<u32> {
        if self.is_full() {
            return None;
        }
        let e = *self.entries.get(slot)?;
        self.entries.push(QueueEntry {
            row: e.row,
            count: e.count,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        Some(e.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_bump_pop_cycle() {
        let mut q = MirzaQueue::new(4, 16);
        assert!(q.is_empty());
        assert!(q.insert(10));
        assert!(q.insert(20));
        assert_eq!(q.bump(10), Some(2));
        assert_eq!(q.bump(10), Some(3));
        assert_eq!(q.bump(99), None);
        let top = q.pop_max().unwrap();
        assert_eq!(top.row, 10);
        assert_eq!(top.count, 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn alert_on_full_queue() {
        let mut q = MirzaQueue::new(2, 16);
        q.insert(1);
        assert!(!q.wants_alert());
        q.insert(2);
        assert!(q.is_full());
        assert!(q.wants_alert());
        q.pop_max();
        assert!(!q.wants_alert());
    }

    #[test]
    fn alert_on_tardiness_exceeding_qth() {
        let mut q = MirzaQueue::new(4, 3);
        q.insert(7);
        q.bump(7); // 2
        q.bump(7); // 3 == QTH -> not yet
        assert!(!q.wants_alert());
        q.bump(7); // 4 > QTH
        assert!(q.wants_alert());
    }

    #[test]
    fn full_queue_drops_and_counts() {
        let mut q = MirzaQueue::new(1, 16);
        assert!(q.insert(1));
        assert!(!q.insert(2));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_max_breaks_ties_oldest_first() {
        let mut q = MirzaQueue::new(4, 16);
        q.insert(1);
        q.insert(2);
        q.insert(3);
        assert_eq!(q.pop_max().unwrap().row, 1);
        assert_eq!(q.pop_max().unwrap().row, 2);
        assert_eq!(q.pop_max().unwrap().row, 3);
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate insertion")]
    fn duplicate_insert_panics() {
        let mut q = MirzaQueue::new(4, 16);
        q.insert(5);
        q.insert(5);
    }

    #[test]
    fn fault_hooks_mutate_only_occupied_slots() {
        let mut q = MirzaQueue::new(3, 16);
        assert_eq!(q.flip_count_bit(0, 0), None);
        assert_eq!(q.lose_entry(0), None);
        assert_eq!(q.duplicate_entry(0), None);
        q.insert(7);
        // QTH+1 = 17 needs 5 bits; raw bit 9 reduces to 9 % 5 = 4.
        assert_eq!(q.flip_count_bit(0, 9), Some((7, 1 ^ 16)));
        assert!(q.wants_alert(), "flipped count 17 > QTH");
        assert_eq!(q.duplicate_entry(0), Some(7));
        assert_eq!(q.len(), 2);
        // Both copies bump-able and drainable; no duplicate-insert panic.
        assert!(q.bump(7).is_some());
        assert_eq!(q.lose_entry(1).unwrap().row, 7);
        assert_eq!(q.len(), 1);
    }
}
