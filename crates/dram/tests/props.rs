//! Property-based tests for the DRAM substrate: mapping bijections, region
//! partitions, and timing-state safety under arbitrary legal command
//! sequences.

use proptest::prelude::*;

use mirza_dram::address::{BankId, MappingScheme, RegionMap, RowMapping};
use mirza_dram::command::Command;
use mirza_dram::device::Subchannel;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::NullMitigator;
use mirza_dram::time::Ps;
use mirza_dram::timing::TimingParams;

proptest! {
    /// Row-address <-> physical-index mapping is a bijection for both
    /// schemes at every legal row.
    #[test]
    fn row_mapping_is_bijective(row in 0u32..128 * 1024, strided in any::<bool>()) {
        let scheme = if strided { MappingScheme::Strided } else { MappingScheme::Sequential };
        let m = RowMapping::new(scheme, 128 * 1024, 128);
        let phys = m.phys_of(row);
        prop_assert!(phys < 128 * 1024);
        prop_assert_eq!(m.row_of(phys), row);
    }

    /// Neighbors are symmetric: if b is a neighbor of a, a is a neighbor
    /// of b, and both share a subarray.
    #[test]
    fn neighbors_are_symmetric(row in 0u32..128 * 1024, strided in any::<bool>()) {
        let scheme = if strided { MappingScheme::Strided } else { MappingScheme::Sequential };
        let m = RowMapping::new(scheme, 128 * 1024, 128);
        for n in m.neighbors(row, 2) {
            prop_assert!(m.neighbors(n, 2).contains(&row));
            prop_assert_eq!(m.subarray_of_row(n), m.subarray_of_row(row));
        }
    }

    /// Region map partitions the bank: every physical row belongs to
    /// exactly one region, and edge adjacency is consistent.
    #[test]
    fn regions_partition_the_bank(
        phys in 0u32..128 * 1024,
        regions_pow in 5u32..9, // 32..256 regions
    ) {
        let regions = RegionMap::new(128 * 1024, 1 << regions_pow);
        let r = regions.region_of_phys(phys);
        prop_assert!(r < regions.regions());
        prop_assert!(regions.phys_range(r).contains(&phys));
        if let Some(adj) = regions.adjacent_region_of_edge(phys) {
            prop_assert!(regions.is_region_edge(phys));
            prop_assert_eq!((i64::from(adj) - i64::from(r)).abs(), 1);
        }
    }

    /// Ps arithmetic: max/min ordering and saturating subtraction.
    #[test]
    fn ps_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (pa, pb) = (Ps::from_ps(a), Ps::from_ps(b));
        prop_assert_eq!(pa.max(pb).as_ps(), a.max(b));
        prop_assert_eq!(pa.min(pb).as_ps(), a.min(b));
        prop_assert_eq!(pa.saturating_sub(pb).as_ps(), a.saturating_sub(b));
        prop_assert_eq!((pa + pb).as_ps(), a + b);
    }

    /// Driving the device with whatever `earliest()` allows never violates
    /// timing (the device's own assertions are the oracle).
    #[test]
    fn random_legal_schedules_never_violate_timing(
        ops in proptest::collection::vec((0u32..8, 0u32..64, 0u8..4), 1..120)
    ) {
        let geom = Geometry::ddr5_32gb();
        let mut sc = Subchannel::new(
            TimingParams::ddr5_6000(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        );
        let mut now = Ps::ZERO;
        for (bank, row, kind) in ops {
            let bank = BankId::new(0, 0, bank);
            let cmd = match kind {
                0 => Command::Act { bank, row },
                1 => Command::Pre { bank },
                2 => match sc.open_row(bank) {
                    Some(_) => Command::Rd { bank, col: row % 64 },
                    None => Command::Act { bank, row },
                },
                _ => Command::Ref,
            };
            // Close banks first when REF is requested.
            if matches!(cmd, Command::Ref) && !sc.all_precharged() {
                let e = sc.earliest(&Command::PreAll).unwrap();
                now = now.max(e);
                sc.issue(Command::PreAll, now);
            }
            if let Some(e) = sc.earliest(&cmd) {
                now = now.max(e);
                sc.issue(cmd, now); // would panic on any timing violation
            }
        }
        // Reaching here without a device assertion firing is the property;
        // additionally the device's bookkeeping must stay consistent.
        prop_assert!(sc.stats().pres <= sc.stats().acts + 1 + sc.stats().pres);
    }
}
