//! The `Mitigator` trait: the contract between the DRAM device model and
//! any in-DRAM Rowhammer mitigation (MIRZA, MINT, PRAC/MOAT, Mithril, TRR,
//! PARA, ...).
//!
//! The device owns one mitigator per sub-channel. The mitigator observes
//! every ACT, is given mitigation opportunities on REF and RFM, and may
//! reactively request an ALERT back-off (ABO). All mitigation work is
//! self-accounted through [`MitigationStats`].

use crate::address::RowMapping;
use crate::time::Ps;
use mirza_telemetry::Telemetry;

/// Description of the rows refreshed by one REF command (the refresh-pointer
/// walk position). The same physical rows are refreshed in *every* bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshSlice {
    /// Monotone REF counter since simulation start.
    pub index: u64,
    /// Physical row indices refreshed by this REF in each bank.
    pub phys_rows: std::ops::Range<u32>,
}

/// Self-reported activity counters of a mitigator.
///
/// Field semantics are shared across all tracker implementations so the
/// harness can compare them directly (Tables VIII, XII; Figures 11b, 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MitigationStats {
    /// ACTs observed by the tracker.
    pub acts_observed: u64,
    /// ACTs absorbed by coarse-grained filtering (never reached selection).
    pub acts_filtered: u64,
    /// ACTs that participated in probabilistic/counter selection.
    pub acts_candidate: u64,
    /// Aggressor rows mitigated (victim refresh episodes).
    pub mitigations: u64,
    /// Individual victim rows refreshed by mitigations.
    pub victim_rows_refreshed: u64,
    /// Number of times the tracker raised ALERT.
    pub alerts_requested: u64,
    /// Mitigations performed under (and stealing time from) REF.
    pub ref_mitigations: u64,
}

impl MitigationStats {
    /// Fraction of observed ACTs that escaped filtering.
    pub fn escape_fraction(&self) -> f64 {
        if self.acts_observed == 0 {
            0.0
        } else {
            self.acts_candidate as f64 / self.acts_observed as f64
        }
    }

    /// Mitigations per ACT (the paper's "mitigation overhead", Table VIII).
    pub fn mitigation_rate(&self) -> f64 {
        if self.acts_observed == 0 {
            0.0
        } else {
            self.mitigations as f64 / self.acts_observed as f64
        }
    }
}

/// Bounded log of mitigated aggressors `(bank, row)` for security harnesses.
///
/// Performance simulations never drain the log, so it is capped: pushes
/// beyond [`MitigationLog::CAP`] are counted but dropped.
#[derive(Debug, Clone, Default)]
pub struct MitigationLog {
    entries: Vec<(usize, u32)>,
    dropped: u64,
}

impl MitigationLog {
    /// Maximum buffered entries.
    pub const CAP: usize = 8192;

    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a mitigation of `row` in `bank`.
    pub fn push(&mut self, bank: usize, row: u32) {
        if self.entries.len() < Self::CAP {
            self.entries.push((bank, row));
        } else {
            self.dropped += 1;
        }
    }

    /// Entries dropped past the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes everything logged since the last drain.
    pub fn drain(&mut self) -> Vec<(usize, u32)> {
        std::mem::take(&mut self.entries)
    }
}

/// A transient fault targeting mitigation-engine state (SEU model).
///
/// Selectors (`bank`, `region`, `slot`, `bit`) are raw draws from the
/// injector's RNG; the engine reduces them modulo its own structure sizes
/// so the same fault plan stays meaningful across geometries and trackers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// Flip one bit of one RCT counter (bit reduced to the counter width).
    RctCounterBitFlip {
        /// Raw bank selector.
        bank: u64,
        /// Raw region selector.
        region: u64,
        /// Raw bit selector.
        bit: u32,
    },
    /// Flip one bit of a queued entry's tardiness/count field.
    QueueTardinessBitFlip {
        /// Raw bank selector.
        bank: u64,
        /// Raw occupied-slot selector.
        slot: u64,
        /// Raw bit selector.
        bit: u32,
    },
    /// Silently lose one queued entry (a pending mitigation vanishes).
    QueueDropEntry {
        /// Raw bank selector.
        bank: u64,
        /// Raw occupied-slot selector.
        slot: u64,
    },
    /// Duplicate one queued entry (control-logic upset; wastes capacity).
    QueueDuplicateEntry {
        /// Raw bank selector.
        bank: u64,
        /// Raw occupied-slot selector.
        slot: u64,
    },
}

/// An in-DRAM Rowhammer mitigation engine for one sub-channel.
///
/// Implementations must be deterministic given their RNG seed; the device
/// calls the hooks in global time order.
pub trait Mitigator {
    /// Short, stable identifier used in reports (e.g. `"mirza"`, `"prac-moat"`).
    fn name(&self) -> &'static str;

    /// Called for every ACT, after the device applied it. `bank` is the flat
    /// bank index within the sub-channel.
    fn on_activate(&mut self, bank: usize, row: u32, now: Ps);

    /// True when the tracker needs an ALERT back-off. Sampled by the device
    /// after every command; level-triggered (stays set until the back-off
    /// RFM arrives).
    fn alert_pending(&self) -> bool {
        false
    }

    /// An all-bank REF was issued. The tracker may use part of the REF time
    /// for opportunistic mitigation (refresh cannibalization) and must reset
    /// any per-region state for the refreshed rows.
    fn on_ref(&mut self, slice: &RefreshSlice, now: Ps);

    /// An RFM was issued. `alert` is true when the RFM is the ABO back-off
    /// response to [`alert_pending`](Self::alert_pending); trackers should
    /// then perform one mitigation per bank and clear the alert condition.
    fn on_rfm(&mut self, alert: bool, now: Ps);

    /// Activity counters accumulated so far.
    fn stats(&self) -> MitigationStats;

    /// The row-address mapping the tracker assumes, used by harnesses to
    /// translate aggressors to victims consistently. `None` when the tracker
    /// is mapping-agnostic (e.g. PRAC counters).
    fn mapping(&self) -> Option<&RowMapping> {
        None
    }

    /// Drains the `(bank, aggressor_row)` log of mitigations performed since
    /// the last call (see [`MitigationLog`]). Security harnesses use this to
    /// credit victim refreshes; trackers that do not log return nothing.
    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        Vec::new()
    }

    /// Hands the tracker a telemetry handle so it can record engine-internal
    /// metrics (MIRZA-Q occupancy, tardiness, overflows). Trackers without
    /// internal state to report ignore it.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Applies a transient fault to engine state. Returns `true` when the
    /// fault actually changed something (e.g. a queue fault on an empty
    /// queue is a no-op). Trackers without the targeted structure ignore
    /// the fault and return `false`.
    fn inject_fault(&mut self, _fault: &DeviceFault, _now: Ps) -> bool {
        false
    }
}

/// The unprotected baseline: observes nothing, mitigates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMitigator {
    stats: MitigationStats,
}

impl NullMitigator {
    /// Creates the no-op mitigator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Mitigator for NullMitigator {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_activate(&mut self, _bank: usize, _row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {}

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {}

    fn stats(&self) -> MitigationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mitigator_counts_acts_only() {
        let mut m = NullMitigator::new();
        m.on_activate(0, 1, Ps::ZERO);
        m.on_activate(1, 2, Ps::from_ns(46));
        m.on_ref(
            &RefreshSlice {
                index: 0,
                phys_rows: 0..16,
            },
            Ps::from_us(3),
        );
        m.on_rfm(true, Ps::from_us(4));
        let s = m.stats();
        assert_eq!(s.acts_observed, 2);
        assert_eq!(s.mitigations, 0);
        assert!(!m.alert_pending());
        assert_eq!(m.name(), "none");
    }

    #[test]
    fn stats_ratios() {
        let s = MitigationStats {
            acts_observed: 1200,
            acts_candidate: 12,
            mitigations: 1,
            ..Default::default()
        };
        assert!((s.escape_fraction() - 0.01).abs() < 1e-12);
        assert!((s.mitigation_rate() - 1.0 / 1200.0).abs() < 1e-12);
        let zero = MitigationStats::default();
        assert_eq!(zero.escape_fraction(), 0.0);
        assert_eq!(zero.mitigation_rate(), 0.0);
    }
}
