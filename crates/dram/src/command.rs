//! DRAM command vocabulary issued by the memory controller.

use crate::address::BankId;

/// A command on the DDR5 command bus of one sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Activate `row` in `bank` (opens the row buffer).
    Act {
        /// Target bank.
        bank: BankId,
        /// Row address.
        row: u32,
    },
    /// Precharge `bank` (closes its row buffer).
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Precharge every bank of the sub-channel.
    PreAll,
    /// Read a burst from column `col` of the open row in `bank`.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column (cache-line) index.
        col: u32,
    },
    /// Write a burst to column `col` of the open row in `bank`.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column (cache-line) index.
        col: u32,
    },
    /// All-bank refresh (advances the refresh pointer by one step).
    Ref,
    /// Refresh-management command: gives the device mitigation time.
    /// `alert` distinguishes a reactive ABO back-off RFM from a proactive,
    /// MC-scheduled RFM.
    Rfm {
        /// True when this RFM is the response to an ALERT back-off.
        alert: bool,
    },
}

impl Command {
    /// The bank a bank-scoped command targets, if any.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            Command::Act { bank, .. } | Command::Pre { bank } => Some(bank),
            Command::Rd { bank, .. } | Command::Wr { bank, .. } => Some(bank),
            Command::PreAll | Command::Ref | Command::Rfm { .. } => None,
        }
    }

    /// True for column (data-moving) commands.
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Rd { .. } | Command::Wr { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction() {
        let b = BankId::new(0, 0, 3);
        assert_eq!(Command::Act { bank: b, row: 9 }.bank(), Some(b));
        assert_eq!(Command::Pre { bank: b }.bank(), Some(b));
        assert_eq!(Command::Ref.bank(), None);
        assert_eq!(Command::Rfm { alert: true }.bank(), None);
    }

    #[test]
    fn column_classification() {
        let b = BankId::new(0, 0, 0);
        assert!(Command::Rd { bank: b, col: 0 }.is_column());
        assert!(Command::Wr { bank: b, col: 0 }.is_column());
        assert!(!Command::Act { bank: b, row: 0 }.is_column());
        assert!(!Command::Ref.is_column());
    }
}
