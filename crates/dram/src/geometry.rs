//! Physical organization of the memory system (Table III of the paper).

/// Shape of one DDR5 channel.
///
/// The paper's configuration is 32 GB over one channel with two independent
/// sub-channels, one rank, 32 banks per sub-channel, 128 K rows per bank and
/// 4 KB rows.
///
/// ```
/// use mirza_dram::geometry::Geometry;
/// let g = Geometry::ddr5_32gb();
/// assert_eq!(g.total_bytes(), 32 * (1u64 << 30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Independent sub-channels per channel (DDR5: 2).
    pub subchannels: u32,
    /// Ranks per sub-channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Bytes per row (per sub-channel row buffer).
    pub row_bytes: u32,
    /// Cache line (column access) size in bytes.
    pub line_bytes: u32,
    /// Physical subarrays per bank (rows_per_bank / rows_per_subarray).
    pub subarrays_per_bank: u32,
    /// Rows refreshed in each bank by one REF command.
    pub rows_per_ref: u32,
}

impl Geometry {
    /// The paper's 32 GB DDR5 configuration (Table III).
    pub fn ddr5_32gb() -> Self {
        Geometry {
            subchannels: 2,
            ranks: 1,
            banks: 32,
            rows_per_bank: 128 * 1024,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 128,
            rows_per_ref: 16,
        }
    }

    /// Total capacity of the channel in bytes.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.subchannels)
            * u64::from(self.ranks)
            * u64::from(self.banks)
            * u64::from(self.rows_per_bank)
            * u64::from(self.row_bytes)
    }

    /// Rows in one physical subarray.
    pub fn rows_per_subarray(&self) -> u32 {
        self.rows_per_bank / self.subarrays_per_bank
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Total banks in one sub-channel (`ranks * banks`).
    pub fn banks_per_subchannel(&self) -> u32 {
        self.ranks * self.banks
    }

    /// REF commands needed to walk every row of a bank once.
    pub fn refs_per_full_walk(&self) -> u32 {
        self.rows_per_bank / self.rows_per_ref
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant (non-power-of-two
    /// row counts, subarray not dividing the bank, etc.).
    pub fn validate(&self) -> Result<(), String> {
        if self.subchannels == 0 || self.ranks == 0 || self.banks == 0 {
            return Err("geometry dimensions must be non-zero".into());
        }
        if !self.rows_per_bank.is_power_of_two() {
            return Err("rows_per_bank must be a power of two".into());
        }
        if !self.rows_per_bank.is_multiple_of(self.subarrays_per_bank) {
            return Err("subarrays must evenly divide the bank".into());
        }
        if !self.row_bytes.is_multiple_of(self.line_bytes) {
            return Err("lines must evenly divide the row".into());
        }
        if !self.rows_per_bank.is_multiple_of(self.rows_per_ref) {
            return Err("rows_per_ref must evenly divide the bank".into());
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::ddr5_32gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_32gb() {
        let g = Geometry::ddr5_32gb();
        assert!(g.validate().is_ok());
        assert_eq!(g.total_bytes(), 32 * (1u64 << 30));
        assert_eq!(g.rows_per_subarray(), 1024);
        assert_eq!(g.lines_per_row(), 64);
        assert_eq!(g.banks_per_subchannel(), 32);
    }

    #[test]
    fn full_walk_matches_refw() {
        // 128K rows / 16 rows-per-REF = 8192 REFs, matching ~8.2K REF slots
        // in a 32 ms tREFW at tREFI = 3.9 us.
        let g = Geometry::ddr5_32gb();
        assert_eq!(g.refs_per_full_walk(), 8192);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut g = Geometry::ddr5_32gb();
        g.rows_per_bank = 100_000; // not a power of two
        assert!(g.validate().is_err());

        let mut g = Geometry::ddr5_32gb();
        g.subarrays_per_bank = 100; // does not divide 128K... actually it does not
        assert!(g.validate().is_err() || g.rows_per_bank.is_multiple_of(100));

        let mut g = Geometry::ddr5_32gb();
        g.banks = 0;
        assert!(g.validate().is_err());
    }
}
