//! Refresh-pointer bookkeeping (Appendix B, Figure 14).
//!
//! DDR5 performs an all-bank REF roughly every tREFI. Each REF refreshes a
//! contiguous slice of physical rows (16 in the paper's configuration) at the
//! position of a per-bank `RefPtr` that walks the bank sequentially, one
//! subarray at a time, completing a full pass every tREFW.
//!
//! Refresh is also the event core's liveness anchor: the device's next REF
//! deadline (`Subchannel::next_ref_due`) guarantees the controller always
//! has a bounded next action, so `MemController::next_event_ps` — the
//! skip-ahead bound the sim layer takes over idle quanta — is total even
//! when every queue is empty.

use crate::mitigation::RefreshSlice;

/// Walks the physical rows of a bank in REF-sized steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshPointer {
    rows_per_bank: u32,
    rows_per_ref: u32,
    steps_per_walk: u32,
    step: u64,
}

impl RefreshPointer {
    /// Creates a pointer for a bank of `rows_per_bank` rows refreshed
    /// `rows_per_ref` rows at a time.
    ///
    /// # Panics
    /// Panics if `rows_per_ref` is zero or does not divide `rows_per_bank`.
    pub fn new(rows_per_bank: u32, rows_per_ref: u32) -> Self {
        assert!(rows_per_ref > 0, "rows_per_ref must be non-zero");
        assert!(
            rows_per_bank.is_multiple_of(rows_per_ref),
            "rows_per_ref must divide the bank"
        );
        RefreshPointer {
            rows_per_bank,
            rows_per_ref,
            steps_per_walk: rows_per_bank / rows_per_ref,
            step: 0,
        }
    }

    /// Total REF steps in one full walk of the bank.
    pub fn steps_per_walk(&self) -> u32 {
        self.steps_per_walk
    }

    /// Number of REF commands consumed so far.
    pub fn refs_issued(&self) -> u64 {
        self.step
    }

    /// Completed full walks of the bank.
    pub fn walks_completed(&self) -> u64 {
        self.step / u64::from(self.steps_per_walk)
    }

    /// The slice the *next* REF will refresh, without advancing.
    pub fn peek(&self) -> RefreshSlice {
        let pos = (self.step % u64::from(self.steps_per_walk)) as u32;
        let start = pos * self.rows_per_ref;
        RefreshSlice {
            index: self.step,
            phys_rows: start..start + self.rows_per_ref,
        }
    }

    /// Advances by one REF and returns the slice it refreshed.
    pub fn advance(&mut self) -> RefreshSlice {
        let slice = self.peek();
        self.step += 1;
        slice
    }

    /// Jumps the pointer forward by `steps` positions without refreshing
    /// anything — a fault-injection hook modeling a corrupted RefPtr. The
    /// skipped rows simply miss this walk's refresh.
    pub fn skip(&mut self, steps: u32) {
        self.step += u64::from(steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_the_whole_bank() {
        let mut p = RefreshPointer::new(128 * 1024, 16);
        assert_eq!(p.steps_per_walk(), 8192);
        let first = p.advance();
        assert_eq!(first.index, 0);
        assert_eq!(first.phys_rows, 0..16);
        // Fast-forward to the last step of the first walk.
        for _ in 1..8191 {
            p.advance();
        }
        let last = p.advance();
        assert_eq!(last.phys_rows, (128 * 1024 - 16)..(128 * 1024));
        assert_eq!(p.walks_completed(), 1);
        // Wraps around.
        assert_eq!(p.advance().phys_rows, 0..16);
    }

    #[test]
    fn subarray_takes_64_refs() {
        // A 1024-row subarray at 16 rows/REF takes 64 REFs (Section V-C).
        let mut p = RefreshPointer::new(128 * 1024, 16);
        for i in 0..64 {
            let s = p.advance();
            assert!(s.phys_rows.end <= 1024, "step {i} left subarray 0");
        }
        assert_eq!(p.peek().phys_rows.start, 1024);
    }

    #[test]
    #[should_panic(expected = "divide the bank")]
    fn rejects_uneven_step() {
        let _ = RefreshPointer::new(100, 16);
    }
}
