//! Integer picosecond time base used by the whole simulator.
//!
//! All JEDEC parameters are converted to [`Ps`] once, at configuration time,
//! so the simulation engine never touches floating point and is exactly
//! reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in time or a duration, in picoseconds.
///
/// `Ps` is deliberately a thin `u64` newtype: cheap to copy, totally ordered,
/// and supporting the arithmetic a discrete-event simulator needs.
///
/// ```
/// use mirza_dram::time::Ps;
/// let t = Ps::from_ns(14) + Ps::from_ns(32);
/// assert_eq!(t, Ps::from_ns(46));
/// assert_eq!(t.as_ns_f64(), 46.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(u64);

impl Ps {
    /// Time zero / zero-length duration.
    pub const ZERO: Ps = Ps(0);
    /// The maximum representable instant (used as "never").
    pub const MAX: Ps = Ps(u64::MAX);

    /// Constructs from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Ps(ps)
    }

    /// Constructs from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Constructs from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Constructs from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Lossy conversion to nanoseconds (floating point, for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Lossy conversion to milliseconds (floating point, for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: returns [`Ps::ZERO`] instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Ps) -> Option<Ps> {
        self.0.checked_add(rhs.0).map(Ps)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: Ps) -> Ps {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Ps) -> Ps {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// How many whole periods of `period` fit in `self`.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    #[inline]
    pub fn div_duration(self, period: Ps) -> u64 {
        assert!(period.0 != 0, "division by zero-length period");
        self.0 / period.0
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Rem<Ps> for Ps {
    type Output = Ps;
    #[inline]
    fn rem(self, rhs: Ps) -> Ps {
        Ps(self.0 % rhs.0)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Ps::from_ns(1).as_ps(), 1_000);
        assert_eq!(Ps::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Ps::from_ms(32).as_ps(), 32_000_000_000);
        assert_eq!(Ps::from_ms(32).as_ms_f64(), 32.0);
    }

    #[test]
    fn arithmetic() {
        let a = Ps::from_ns(46);
        let b = Ps::from_ns(14);
        assert_eq!(a + b, Ps::from_ns(60));
        assert_eq!(a - b, Ps::from_ns(32));
        assert_eq!(b * 3, Ps::from_ns(42));
        assert_eq!(a / 2, Ps::from_ns(23));
        assert_eq!(Ps::from_ns(10).saturating_sub(Ps::from_ns(20)), Ps::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Ps::from_ns(5);
        let b = Ps::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn div_duration_counts_whole_periods() {
        let refw = Ps::from_ms(32);
        let refi = Ps::from_ns(3900);
        assert_eq!(refw.div_duration(refi), 8205);
    }

    #[test]
    #[should_panic(expected = "zero-length period")]
    fn div_duration_zero_panics() {
        let _ = Ps::from_ns(1).div_duration(Ps::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ps::from_ps(12)), "12ps");
        assert_eq!(format!("{}", Ps::from_ns(46)), "46.000ns");
        assert_eq!(format!("{}", Ps::from_ms(32)), "32.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
    }
}
