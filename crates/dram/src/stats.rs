//! Device-level activity counters used for performance and energy metrics.

use crate::mitigation::MitigationStats;

/// Raw command counters for one sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// ACT commands issued.
    pub acts: u64,
    /// PRE commands issued (including per-bank closes before REF).
    pub pres: u64,
    /// RD bursts issued.
    pub reads: u64,
    /// WR bursts issued.
    pub writes: u64,
    /// REF commands issued.
    pub refs: u64,
    /// Proactive (MC-scheduled) RFM commands issued.
    pub rfms_proactive: u64,
    /// Reactive (ALERT back-off) RFM commands issued.
    pub rfms_alert: u64,
    /// ALERT assertions observed by the controller.
    pub alerts: u64,
    /// Rows refreshed by demand (REF) refresh, summed over banks.
    pub demand_refresh_rows: u64,
    /// Row-buffer hits (RD/WR to already-open row).
    pub row_hits: u64,
    /// Row-buffer misses (ACT needed on an idle bank).
    pub row_misses: u64,
    /// Row-buffer conflicts (PRE + ACT needed).
    pub row_conflicts: u64,
    /// Picoseconds of data-bus occupancy (for bus-utilization reporting).
    pub bus_busy_ps: u64,
    /// RowPress activation-equivalents charged on row closure (Section
    /// II-A weighting; zero unless RowPress weighting is enabled).
    pub rowpress_equiv_acts: u64,
}

impl DeviceStats {
    /// Data-bus utilization over `elapsed_ps` picoseconds, in percent.
    pub fn bus_utilization_pct(&self, elapsed_ps: u64) -> f64 {
        if elapsed_ps == 0 {
            0.0
        } else {
            100.0 * self.bus_busy_ps as f64 / elapsed_ps as f64
        }
    }

    /// Refresh power overhead (paper Section II-F): victim-refresh rows as a
    /// fraction of demand-refresh rows, in percent.
    pub fn refresh_power_overhead_pct(&self, mitigation: &MitigationStats) -> f64 {
        if self.demand_refresh_rows == 0 {
            0.0
        } else {
            100.0 * mitigation.victim_rows_refreshed as f64 / self.demand_refresh_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_utilization() {
        let s = DeviceStats {
            bus_busy_ps: 500,
            ..Default::default()
        };
        assert_eq!(s.bus_utilization_pct(1000), 50.0);
        assert_eq!(s.bus_utilization_pct(0), 0.0);
    }

    #[test]
    fn refresh_power_overhead() {
        let d = DeviceStats {
            demand_refresh_rows: 1000,
            ..Default::default()
        };
        let m = MitigationStats {
            victim_rows_refreshed: 41,
            ..Default::default()
        };
        assert!((d.refresh_power_overhead_pct(&m) - 4.1).abs() < 1e-12);
        let empty = DeviceStats::default();
        assert_eq!(empty.refresh_power_overhead_pct(&m), 0.0);
    }
}
