//! # mirza-dram — event-driven DDR5 device model
//!
//! The DRAM substrate for the MIRZA reproduction: per-bank timing state
//! machines, rank-level constraints (tRRD/tFAW), data-bus occupancy, the
//! refresh-pointer walk, the ALERT back-off line, and the [`Mitigator`]
//! trait that in-DRAM Rowhammer mitigations implement.
//!
//! All time is integer picoseconds ([`time::Ps`]); the model is event-driven
//! (no per-cycle loop), so a full 32 ms refresh window is tractable.
//!
//! ```
//! use mirza_dram::prelude::*;
//!
//! let geom = Geometry::ddr5_32gb();
//! let mapping = RowMapping::for_geometry(MappingScheme::Strided, &geom);
//! let mut sc = Subchannel::new(
//!     TimingParams::ddr5_6000(),
//!     geom,
//!     mapping,
//!     Box::new(NullMitigator::new()),
//! );
//! let bank = BankId::new(0, 0, 0);
//! let act = Command::Act { bank, row: 42 };
//! let at = sc.earliest(&act).expect("bank is precharged");
//! sc.issue(act, at);
//! assert_eq!(sc.open_row(bank), Some(42));
//! ```
//!
//! [`Mitigator`]: mitigation::Mitigator

pub mod address;
pub mod audit;
pub mod bank;
pub mod command;
pub mod device;
pub mod energy;
pub mod geometry;
pub mod mitigation;
pub mod refresh;
pub mod stats;
pub mod time;
pub mod timing;

/// Convenient re-exports of the types nearly every consumer needs.
pub mod prelude {
    pub use crate::address::{BankId, DramAddr, MappingScheme, RegionMap, RowMapping};
    pub use crate::audit::{AuditConfig, CommandAuditor, Violation};
    pub use crate::command::Command;
    pub use crate::device::{Issued, Subchannel};
    pub use crate::energy::EnergyModel;
    pub use crate::geometry::Geometry;
    pub use crate::mitigation::{MitigationStats, Mitigator, NullMitigator, RefreshSlice};
    pub use crate::refresh::RefreshPointer;
    pub use crate::stats::DeviceStats;
    pub use crate::time::Ps;
    pub use crate::timing::TimingParams;
}
