//! JEDEC DDR5 timing parameters (Table I of the paper) plus the PRAC
//! overlay that inflates `tRP`/`tRC` to make room for counter updates.

use crate::time::Ps;

/// Complete set of timing constraints enforced by the device model.
///
/// Values default to the paper's DDR5-6000AN configuration (Table I);
/// [`TimingParams::ddr5_6000_prac`] applies the PRAC changes
/// (`tRP` 14→36 ns, `tRAS` 32→16 ns, `tRC` 46→52 ns).
///
/// ```
/// use mirza_dram::timing::TimingParams;
/// use mirza_dram::time::Ps;
/// let t = TimingParams::ddr5_6000();
/// assert_eq!(t.t_rc, Ps::from_ns(46));
/// let p = TimingParams::ddr5_6000_prac();
/// assert_eq!(p.t_rc, Ps::from_ns(52));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingParams {
    /// DRAM clock period (DDR5-6000: 333 ps).
    pub t_ck: Ps,
    /// ACT to internal read/write (row access latency), 14 ns.
    pub t_rcd: Ps,
    /// PRE to ACT (precharge time), 14 ns (36 ns under PRAC).
    pub t_rp: Ps,
    /// ACT to PRE minimum (row active time), 32 ns (16 ns under PRAC).
    pub t_ras: Ps,
    /// ACT to ACT, same bank (row cycle), 46 ns (52 ns under PRAC).
    pub t_rc: Ps,
    /// ACT to ACT, different banks of the same rank.
    pub t_rrd: Ps,
    /// Rolling window in which at most four ACTs may be issued per rank.
    pub t_faw: Ps,
    /// Column command to column command (same bank group, burst time).
    pub t_ccd: Ps,
    /// Internal read to precharge.
    pub t_rtp: Ps,
    /// Write recovery: end of write burst to precharge.
    pub t_wr: Ps,
    /// Write-to-read turnaround (end of write burst to read command).
    pub t_wtr: Ps,
    /// Read CAS latency (command to first data).
    pub cl: Ps,
    /// Write CAS latency.
    pub cwl: Ps,
    /// Data burst duration on the bus (BL16 on a 32-bit sub-channel).
    pub t_burst: Ps,
    /// Refresh window: every row must be refreshed once per tREFW, 32 ms.
    pub t_refw: Ps,
    /// Average interval between REF commands, 3900 ns.
    pub t_refi: Ps,
    /// Execution time of a REF command, 410 ns.
    pub t_rfc: Ps,
    /// Execution time of an RFM command (DRAM busy for mitigation).
    pub t_rfm: Ps,
    /// ALERT prologue: the MC may keep issuing for this long after
    /// ALERT assertion (180 ns).
    pub t_alert_prologue: Ps,
    /// ALERT stall: DRAM unavailable while servicing the back-off RFM (350 ns).
    pub t_alert_stall: Ps,
}

impl TimingParams {
    /// The paper's baseline DDR5-6000AN parameter set (Table I + Table III).
    pub fn ddr5_6000() -> Self {
        let t_ck = Ps::from_ps(333);
        TimingParams {
            t_ck,
            t_rcd: Ps::from_ns(14),
            t_rp: Ps::from_ns(14),
            t_ras: Ps::from_ns(32),
            t_rc: Ps::from_ns(46),
            // tRRD_S = 8 tCK at 6000 MT/s.
            t_rrd: Ps::from_ps(8 * 333),
            // Paper uses 12-13 ns for the DoS analysis; we take 13 ns.
            t_faw: Ps::from_ns(13),
            // BL16: 8 clocks between column commands.
            t_ccd: Ps::from_ps(8 * 333),
            t_rtp: Ps::from_ns(8),
            t_wr: Ps::from_ns(30),
            t_wtr: Ps::from_ns(10),
            cl: Ps::from_ns(14),
            cwl: Ps::from_ps(14_000 - 2 * 333),
            t_burst: Ps::from_ps(8 * 333),
            t_refw: Ps::from_ms(32),
            t_refi: Ps::from_ns(3900),
            t_rfc: Ps::from_ns(410),
            t_rfm: Ps::from_ns(350),
            t_alert_prologue: Ps::from_ns(180),
            t_alert_stall: Ps::from_ns(350),
        }
    }

    /// DDR5-6000 with the PRAC timing overlay (Table I, "PRAC" column).
    pub fn ddr5_6000_prac() -> Self {
        TimingParams {
            t_rp: Ps::from_ns(36),
            t_ras: Ps::from_ns(16),
            t_rc: Ps::from_ns(52),
            ..Self::ddr5_6000()
        }
    }

    /// Number of REF commands issued per refresh window.
    pub fn refs_per_refw(&self) -> u64 {
        self.t_refw.div_duration(self.t_refi)
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violated invariant
    /// (e.g. `tRC < tRAS + tRP`, zero-length clock).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ck == Ps::ZERO {
            return Err("tCK must be non-zero".to_string());
        }
        if self.t_rc < self.t_ras {
            return Err(format!(
                "tRC ({}) must be >= tRAS ({})",
                self.t_rc, self.t_ras
            ));
        }
        if self.t_refi >= self.t_refw {
            return Err(format!(
                "tREFI ({}) must be < tREFW ({})",
                self.t_refi, self.t_refw
            ));
        }
        if self.t_rfc >= self.t_refi {
            return Err(format!(
                "tRFC ({}) must be < tREFI ({}) or refresh starves the bank",
                self.t_rfc, self.t_refi
            ));
        }
        if self.t_faw < self.t_rrd {
            return Err(format!(
                "tFAW ({}) must be >= tRRD ({})",
                self.t_faw, self.t_rrd
            ));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr5_6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let t = TimingParams::ddr5_6000();
        assert_eq!(t.t_rcd, Ps::from_ns(14));
        assert_eq!(t.t_rp, Ps::from_ns(14));
        assert_eq!(t.t_ras, Ps::from_ns(32));
        assert_eq!(t.t_rc, Ps::from_ns(46));
        assert_eq!(t.t_refw, Ps::from_ms(32));
        assert_eq!(t.t_refi, Ps::from_ns(3900));
        assert_eq!(t.t_rfc, Ps::from_ns(410));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn prac_overlay_matches_table1() {
        let t = TimingParams::ddr5_6000_prac();
        assert_eq!(t.t_rcd, Ps::from_ns(14)); // unchanged
        assert_eq!(t.t_rp, Ps::from_ns(36));
        assert_eq!(t.t_ras, Ps::from_ns(16));
        assert_eq!(t.t_rc, Ps::from_ns(52));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn refs_per_refw_is_about_8k() {
        let t = TimingParams::ddr5_6000();
        let n = t.refs_per_refw();
        assert!((8000..8400).contains(&n), "got {n}");
    }

    #[test]
    fn validate_rejects_inconsistency() {
        let mut t = TimingParams::ddr5_6000();
        t.t_rc = Ps::from_ns(1);
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr5_6000();
        t.t_refi = Ps::from_ms(64);
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr5_6000();
        t.t_ck = Ps::ZERO;
        assert!(t.validate().is_err());
    }

    #[test]
    fn alert_latency_matches_paper() {
        // "The latency of ALERT is 530ns, out of which DRAM is unavailable
        // for 350ns."
        let t = TimingParams::ddr5_6000();
        assert_eq!(t.t_alert_prologue + t.t_alert_stall, Ps::from_ns(530));
    }
}
