//! The DDR5 sub-channel device model.
//!
//! [`Subchannel`] owns the per-bank timing state machines, enforces
//! rank-level constraints (tRRD, tFAW), tracks data-bus occupancy, walks the
//! refresh pointer, and hosts one [`Mitigator`]. The memory controller asks
//! `earliest_*` questions and then commits commands with [`Subchannel::issue`].
//!
//! The model is event-driven: there is no per-cycle loop. Every constraint is
//! a "not before" timestamp, so a full 32 ms refresh window simulates in
//! seconds.

use std::collections::VecDeque;

use crate::address::{BankId, RowMapping};
use crate::audit::CommandAuditor;
use crate::command::Command;
use crate::geometry::Geometry;
use crate::mitigation::{DeviceFault, MitigationStats, Mitigator};
use crate::refresh::RefreshPointer;
use crate::stats::DeviceStats;
use crate::time::Ps;
use crate::timing::TimingParams;
use mirza_telemetry::{names, Json, Phase, Telemetry};

use crate::bank::BankState;

/// Result of committing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// For RD/WR: the instant the data burst completes on the bus.
    pub data_ready: Option<Ps>,
    /// For blocking commands (REF/RFM): the instant the device is usable again.
    pub busy_until: Option<Ps>,
}

/// One DDR5 sub-channel: banks, timing, refresh, ALERT line and mitigator.
pub struct Subchannel {
    timing: TimingParams,
    geom: Geometry,
    banks: Vec<BankState>,
    /// Sliding window of the last four ACT instants, per rank (tFAW).
    faw: Vec<VecDeque<Ps>>,
    /// Most recent ACT per rank (tRRD); `None` before the first ACT.
    last_act: Vec<Option<Ps>>,
    /// Blocking commands (REF/RFM/ALERT stall) gate everything until here.
    global_block: Ps,
    /// Next instant the shared data bus is free.
    bus_free: Ps,
    /// Direction of the last data burst (for turnaround penalties).
    last_burst_was_write: bool,
    /// Earliest instant for the next column *command* (tCCD at channel level).
    next_col_cmd: Ps,
    next_ref_due: Ps,
    ref_ptr: RefreshPointer,
    mitigator: Box<dyn Mitigator>,
    /// ACTs since the last ALERT service; one mandatory ACT (the epilogue)
    /// must occur before ALERT may re-assert (Section V-D).
    acts_since_alert_service: u64,
    last_issue_at: Ps,
    /// Fault-injection hook: while `last_issue_at` is before this instant,
    /// the ALERT_n pin reads deasserted even if the tracker wants a
    /// back-off (models a dropped/delayed ALERT raise).
    alert_masked_until: Ps,
    stats: DeviceStats,
    /// ACT counts per (bank, physical subarray) for workload characterization.
    act_hist: Vec<u64>,
    metrics_mapping: RowMapping,
    /// RowPress weighting (Section II-A): when enabled, closing a row that
    /// stayed open longer than tRAS charges the tracker additional
    /// activation-equivalents, one per extra tRAS of open time.
    rowpress_weighting: bool,
    /// Sub-channel index within the channel, for span-track labeling (set
    /// by the owning controller; 0 until then).
    subch_index: u32,
    /// Cached `telemetry.has_spans()` so precharges test one local bool.
    spans: bool,
    /// Rolling ACT counter for sampled tracker attribution (see the ACT
    /// arm of [`Subchannel::issue`]).
    tracker_tick: u32,
    /// Number of banks with an open row, maintained incrementally so
    /// `all_precharged`/`open_banks` are O(1) instead of a bank scan.
    open_count: usize,
    /// Cached [`Subchannel::next_interesting_ps`]; `None` after any state
    /// mutation ([`Subchannel::issue`] or a fault hook). A `Cell` because
    /// the probe takes `&self`.
    next_event: std::cell::Cell<Option<Ps>>,
    telemetry: Telemetry,
    /// Independent protocol auditor (shadow checker), when enabled. Boxed:
    /// its per-bank shadow state is only paid for by auditing runs.
    audit: Option<Box<CommandAuditor>>,
}

impl std::fmt::Debug for Subchannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subchannel")
            .field("banks", &self.banks.len())
            .field("mitigator", &self.mitigator.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Subchannel {
    /// Creates a sub-channel with the given timing, geometry, metrics mapping
    /// and mitigation engine.
    pub fn new(
        timing: TimingParams,
        geom: Geometry,
        metrics_mapping: RowMapping,
        mitigator: Box<dyn Mitigator>,
    ) -> Self {
        timing.validate().expect("invalid timing parameters");
        geom.validate().expect("invalid geometry");
        let nbanks = geom.banks_per_subchannel() as usize;
        let hist = nbanks * geom.subarrays_per_bank as usize;
        Subchannel {
            next_ref_due: timing.t_refi,
            ref_ptr: RefreshPointer::new(geom.rows_per_bank, geom.rows_per_ref),
            banks: vec![BankState::new(); nbanks],
            faw: vec![VecDeque::with_capacity(4); geom.ranks as usize],
            last_act: vec![None; geom.ranks as usize],
            global_block: Ps::ZERO,
            bus_free: Ps::ZERO,
            last_burst_was_write: false,
            next_col_cmd: Ps::ZERO,
            mitigator,
            acts_since_alert_service: 1, // ALERT may assert immediately
            last_issue_at: Ps::ZERO,
            alert_masked_until: Ps::ZERO,
            stats: DeviceStats::default(),
            act_hist: vec![0; hist],
            metrics_mapping,
            rowpress_weighting: false,
            subch_index: 0,
            spans: false,
            tracker_tick: 0,
            open_count: 0,
            next_event: std::cell::Cell::new(None),
            telemetry: Telemetry::disabled(),
            audit: None,
            timing,
            geom,
        }
    }

    /// Enables the independent protocol auditor, validating the command
    /// stream against the device's own timing parameters.
    pub fn enable_audit(&mut self) {
        let reference = self.timing.clone();
        self.enable_audit_with(reference);
    }

    /// Enables the auditor with an explicit reference timing (may differ
    /// from what the device enforces; used by tests to inject
    /// device-legal but reference-illegal streams).
    pub fn enable_audit_with(&mut self, reference: TimingParams) {
        self.audit = Some(Box::new(CommandAuditor::new(reference, &self.geom)));
    }

    /// The protocol auditor, when enabled.
    pub fn auditor(&self) -> Option<&CommandAuditor> {
        self.audit.as_deref()
    }

    /// Enables per-row ACT tracking in the auditor (enabling the auditor
    /// itself first if needed), using the device's metrics mapping and
    /// geometry. Powers the fault-run security verdict.
    pub fn enable_row_tracking(&mut self) {
        if self.audit.is_none() {
            self.enable_audit();
        }
        let (mapping, rows, per_ref) = (
            self.metrics_mapping,
            self.geom.rows_per_bank,
            self.geom.rows_per_ref,
        );
        if let Some(a) = &mut self.audit {
            a.enable_row_tracking(mapping, rows, per_ref);
        }
    }

    /// Attaches a telemetry handle (cloned down into the mitigator).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.mitigator.set_telemetry(telemetry.clone());
        self.spans = telemetry.has_spans();
        self.telemetry = telemetry;
    }

    /// Records which sub-channel of the channel this device is, so span
    /// tracks carry the right label. Called by the owning controller.
    pub fn set_subch_index(&mut self, subch: u32) {
        self.subch_index = subch;
    }

    /// Enables RowPress weighting: long row-open times are converted into
    /// activation equivalents charged to the mitigation engine (the
    /// IMPRESS-style defense the threat model assumes, Section II-A).
    pub fn set_rowpress_weighting(&mut self, enabled: bool) {
        self.rowpress_weighting = enabled;
    }

    /// Charges RowPress activation-equivalents for a row that was open
    /// from its ACT until `now`.
    fn charge_rowpress(&mut self, flat: usize, row: u32, opened_at: Ps, now: Ps) {
        if !self.rowpress_weighting {
            return;
        }
        let open_time = now.saturating_sub(opened_at);
        let extra = open_time.as_ps() / self.timing.t_ras.as_ps();
        for _ in 1..extra.min(64) {
            self.stats.rowpress_equiv_acts += 1;
            self.mitigator.on_activate(flat, row, now);
        }
    }

    /// The timing parameter set in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Raw command counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The mitigator's self-reported counters.
    pub fn mitigation_stats(&self) -> MitigationStats {
        self.mitigator.stats()
    }

    /// Name of the installed mitigator.
    pub fn mitigator_name(&self) -> &'static str {
        self.mitigator.name()
    }

    /// ACT counts per (bank, physical subarray), row-major by bank.
    pub fn acts_per_subarray(&self) -> &[u64] {
        &self.act_hist
    }

    /// The row of `bank` that is currently open, if any.
    pub fn open_row(&self, bank: BankId) -> Option<u32> {
        self.banks[self.flat(bank)].open_row()
    }

    /// True when every bank is precharged.
    pub fn all_precharged(&self) -> bool {
        self.open_count == 0
    }

    /// Number of banks with an open row (bank-level parallelism gauge).
    pub fn open_banks(&self) -> usize {
        self.open_count
    }

    /// Instant the next REF becomes due.
    pub fn next_ref_due(&self) -> Ps {
        self.next_ref_due
    }

    /// Number of REFs issued so far.
    pub fn refs_issued(&self) -> u64 {
        self.ref_ptr.refs_issued()
    }

    /// True when the device is asserting ALERT: the mitigator wants a
    /// back-off and the mandatory post-service ACT has happened. A fault
    /// mask (see [`Subchannel::mask_alert_until`]) forces it low.
    pub fn alert_asserted(&self) -> bool {
        if self.last_issue_at < self.alert_masked_until {
            return false;
        }
        self.mitigator.alert_pending() && self.acts_since_alert_service >= 1
    }

    /// Fault-injection hook: suppresses ALERT assertion until device time
    /// reaches `until` (the tracker's pending state is untouched, so the
    /// alert reappears once the mask expires — a delayed raise).
    pub fn mask_alert_until(&mut self, until: Ps) {
        self.alert_masked_until = self.alert_masked_until.max(until);
        self.next_event.set(None);
    }

    /// Fault-injection hook: forwards a state fault to the mitigation
    /// engine; returns whether it changed anything.
    pub fn inject_fault(&mut self, fault: &DeviceFault, now: Ps) -> bool {
        self.next_event.set(None);
        self.mitigator.inject_fault(fault, now)
    }

    /// Fault-injection hook: jumps the refresh pointer forward by `steps`
    /// REF slots without refreshing the skipped rows. The auditor's row
    /// census (if any) mirrors the skip so its exposure accounting stays
    /// honest.
    pub fn skip_refresh_steps(&mut self, steps: u32) {
        self.ref_ptr.skip(steps);
        self.next_event.set(None);
        if let Some(a) = &mut self.audit {
            a.skip_refresh_steps(steps);
        }
    }

    fn flat(&self, bank: BankId) -> usize {
        bank.flat_in_subchannel(&self.geom)
    }

    /// Earliest instant `cmd` may legally be issued, or `None` when the
    /// command is illegal in the current row-buffer state (e.g. ACT to an
    /// open bank, RD to a closed or mismatched row).
    pub fn earliest(&self, cmd: &Command) -> Option<Ps> {
        let t = &self.timing;
        let e = match *cmd {
            Command::Act { bank, .. } => {
                let rank = bank.rank as usize;
                let mut e = self.banks[self.flat(bank)].earliest_act()?;
                if let Some(last) = self.last_act[rank] {
                    e = e.max(last + t.t_rrd);
                }
                if self.faw[rank].len() == 4 {
                    e = e.max(self.faw[rank][0] + t.t_faw);
                }
                e
            }
            Command::Pre { bank } => self.banks[self.flat(bank)].earliest_pre()?,
            Command::PreAll => {
                let mut e = Ps::ZERO;
                for b in &self.banks {
                    if let Some(p) = b.earliest_pre() {
                        e = e.max(p);
                    }
                }
                e
            }
            Command::Rd { bank, .. } => {
                let row = self.banks[self.flat(bank)].open_row()?;
                let mut e = self.banks[self.flat(bank)].earliest_rd(row)?;
                e = e.max(self.next_col_cmd);
                // The data burst must find the bus free (plus a small
                // turnaround bubble when reversing direction).
                let bus_ready = if self.last_burst_was_write {
                    self.bus_free + t.t_ck * 2
                } else {
                    self.bus_free
                };
                e = e.max(bus_ready.saturating_sub(t.cl));
                e
            }
            Command::Wr { bank, .. } => {
                let row = self.banks[self.flat(bank)].open_row()?;
                let mut e = self.banks[self.flat(bank)].earliest_wr(row)?;
                e = e.max(self.next_col_cmd);
                let bus_ready = if self.last_burst_was_write {
                    self.bus_free
                } else {
                    self.bus_free + t.t_ck * 2
                };
                e = e.max(bus_ready.saturating_sub(t.cwl));
                e
            }
            Command::Ref | Command::Rfm { .. } => {
                if !self.all_precharged() {
                    return None;
                }
                let mut e = Ps::ZERO;
                for b in &self.banks {
                    if let Some(a) = b.earliest_act() {
                        e = e.max(a);
                    }
                }
                e
            }
        };
        Some(e.max(self.global_block))
    }

    /// The earliest instant strictly after the last issued command at
    /// which this sub-channel's scheduling picture can change on its own:
    /// a bank timing constraint releases, the global REF/RFM/ALERT block
    /// lifts, or the next refresh becomes due.
    ///
    /// Contract: between `last_issue_at` and this instant every
    /// [`Subchannel::earliest`] answer is constant, so a scheduler that
    /// found nothing issuable before this instant may jump straight to
    /// it. The value is cached and invalidated by every state mutation
    /// ([`Subchannel::issue`] and the fault hooks), never recomputed per
    /// probe.
    pub fn next_interesting_ps(&self) -> Ps {
        if let Some(v) = self.next_event.get() {
            return v;
        }
        let after = self.last_issue_at;
        let mut e = self.next_ref_due;
        if self.global_block > after {
            e = e.min(self.global_block);
        }
        for b in &self.banks {
            let t = b.next_interesting_ps();
            if t > after {
                e = e.min(t);
            }
        }
        self.next_event.set(Some(e));
        e
    }

    /// The open row of bank `flat` (flat index within the sub-channel).
    pub fn open_row_flat(&self, flat: usize) -> Option<u32> {
        self.banks[flat].open_row()
    }

    /// Bank-local ACT release for bank `flat`, *without* the shared rank
    /// ([`Subchannel::act_floor`]) and global ([`Subchannel::block_floor`])
    /// floors. `None` while a row is open.
    pub fn earliest_local_act(&self, flat: usize) -> Option<Ps> {
        self.banks[flat].earliest_act()
    }

    /// Bank-local PRE release for bank `flat`, without the global floor.
    /// `None` when already precharged.
    pub fn earliest_local_pre(&self, flat: usize) -> Option<Ps> {
        self.banks[flat].earliest_pre()
    }

    /// Bank-local RD release for bank `flat`, *without* the shared column
    /// ([`Subchannel::col_floor`]) and global floors. `None` on row
    /// mismatch or closed bank.
    pub fn earliest_local_rd(&self, flat: usize, row: u32) -> Option<Ps> {
        self.banks[flat].earliest_rd(row)
    }

    /// Bank-local WR release for bank `flat`, without the shared floors.
    /// `None` on row mismatch or closed bank.
    pub fn earliest_local_wr(&self, flat: usize, row: u32) -> Option<Ps> {
        self.banks[flat].earliest_wr(row)
    }

    /// Shared ACT floor for `rank`: tRRD from the previous ACT plus tFAW
    /// over the sliding four-ACT window. `earliest_local_act(flat)` max
    /// this max [`Subchannel::block_floor`] equals
    /// [`Subchannel::earliest`] for the ACT.
    pub fn act_floor(&self, rank: usize) -> Ps {
        let t = &self.timing;
        let mut e = Ps::ZERO;
        if let Some(last) = self.last_act[rank] {
            e = e.max(last + t.t_rrd);
        }
        if self.faw[rank].len() == 4 {
            e = e.max(self.faw[rank][0] + t.t_faw);
        }
        e
    }

    /// Shared column floor for a RD (`write == false`) or WR (`write ==
    /// true`): channel-level tCCD plus data-bus availability including
    /// the direction-turnaround bubble. `earliest_local_rd/_wr` max this
    /// max [`Subchannel::block_floor`] equals [`Subchannel::earliest`]
    /// for the column command.
    pub fn col_floor(&self, write: bool) -> Ps {
        let t = &self.timing;
        let bus_ready = if self.last_burst_was_write == write {
            self.bus_free
        } else {
            self.bus_free + t.t_ck * 2
        };
        let lat = if write { t.cwl } else { t.cl };
        self.next_col_cmd.max(bus_ready.saturating_sub(lat))
    }

    /// The global REF/RFM/ALERT blocking floor applied to every command.
    pub fn block_floor(&self) -> Ps {
        self.global_block
    }

    /// Commits `cmd` at instant `now`.
    ///
    /// # Panics
    /// Panics if `cmd` is illegal or `now` is before [`Subchannel::earliest`]
    /// for it, or if `now` precedes a previously issued command (commands
    /// must be committed in time order).
    pub fn issue(&mut self, cmd: Command, now: Ps) -> Issued {
        // The auditor observes the stream *before* the device's own
        // enforcement asserts: a deliberately permissive device then
        // yields audited violations instead of panics.
        let auditing = self.audit.is_some();
        let was_asserted = auditing && self.alert_asserted();
        if let Some(mut a) = self.audit.take() {
            a.observe(&cmd, now, &self.telemetry);
            self.audit = Some(a);
        }
        assert!(
            now >= self.last_issue_at,
            "commands must be issued in time order"
        );
        let earliest = self
            .earliest(&cmd)
            .unwrap_or_else(|| panic!("illegal command {cmd:?} at {now}"));
        assert!(
            now >= earliest,
            "command {cmd:?} at {now} violates timing (earliest {earliest})"
        );
        self.last_issue_at = now;
        let t = self.timing.clone();
        let issued = match cmd {
            Command::Act { bank, row } => {
                let rank = bank.rank as usize;
                let flat = self.flat(bank);
                self.banks[flat].issue_act(row, now, &t);
                self.open_count += 1;
                self.last_act[rank] = Some(now);
                self.faw[rank].push_back(now);
                if self.faw[rank].len() > 4 {
                    self.faw[rank].pop_front();
                }
                self.stats.acts += 1;
                self.acts_since_alert_service += 1;
                let phys = self.metrics_mapping.phys_of(row);
                let sa = (phys / self.metrics_mapping.rows_per_subarray()) as usize;
                self.act_hist[flat * self.geom.subarrays_per_bank as usize + sa] += 1;
                // ACT is the highest-frequency mitigator hook: timing every
                // call costs two vDSO clock reads apiece, visible in whole-
                // run profiles. Sample 1-in-16 and scale the measurement
                // back up — the Tracker phase total stays statistically
                // right at a sixteenth of the cost.
                const TRACKER_SAMPLE: u32 = 16;
                self.tracker_tick = self.tracker_tick.wrapping_add(1);
                let p = if self.tracker_tick.is_multiple_of(TRACKER_SAMPLE) {
                    self.telemetry.profile_start()
                } else {
                    None
                };
                self.mitigator.on_activate(flat, row, now);
                self.telemetry
                    .profile_end_scaled(Phase::Tracker, p, TRACKER_SAMPLE);
                Issued {
                    data_ready: None,
                    busy_until: None,
                }
            }
            Command::Pre { bank } => {
                let flat = self.flat(bank);
                let row = self.banks[flat].open_row().expect("PRE closes a row");
                let opened_at = self.banks[flat].last_act_at();
                self.banks[flat].issue_pre(now, &t);
                self.open_count -= 1;
                self.stats.pres += 1;
                self.charge_rowpress(flat, row, opened_at, now);
                if self.spans {
                    // The row's full open interval is known at close time.
                    self.telemetry.span_bank(
                        self.subch_index,
                        flat,
                        u64::from(row),
                        opened_at.as_ps(),
                        now.as_ps(),
                    );
                }
                Issued {
                    data_ready: None,
                    busy_until: None,
                }
            }
            Command::PreAll => {
                let mut closed = Vec::new();
                for (flat, b) in self.banks.iter_mut().enumerate() {
                    if let Some(row) = b.open_row() {
                        let opened_at = b.last_act_at();
                        b.issue_pre(now, &t);
                        self.stats.pres += 1;
                        closed.push((flat, row, opened_at));
                    }
                }
                self.open_count -= closed.len();
                for (flat, row, opened_at) in closed {
                    self.charge_rowpress(flat, row, opened_at, now);
                    if self.spans {
                        self.telemetry.span_bank(
                            self.subch_index,
                            flat,
                            u64::from(row),
                            opened_at.as_ps(),
                            now.as_ps(),
                        );
                    }
                }
                Issued {
                    data_ready: None,
                    busy_until: None,
                }
            }
            Command::Rd { bank, .. } => {
                let flat = self.flat(bank);
                let row = self.banks[flat].open_row().expect("RD to closed bank");
                let done = self.banks[flat].issue_rd(row, now, &t);
                self.bus_free = done;
                self.last_burst_was_write = false;
                self.next_col_cmd = now + t.t_ccd;
                self.stats.reads += 1;
                self.stats.bus_busy_ps += t.t_burst.as_ps();
                Issued {
                    data_ready: Some(done),
                    busy_until: None,
                }
            }
            Command::Wr { bank, .. } => {
                let flat = self.flat(bank);
                let row = self.banks[flat].open_row().expect("WR to closed bank");
                let done = self.banks[flat].issue_wr(row, now, &t);
                self.bus_free = done;
                self.last_burst_was_write = true;
                self.next_col_cmd = now + t.t_ccd;
                self.stats.writes += 1;
                self.stats.bus_busy_ps += t.t_burst.as_ps();
                Issued {
                    data_ready: Some(done),
                    busy_until: None,
                }
            }
            Command::Ref => {
                let until = now + t.t_rfc;
                for b in &mut self.banks {
                    b.block_until(until);
                }
                self.global_block = self.global_block.max(until);
                self.next_ref_due += t.t_refi;
                self.stats.refs += 1;
                self.stats.demand_refresh_rows +=
                    u64::from(self.geom.rows_per_ref) * self.banks.len() as u64;
                let slice = self.ref_ptr.advance();
                if slice.phys_rows.start == 0 && slice.index > 0 {
                    self.telemetry.event(
                        now.as_ps(),
                        names::EV_REFRESH_POINTER_WRAP,
                        &[("ref_index", Json::U64(slice.index))],
                    );
                }
                let p = self.telemetry.profile_start();
                self.mitigator.on_ref(&slice, now);
                self.telemetry.profile_end(Phase::Tracker, p);
                Issued {
                    data_ready: None,
                    busy_until: Some(until),
                }
            }
            Command::Rfm { alert } => {
                let until = now + t.t_rfm;
                for b in &mut self.banks {
                    b.block_until(until);
                }
                self.global_block = self.global_block.max(until);
                if alert {
                    self.stats.rfms_alert += 1;
                    self.stats.alerts += 1;
                    self.acts_since_alert_service = 0;
                } else {
                    self.stats.rfms_proactive += 1;
                }
                let p = self.telemetry.profile_start();
                self.mitigator.on_rfm(alert, now);
                self.telemetry.profile_end(Phase::Tracker, p);
                Issued {
                    data_ready: None,
                    busy_until: Some(until),
                }
            }
        };
        self.next_event.set(None);
        // ALERT asserting exactly at this command opens the ABO window the
        // auditor polices (the MC samples the line at the same instant).
        if auditing && !was_asserted && self.alert_asserted() {
            if let Some(a) = self.audit.as_mut() {
                a.note_alert(now.as_ps());
            }
        }
        issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::MappingScheme;
    use crate::mitigation::NullMitigator;

    fn sc() -> Subchannel {
        let geom = Geometry::ddr5_32gb();
        Subchannel::new(
            TimingParams::ddr5_6000(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        )
    }

    fn bank(i: u32) -> BankId {
        BankId::new(0, 0, i)
    }

    #[test]
    fn act_read_precharge_cycle() {
        let mut sc = sc();
        let t = sc.timing().clone();
        let act = Command::Act {
            bank: bank(0),
            row: 42,
        };
        assert_eq!(sc.earliest(&act), Some(Ps::ZERO));
        sc.issue(act, Ps::ZERO);
        assert_eq!(sc.open_row(bank(0)), Some(42));

        let rd = Command::Rd {
            bank: bank(0),
            col: 3,
        };
        let e = sc.earliest(&rd).unwrap();
        assert_eq!(e, t.t_rcd);
        let out = sc.issue(rd, e);
        assert_eq!(out.data_ready, Some(t.t_rcd + t.cl + t.t_burst));

        let pre = Command::Pre { bank: bank(0) };
        let e = sc.earliest(&pre).unwrap();
        sc.issue(pre, e);
        assert!(sc.all_precharged());
        assert_eq!(sc.stats().acts, 1);
        assert_eq!(sc.stats().reads, 1);
        assert_eq!(sc.stats().pres, 1);
    }

    #[test]
    fn trrd_separates_acts_across_banks() {
        let mut sc = sc();
        let t = sc.timing().clone();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
        );
        let e = sc
            .earliest(&Command::Act {
                bank: bank(1),
                row: 1,
            })
            .unwrap();
        assert_eq!(e, t.t_rrd);
    }

    #[test]
    fn tfaw_limits_act_rate() {
        let mut sc = sc();
        let t = sc.timing().clone();
        let mut now = Ps::ZERO;
        for i in 0..4 {
            let cmd = Command::Act {
                bank: bank(i),
                row: 1,
            };
            now = sc.earliest(&cmd).unwrap().max(now);
            sc.issue(cmd, now);
        }
        // The 5th ACT must wait for the first + tFAW.
        let e = sc
            .earliest(&Command::Act {
                bank: bank(4),
                row: 1,
            })
            .unwrap();
        assert!(e >= t.t_faw, "5th ACT at {e} < tFAW {}", t.t_faw);
    }

    #[test]
    fn refresh_blocks_everything_for_trfc() {
        let mut sc = sc();
        let t = sc.timing().clone();
        let e = sc.earliest(&Command::Ref).unwrap();
        let out = sc.issue(Command::Ref, e);
        assert_eq!(out.busy_until, Some(e + t.t_rfc));
        let act = Command::Act {
            bank: bank(0),
            row: 7,
        };
        assert_eq!(sc.earliest(&act), Some(e + t.t_rfc));
        assert_eq!(sc.stats().refs, 1);
        assert_eq!(
            sc.stats().demand_refresh_rows,
            u64::from(sc.geometry().rows_per_ref) * 32
        );
    }

    #[test]
    fn ref_illegal_with_open_bank() {
        let mut sc = sc();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
        );
        assert_eq!(sc.earliest(&Command::Ref), None);
    }

    #[test]
    fn data_bus_serializes_bursts_across_banks() {
        let mut sc = sc();
        let t = sc.timing().clone();
        let mut now = Ps::ZERO;
        for i in 0..2 {
            let cmd = Command::Act {
                bank: bank(i),
                row: 1,
            };
            now = sc.earliest(&cmd).unwrap().max(now);
            sc.issue(cmd, now);
        }
        let rd0 = Command::Rd {
            bank: bank(0),
            col: 0,
        };
        let e0 = sc.earliest(&rd0).unwrap();
        sc.issue(rd0, e0);
        let rd1 = Command::Rd {
            bank: bank(1),
            col: 0,
        };
        let e1 = sc.earliest(&rd1).unwrap();
        assert!(e1 >= e0 + t.t_ccd);
    }

    #[test]
    fn act_histogram_uses_metrics_mapping() {
        let mut sc = sc();
        // Strided mapping: row 5 lives in subarray 5.
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 5,
            },
            Ps::ZERO,
        );
        let hist = sc.acts_per_subarray();
        assert_eq!(hist[5], 1);
        assert_eq!(hist.iter().sum::<u64>(), 1);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_issue_panics() {
        let mut sc = sc();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::from_ns(100),
        );
        sc.issue(
            Command::Act {
                bank: bank(1),
                row: 1,
            },
            Ps::from_ns(50),
        );
    }

    #[test]
    fn rowpress_charges_long_open_rows() {
        let mut sc = sc();
        sc.set_rowpress_weighting(true);
        let t = sc.timing().clone();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 7,
            },
            Ps::ZERO,
        );
        // Hold the row open for ~5x tRAS before closing.
        let close_at = t.t_ras * 5;
        sc.issue(Command::Pre { bank: bank(0) }, close_at);
        assert_eq!(sc.stats().rowpress_equiv_acts, 4);
        // The tracker observed 1 real ACT + 4 equivalents.
        assert_eq!(sc.mitigation_stats().acts_observed, 5);
    }

    #[test]
    fn rowpress_disabled_by_default() {
        let mut sc = sc();
        let t = sc.timing().clone();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 7,
            },
            Ps::ZERO,
        );
        sc.issue(Command::Pre { bank: bank(0) }, t.t_ras * 5);
        assert_eq!(sc.stats().rowpress_equiv_acts, 0);
        assert_eq!(sc.mitigation_stats().acts_observed, 1);
    }

    #[test]
    fn rowpress_prompt_close_costs_nothing() {
        let mut sc = sc();
        sc.set_rowpress_weighting(true);
        let t = sc.timing().clone();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 7,
            },
            Ps::ZERO,
        );
        sc.issue(Command::Pre { bank: bank(0) }, t.t_ras);
        assert_eq!(sc.stats().rowpress_equiv_acts, 0);
    }

    #[test]
    fn null_mitigator_never_alerts() {
        let mut sc = sc();
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
        );
        assert!(!sc.alert_asserted());
    }

    #[test]
    fn open_count_tracks_row_state() {
        let mut sc = sc();
        assert!(sc.all_precharged());
        for i in 0..3 {
            let cmd = Command::Act {
                bank: bank(i),
                row: 1,
            };
            let e = sc.earliest(&cmd).unwrap();
            sc.issue(cmd, e);
        }
        assert_eq!(sc.open_banks(), 3);
        let pre = Command::Pre { bank: bank(0) };
        let e = sc.earliest(&pre).unwrap();
        sc.issue(pre, e);
        assert_eq!(sc.open_banks(), 2);
        let e = sc.earliest(&Command::PreAll).unwrap();
        sc.issue(Command::PreAll, e);
        assert_eq!(sc.open_banks(), 0);
        assert!(sc.all_precharged());
    }

    #[test]
    fn next_interesting_caches_and_invalidates_on_issue() {
        let mut sc = sc();
        let t = sc.timing().clone();
        // Fresh device: every bank is released at 0 (not after
        // last_issue_at), so the next self-driven edge is the refresh.
        assert_eq!(sc.next_interesting_ps(), t.t_refi);
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
        );
        // The open bank's RD/WR release at tRCD now precedes the refresh,
        // and the cached value was dropped by the issue.
        assert_eq!(sc.next_interesting_ps(), t.t_rcd);
        // Cached probe repeats the same answer.
        assert_eq!(sc.next_interesting_ps(), t.t_rcd);
        // A REF blocks everything for tRFC; the lifted block is the edge.
        let e = sc.earliest(&Command::PreAll).unwrap();
        sc.issue(Command::PreAll, e);
        let e = sc.earliest(&Command::Ref).unwrap();
        sc.issue(Command::Ref, e);
        assert_eq!(sc.next_interesting_ps(), e + t.t_rfc);
    }

    #[test]
    fn local_accessors_plus_floors_reproduce_earliest() {
        let mut sc = sc();
        let mut now = Ps::ZERO;
        // Build up shared state: 4 ACTs (arms tFAW) and a read (arms the
        // bus/column floors).
        for i in 0..4 {
            let cmd = Command::Act {
                bank: bank(i),
                row: 1,
            };
            now = sc.earliest(&cmd).unwrap().max(now);
            sc.issue(cmd, now);
        }
        let rd = Command::Rd {
            bank: bank(0),
            col: 0,
        };
        let e = sc.earliest(&rd).unwrap().max(now);
        sc.issue(rd, e);

        let block = sc.block_floor();
        // ACT decomposition (bank 4 is closed; rank 0).
        let act = Command::Act {
            bank: bank(4),
            row: 1,
        };
        let composed = sc
            .earliest_local_act(4)
            .map(|l| l.max(sc.act_floor(0)).max(block));
        assert_eq!(composed, sc.earliest(&act));
        // RD/WR decomposition on the open bank 1.
        let row = sc.open_row_flat(1).unwrap();
        let composed = sc
            .earliest_local_rd(1, row)
            .map(|l| l.max(sc.col_floor(false)).max(block));
        assert_eq!(
            composed,
            sc.earliest(&Command::Rd {
                bank: bank(1),
                col: 0
            })
        );
        let composed = sc
            .earliest_local_wr(1, row)
            .map(|l| l.max(sc.col_floor(true)).max(block));
        assert_eq!(
            composed,
            sc.earliest(&Command::Wr {
                bank: bank(1),
                col: 0
            })
        );
        // PRE decomposition.
        let composed = sc.earliest_local_pre(1).map(|l| l.max(block));
        assert_eq!(composed, sc.earliest(&Command::Pre { bank: bank(1) }));
    }
}
