//! DRAM energy model: converts command counts into energy so experiments
//! can report absolute numbers alongside the paper's *relative* refresh
//! power metric.
//!
//! Per-command energies follow the usual DRAMPower-style decomposition
//! (activate/precharge pair, read/write burst, per-row refresh) with
//! DDR5-class constants; all values are parameters, so a user with
//! vendor IDD data can substitute exact numbers.

use crate::stats::DeviceStats;
use crate::time::Ps;

/// Per-operation energies in picojoules, plus background power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One ACT+PRE pair (row open and close).
    pub act_pre_pj: f64,
    /// One read burst (BL16).
    pub rd_pj: f64,
    /// One write burst (BL16).
    pub wr_pj: f64,
    /// Refreshing one row (demand or victim refresh alike).
    pub refresh_row_pj: f64,
    /// Background (standby + periphery) power in milliwatts per device.
    pub background_mw: f64,
}

impl EnergyModel {
    /// DDR5-class default constants.
    pub fn ddr5() -> Self {
        EnergyModel {
            act_pre_pj: 2000.0,
            rd_pj: 1100.0,
            wr_pj: 1200.0,
            refresh_row_pj: 250.0,
            background_mw: 110.0,
        }
    }

    /// Total energy in nanojoules for the given activity over `elapsed`.
    /// `victim_rows` is the mitigation-refresh row count (from
    /// [`MitigationStats::victim_rows_refreshed`]).
    ///
    /// [`MitigationStats::victim_rows_refreshed`]:
    /// crate::mitigation::MitigationStats::victim_rows_refreshed
    pub fn total_nj(&self, stats: &DeviceStats, victim_rows: u64, elapsed: Ps) -> f64 {
        let dynamic_pj = stats.acts as f64 * self.act_pre_pj
            + stats.reads as f64 * self.rd_pj
            + stats.writes as f64 * self.wr_pj
            + (stats.demand_refresh_rows + victim_rows) as f64 * self.refresh_row_pj;
        let background_pj = self.background_mw * 1e-3 /* W */
            * elapsed.as_ps() as f64 /* ps */
            * 1e-12 /* s/ps */
            * 1e12; /* pJ/J */
        (dynamic_pj + background_pj) / 1000.0
    }

    /// Energy attributable to refresh (demand + victim rows), nanojoules.
    pub fn refresh_nj(&self, stats: &DeviceStats, victim_rows: u64) -> f64 {
        (stats.demand_refresh_rows + victim_rows) as f64 * self.refresh_row_pj / 1000.0
    }

    /// Fraction of refresh energy spent on mitigation (victim) refreshes —
    /// the quantity Figures 3 and 13 track as "refresh power overhead".
    pub fn victim_refresh_fraction(&self, stats: &DeviceStats, victim_rows: u64) -> f64 {
        let total = stats.demand_refresh_rows + victim_rows;
        if total == 0 {
            0.0
        } else {
            victim_rows as f64 / total as f64
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DeviceStats {
        DeviceStats {
            acts: 100,
            reads: 300,
            writes: 100,
            demand_refresh_rows: 1000,
            ..Default::default()
        }
    }

    #[test]
    fn dynamic_energy_adds_up() {
        let m = EnergyModel::ddr5();
        // Zero elapsed -> no background.
        let nj = m.total_nj(&stats(), 0, Ps::ZERO);
        let expect = (100.0 * 2000.0 + 300.0 * 1100.0 + 100.0 * 1200.0 + 1000.0 * 250.0) / 1000.0;
        assert!((nj - expect).abs() < 1e-9, "{nj} vs {expect}");
    }

    #[test]
    fn background_scales_with_time() {
        let m = EnergyModel::ddr5();
        let idle = DeviceStats::default();
        let one_ms = m.total_nj(&idle, 0, Ps::from_ms(1));
        let two_ms = m.total_nj(&idle, 0, Ps::from_ms(2));
        assert!((two_ms - 2.0 * one_ms).abs() < 1e-6);
        // 110 mW for 1 ms = 110 uJ = 110_000 nJ.
        assert!((one_ms - 110_000.0).abs() < 1.0, "{one_ms}");
    }

    #[test]
    fn victim_fraction_matches_paper_metric() {
        let m = EnergyModel::ddr5();
        let s = stats();
        assert_eq!(m.victim_refresh_fraction(&s, 0), 0.0);
        let f = m.victim_refresh_fraction(&s, 41);
        assert!((f - 41.0 / 1041.0).abs() < 1e-12);
        assert_eq!(m.victim_refresh_fraction(&DeviceStats::default(), 0), 0.0);
    }

    #[test]
    fn victim_refresh_energy_is_additive() {
        let m = EnergyModel::ddr5();
        let s = stats();
        let without = m.refresh_nj(&s, 0);
        let with = m.refresh_nj(&s, 100);
        assert!((with - without - 100.0 * 0.25).abs() < 1e-9);
    }
}
