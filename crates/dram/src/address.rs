//! DRAM addressing: bank coordinates, row-to-subarray (R2SA) mapping and
//! the coarse-grained region map used by MIRZA's RCT (Section IV-D).
//!
//! A *row address* is what the memory controller names in an ACT command.
//! A *physical index* is the row's physical position inside the bank, which
//! determines (a) which subarray/region it occupies and (b) its Rowhammer
//! neighbors. The R2SA mapping is the bijection between the two.

use crate::geometry::Geometry;

/// Coordinates of one bank within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BankId {
    /// Sub-channel index.
    pub subch: u32,
    /// Rank index within the sub-channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
}

impl BankId {
    /// Creates a bank coordinate.
    pub fn new(subch: u32, rank: u32, bank: u32) -> Self {
        BankId { subch, rank, bank }
    }

    /// Flat index of this bank inside its sub-channel.
    pub fn flat_in_subchannel(&self, geom: &Geometry) -> usize {
        (self.rank * geom.banks + self.bank) as usize
    }

    /// Flat index of this bank across the whole channel.
    pub fn flat_in_channel(&self, geom: &Geometry) -> usize {
        (self.subch * geom.ranks * geom.banks + self.rank * geom.banks + self.bank) as usize
    }
}

/// A fully decoded DRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramAddr {
    /// Bank coordinates.
    pub bank: BankId,
    /// Row address (as named by the MC).
    pub row: u32,
    /// Column (cache-line index within the row).
    pub col: u32,
}

/// Row-address to physical-index mapping scheme (Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingScheme {
    /// Consecutive row addresses occupy consecutive physical rows, filling
    /// one subarray before moving to the next.
    Sequential,
    /// Consecutive row addresses are striped across subarrays: row address
    /// `x` lands in subarray `x % S` at offset `x / S`. Every `S`-th row
    /// address shares a subarray.
    #[default]
    Strided,
}

/// Bijection between row addresses and physical row indices of one bank.
///
/// ```
/// use mirza_dram::address::{MappingScheme, RowMapping};
/// let m = RowMapping::new(MappingScheme::Strided, 128 * 1024, 128);
/// // Row addresses 0 and 128 are physical neighbors in subarray 0.
/// assert_eq!(m.phys_of(0), 0);
/// assert_eq!(m.phys_of(128), 1);
/// assert_eq!(m.subarray_of_row(5), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMapping {
    scheme: MappingScheme,
    rows_per_bank: u32,
    subarrays: u32,
}

impl RowMapping {
    /// Creates a mapping for a bank with `rows_per_bank` rows split into
    /// `subarrays` physical subarrays.
    ///
    /// # Panics
    /// Panics if `subarrays` does not evenly divide `rows_per_bank` or
    /// either is zero.
    pub fn new(scheme: MappingScheme, rows_per_bank: u32, subarrays: u32) -> Self {
        assert!(rows_per_bank > 0 && subarrays > 0, "empty bank");
        assert!(
            rows_per_bank.is_multiple_of(subarrays),
            "subarrays must divide the bank evenly"
        );
        RowMapping {
            scheme,
            rows_per_bank,
            subarrays,
        }
    }

    /// Mapping for the given geometry.
    pub fn for_geometry(scheme: MappingScheme, geom: &Geometry) -> Self {
        Self::new(scheme, geom.rows_per_bank, geom.subarrays_per_bank)
    }

    /// The mapping scheme in use.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Rows per physical subarray.
    pub fn rows_per_subarray(&self) -> u32 {
        self.rows_per_bank / self.subarrays
    }

    /// Number of physical subarrays.
    pub fn subarrays(&self) -> u32 {
        self.subarrays
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Physical index of a row address.
    ///
    /// # Panics
    /// Panics (in debug builds) if `row` is out of range.
    #[inline]
    pub fn phys_of(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows_per_bank);
        match self.scheme {
            MappingScheme::Sequential => row,
            MappingScheme::Strided => {
                let sa = row % self.subarrays;
                let off = row / self.subarrays;
                sa * self.rows_per_subarray() + off
            }
        }
    }

    /// Row address occupying physical index `phys` (inverse of [`phys_of`]).
    ///
    /// [`phys_of`]: RowMapping::phys_of
    #[inline]
    pub fn row_of(&self, phys: u32) -> u32 {
        debug_assert!(phys < self.rows_per_bank);
        match self.scheme {
            MappingScheme::Sequential => phys,
            MappingScheme::Strided => {
                let sa = phys / self.rows_per_subarray();
                let off = phys % self.rows_per_subarray();
                off * self.subarrays + sa
            }
        }
    }

    /// Physical subarray containing row address `row`.
    #[inline]
    pub fn subarray_of_row(&self, row: u32) -> u32 {
        self.phys_of(row) / self.rows_per_subarray()
    }

    /// Row addresses of the physical neighbors of `row` at distances
    /// `1..=blast_radius`, clipped at subarray boundaries (subarrays are
    /// electrically isolated by sense-amplifier stripes, so disturbance
    /// does not cross them).
    pub fn neighbors(&self, row: u32, blast_radius: u32) -> Vec<u32> {
        let phys = self.phys_of(row);
        let rps = self.rows_per_subarray();
        let sa = phys / rps;
        let sa_first = sa * rps;
        let sa_last = sa_first + rps - 1;
        let mut out = Vec::with_capacity(2 * blast_radius as usize);
        for d in 1..=blast_radius {
            if phys >= sa_first + d {
                out.push(self.row_of(phys - d));
            }
            if phys + d <= sa_last {
                out.push(self.row_of(phys + d));
            }
        }
        out
    }
}

/// Coarse-grained region map used by the Region Count Table (RCT).
///
/// Regions partition the *physical* index space of a bank. The default
/// configuration has one region per subarray (128 regions of 1024 rows);
/// the TRHD=500 configuration uses 256 regions (half-subarray regions),
/// which makes the edge-row rule of footnote 3 relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionMap {
    regions: u32,
    rows_per_region: u32,
}

impl RegionMap {
    /// Creates a region map of `regions` equal regions over `rows_per_bank`.
    ///
    /// # Panics
    /// Panics if `regions` does not evenly divide `rows_per_bank` or is zero.
    pub fn new(rows_per_bank: u32, regions: u32) -> Self {
        assert!(regions > 0, "need at least one region");
        assert!(
            rows_per_bank.is_multiple_of(regions),
            "regions must divide the bank evenly"
        );
        RegionMap {
            regions,
            rows_per_region: rows_per_bank / regions,
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// Rows per region.
    pub fn rows_per_region(&self) -> u32 {
        self.rows_per_region
    }

    /// Region containing physical index `phys`.
    #[inline]
    pub fn region_of_phys(&self, phys: u32) -> u32 {
        phys / self.rows_per_region
    }

    /// Whether `phys` is the first or last row of its region.
    #[inline]
    pub fn is_region_edge(&self, phys: u32) -> bool {
        let off = phys % self.rows_per_region;
        off == 0 || off == self.rows_per_region - 1
    }

    /// The neighboring region across the edge that `phys` sits on, if any.
    ///
    /// Returns `None` for interior rows and for edges at the bank boundary.
    /// Used by the footnote-3 rule: edge-row ACTs bump both region counters.
    pub fn adjacent_region_of_edge(&self, phys: u32) -> Option<u32> {
        let r = self.region_of_phys(phys);
        let off = phys % self.rows_per_region;
        if off == 0 && r > 0 {
            Some(r - 1)
        } else if off == self.rows_per_region - 1 && r + 1 < self.regions {
            Some(r + 1)
        } else {
            None
        }
    }

    /// Range of physical indices covered by `region`.
    pub fn phys_range(&self, region: u32) -> std::ops::Range<u32> {
        let start = region * self.rows_per_region;
        start..start + self.rows_per_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strided() -> RowMapping {
        RowMapping::new(MappingScheme::Strided, 128 * 1024, 128)
    }

    fn sequential() -> RowMapping {
        RowMapping::new(MappingScheme::Sequential, 128 * 1024, 128)
    }

    #[test]
    fn sequential_identity() {
        let m = sequential();
        for row in [0u32, 1, 1023, 1024, 131071] {
            assert_eq!(m.phys_of(row), row);
            assert_eq!(m.row_of(row), row);
        }
        assert_eq!(m.subarray_of_row(0), 0);
        assert_eq!(m.subarray_of_row(1023), 0);
        assert_eq!(m.subarray_of_row(1024), 1);
    }

    #[test]
    fn strided_spreads_consecutive_rows() {
        let m = strided();
        // Consecutive row addresses land in consecutive subarrays.
        for row in 0..128 {
            assert_eq!(m.subarray_of_row(row), row);
        }
        // Every 128th row address shares a subarray.
        assert_eq!(m.subarray_of_row(0), m.subarray_of_row(128));
        assert_eq!(m.phys_of(128), 1);
    }

    #[test]
    fn mapping_is_a_bijection() {
        for m in [strided(), sequential()] {
            for row in (0..128 * 1024).step_by(997) {
                assert_eq!(m.row_of(m.phys_of(row)), row);
            }
        }
    }

    #[test]
    fn neighbors_sequential() {
        let m = sequential();
        let mut n = m.neighbors(5000, 2);
        n.sort_unstable();
        assert_eq!(n, vec![4998, 4999, 5001, 5002]);
    }

    #[test]
    fn neighbors_strided_are_row_plus_minus_stride() {
        let m = strided();
        // Row 5000 -> subarray 5000 % 128 = 8, offset 39. Neighbors are
        // offsets 37, 38, 40, 41 -> row addresses 5000 +- 128, +- 256.
        let mut n = m.neighbors(5000, 2);
        n.sort_unstable();
        assert_eq!(n, vec![5000 - 256, 5000 - 128, 5000 + 128, 5000 + 256]);
    }

    #[test]
    fn neighbors_clip_at_subarray_boundary() {
        let m = sequential();
        // Physical row 0: no lower neighbors.
        assert_eq!(m.neighbors(0, 2), vec![1, 2]);
        // Last row of subarray 0 (phys 1023): no upper neighbors.
        let mut n = m.neighbors(1023, 2);
        n.sort_unstable();
        assert_eq!(n, vec![1021, 1022]);
        // First row of subarray 1 (phys 1024) has no neighbor in subarray 0.
        let mut n = m.neighbors(1024, 2);
        n.sort_unstable();
        assert_eq!(n, vec![1025, 1026]);
    }

    #[test]
    fn region_map_basics() {
        let r = RegionMap::new(128 * 1024, 128);
        assert_eq!(r.rows_per_region(), 1024);
        assert_eq!(r.region_of_phys(0), 0);
        assert_eq!(r.region_of_phys(1023), 0);
        assert_eq!(r.region_of_phys(1024), 1);
        assert_eq!(r.phys_range(1), 1024..2048);
    }

    #[test]
    fn region_edges_and_adjacency() {
        let r = RegionMap::new(128 * 1024, 256); // half-subarray regions
        assert!(r.is_region_edge(0));
        assert!(r.is_region_edge(511));
        assert!(r.is_region_edge(512));
        assert!(!r.is_region_edge(100));
        assert_eq!(r.adjacent_region_of_edge(0), None); // bank boundary
        assert_eq!(r.adjacent_region_of_edge(511), Some(1));
        assert_eq!(r.adjacent_region_of_edge(512), Some(0));
        assert_eq!(r.adjacent_region_of_edge(100), None);
    }

    #[test]
    fn bank_id_flattening() {
        let g = Geometry::ddr5_32gb();
        let b = BankId::new(1, 0, 5);
        assert_eq!(b.flat_in_subchannel(&g), 5);
        assert_eq!(b.flat_in_channel(&g), 32 + 5);
    }

    #[test]
    #[should_panic(expected = "divide the bank")]
    fn region_map_rejects_uneven_split() {
        let _ = RegionMap::new(128 * 1024, 100);
    }
}
