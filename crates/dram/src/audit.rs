//! Independent DDR5 protocol auditor.
//!
//! [`CommandAuditor`] is a shadow checker in the DRAMSim3 lineage: it
//! observes the exact command stream the controller commits and re-derives
//! every inter-command constraint — tRCD/tRP/tRAS/tRC/tCCD/tRRD/tFAW/
//! tRFC/tRFM/tREFI/tWR/tWTR/tRTP, the ALERT back-off prologue/stall
//! windows, and row-buffer legality — from its *own* bookkeeping of raw
//! command timestamps. It deliberately shares no state with the device's
//! `earliest`/"not before" machinery in `timing.rs`/`bank.rs`, so a bug in
//! the enforcement path (or a controller path that bypasses it) surfaces
//! as a structured `protocol_violation` event instead of silently wrong
//! results.
//!
//! At most one violation is reported per offending command (the first rule
//! in check order), and the auditor keeps applying state updates after a
//! violation so one bad command does not cascade into noise. The auditor
//! can be configured with a *different* reference [`TimingParams`] than
//! the device enforces — this is how tests inject device-legal but
//! reference-illegal commands.

use std::collections::VecDeque;

use crate::address::RowMapping;
use crate::command::Command;
use crate::geometry::Geometry;
use crate::time::Ps;
use crate::timing::TimingParams;
use mirza_telemetry::{names, Json, Telemetry};

/// Auditor configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Reference timing the command stream is validated against.
    pub timing: TimingParams,
    /// REF cadence tolerance, in tREFI past the nominal due time, before a
    /// `tREFI` violation is flagged. DDR5 permits 4 postponed REFs; the
    /// default adds slack for ALERT/RFM stalls the controller legitimately
    /// absorbs before repaying refresh debt.
    pub max_late_refis: u64,
}

impl AuditConfig {
    /// Reference = the given timing, cadence tolerance = 4 postponed REFs
    /// plus 2 tREFI of stall slack.
    pub fn new(timing: TimingParams) -> Self {
        AuditConfig {
            timing,
            max_late_refis: 6,
        }
    }
}

/// One detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Instant the offending command was issued (ps).
    pub t_ps: u64,
    /// Violated rule (`"tRP"`, `"tFAW"`, `"abo-prologue"`, ...).
    pub rule: &'static str,
    /// Debug rendering of the offending command.
    pub cmd: String,
    /// Earliest instant the command would have been legal under the rule
    /// (0 when the command is categorically illegal, e.g. ACT to an open
    /// bank).
    pub legal_at_ps: u64,
}

/// How many violation details are retained (the total count is unbounded).
const MAX_RETAINED: usize = 64;

/// Shadow state per bank: raw timestamps of the last relevant commands.
#[derive(Debug, Clone, Default)]
struct ShadowBank {
    open_row: Option<u32>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    /// End of the last write *burst* (issue + CWL + tBURST).
    last_wr_end: Option<u64>,
}

/// Per-row ACT census: counts ACTs to each (bank, physical row) since that
/// row's last regular refresh and tracks running maxima — the quantity the
/// NBO bound constrains.
///
/// The census keeps its *own* shadow refresh-pointer position, derived
/// only from observed REF commands, so it stays independent of the
/// device's pointer (which fault injection may corrupt). When used by the
/// [`CommandAuditor`] it deliberately does not credit targeted victim
/// refreshes performed by the mitigation engine, making the reported
/// maximum a conservative upper bound; attack harnesses that model the
/// mitigation protocol faithfully may call [`RowCensus::credit`] to reset
/// a mitigated aggressor's count.
#[derive(Debug, Clone)]
pub struct RowCensus {
    mapping: RowMapping,
    rows_per_bank: u32,
    rows_per_ref: u32,
    steps_per_walk: u64,
    /// Shadow refresh-pointer step, advanced on every observed REF.
    step: u64,
    /// ACT counts since last refresh, bank-major:
    /// `counts[bank * rows_per_bank + phys_row]`.
    counts: Vec<u32>,
    /// Running per-row maximum of `counts` (same indexing).
    max_counts: Vec<u32>,
    max_seen: u32,
}

impl RowCensus {
    /// A census over `banks` banks of `rows_per_bank` rows, refreshed
    /// `rows_per_ref` rows per REF. `mapping` translates the row addresses
    /// fed to [`RowCensus::on_act`] into physical indices.
    ///
    /// # Panics
    /// Panics if `rows_per_ref` is zero or does not divide `rows_per_bank`.
    pub fn new(mapping: RowMapping, banks: usize, rows_per_bank: u32, rows_per_ref: u32) -> Self {
        assert!(rows_per_ref > 0 && rows_per_bank.is_multiple_of(rows_per_ref));
        RowCensus {
            mapping,
            rows_per_bank,
            rows_per_ref,
            steps_per_walk: u64::from(rows_per_bank / rows_per_ref),
            step: 0,
            counts: vec![0; banks * rows_per_bank as usize],
            max_counts: vec![0; banks * rows_per_bank as usize],
            max_seen: 0,
        }
    }

    fn idx(&self, bank: usize, phys: u32) -> usize {
        bank * self.rows_per_bank as usize + phys as usize
    }

    /// Records an ACT of row address `row` in `bank`.
    pub fn on_act(&mut self, bank: usize, row: u32) {
        let idx = self.idx(bank, self.mapping.phys_of(row));
        self.counts[idx] += 1;
        if self.counts[idx] > self.max_counts[idx] {
            self.max_counts[idx] = self.counts[idx];
        }
        self.max_seen = self.max_seen.max(self.counts[idx]);
    }

    /// Advances the shadow refresh pointer one step, clearing the counts of
    /// the refreshed physical rows in every bank.
    pub fn on_ref(&mut self) {
        let pos = (self.step % self.steps_per_walk) as u32;
        let start = (pos * self.rows_per_ref) as usize;
        let span = self.rows_per_ref as usize;
        let banks = self.counts.len() / self.rows_per_bank as usize;
        for bank in 0..banks {
            let base = bank * self.rows_per_bank as usize + start;
            self.counts[base..base + span].fill(0);
        }
        self.step += 1;
    }

    /// Skips `steps` refresh-pointer steps (mirrors a refresh-skip fault:
    /// the skipped rows keep accumulating, as they would in DRAM).
    pub fn skip(&mut self, steps: u32) {
        self.step += u64::from(steps);
    }

    /// Credits a mitigation of aggressor row address `row` in `bank`: its
    /// victims were refreshed, so the row's unmitigated count resets. The
    /// per-row maximum is kept.
    pub fn credit(&mut self, bank: usize, row: u32) {
        let idx = self.idx(bank, self.mapping.phys_of(row));
        self.counts[idx] = 0;
    }

    /// Current count of row address `row` in `bank`.
    pub fn count(&self, bank: usize, row: u32) -> u32 {
        self.counts[self.idx(bank, self.mapping.phys_of(row))]
    }

    /// Running maximum count of row address `row` in `bank`.
    pub fn row_max(&self, bank: usize, row: u32) -> u32 {
        self.max_counts[self.idx(bank, self.mapping.phys_of(row))]
    }

    /// Running maximum count of *physical* row `phys` in `bank`.
    pub fn row_max_phys(&self, bank: usize, phys: u32) -> u32 {
        self.max_counts[self.idx(bank, phys)]
    }

    /// Maximum count ever observed on any row.
    pub fn max_seen(&self) -> u32 {
        self.max_seen
    }

    /// The row translation the census assumes.
    pub fn mapping(&self) -> &RowMapping {
        &self.mapping
    }

    /// Banks covered by the census.
    pub fn banks(&self) -> usize {
        self.counts.len() / self.rows_per_bank as usize
    }
}

/// Independent re-validator of a sub-channel's command stream.
#[derive(Debug)]
pub struct CommandAuditor {
    t: TimingParams,
    max_late_refis: u64,
    banks: Vec<ShadowBank>,
    /// Last up-to-four ACT instants per rank (tRRD is `back()`, tFAW is
    /// `front()` once full).
    rank_acts: Vec<VecDeque<u64>>,
    last_cmd_at: u64,
    /// Last column-command instant (channel-level tCCD).
    last_col_at: Option<u64>,
    /// REF/RFM/ABO-stall gate: no command before this instant.
    blocked_until: u64,
    blocked_rule: &'static str,
    refs_seen: u64,
    /// Instant ALERT asserted, until the back-off RFM services it.
    alert_since: Option<u64>,
    refresh_late_flagged: bool,
    violation_count: u64,
    recent: Vec<Violation>,
    commands_checked: u64,
    /// Per-row ACT census, when enabled (fault runs / security verdicts).
    census: Option<RowCensus>,
}

impl CommandAuditor {
    /// An auditor validating against `reference` timing for a sub-channel
    /// of the given geometry.
    pub fn new(reference: TimingParams, geom: &Geometry) -> Self {
        Self::with_config(AuditConfig::new(reference), geom)
    }

    /// An auditor with an explicit configuration.
    pub fn with_config(cfg: AuditConfig, geom: &Geometry) -> Self {
        CommandAuditor {
            t: cfg.timing,
            max_late_refis: cfg.max_late_refis,
            banks: vec![ShadowBank::default(); geom.banks_per_subchannel() as usize],
            rank_acts: vec![VecDeque::with_capacity(4); geom.ranks as usize],
            last_cmd_at: 0,
            last_col_at: None,
            blocked_until: 0,
            blocked_rule: "tRFC",
            refs_seen: 0,
            alert_since: None,
            refresh_late_flagged: false,
            violation_count: 0,
            recent: Vec::new(),
            commands_checked: 0,
            census: None,
        }
    }

    /// Enables the per-row ACT census used for security verdicts. `mapping`
    /// is the row translation the metrics/verdict view assumes;
    /// `rows_per_bank`/`rows_per_ref` mirror the device geometry.
    ///
    /// # Panics
    /// Panics if `rows_per_ref` is zero or does not divide `rows_per_bank`.
    pub fn enable_row_tracking(
        &mut self,
        mapping: RowMapping,
        rows_per_bank: u32,
        rows_per_ref: u32,
    ) {
        self.census = Some(RowCensus::new(
            mapping,
            self.banks.len(),
            rows_per_bank,
            rows_per_ref,
        ));
    }

    /// Maximum ACTs observed to any single row between its refreshes
    /// (0 when row tracking is disabled).
    pub fn max_row_acts(&self) -> u32 {
        self.census.as_ref().map_or(0, RowCensus::max_seen)
    }

    /// Mirrors a refresh-pointer skip fault into the census' shadow
    /// pointer (the skipped rows keep accumulating, as they do in DRAM).
    pub fn skip_refresh_steps(&mut self, steps: u32) {
        if let Some(c) = &mut self.census {
            c.skip(steps);
        }
    }

    /// Total violations detected.
    pub fn violations(&self) -> u64 {
        self.violation_count
    }

    /// Details of the first [`MAX_RETAINED`] violations.
    pub fn recent_violations(&self) -> &[Violation] {
        &self.recent
    }

    /// Commands observed so far.
    pub fn commands_checked(&self) -> u64 {
        self.commands_checked
    }

    /// Records that the device asserted ALERT at `t_ps`; the ABO window
    /// rules apply until the servicing `Rfm { alert: true }`.
    pub fn note_alert(&mut self, t_ps: u64) {
        if self.alert_since.is_none() {
            self.alert_since = Some(t_ps);
        }
    }

    /// Validates one committed command, reporting at most one violation
    /// (counted, retained, and emitted as a `protocol_violation` event and
    /// an `audit.violations` counter increment on `telemetry`).
    pub fn observe(&mut self, cmd: &Command, now: Ps, telemetry: &Telemetry) {
        self.commands_checked += 1;
        let now_ps = now.as_ps();
        let verdict = self.check(cmd, now_ps);
        self.apply(cmd, now_ps);
        if let Some((rule, legal_at_ps)) = verdict {
            self.flag(cmd, now_ps, rule, legal_at_ps, telemetry);
        }
    }

    /// First violated rule for `cmd` at `now`, with the earliest legal
    /// instant, or `None` when the command is clean.
    fn check(&mut self, cmd: &Command, now: u64) -> Option<(&'static str, u64)> {
        if now < self.last_cmd_at {
            return Some(("order", self.last_cmd_at));
        }
        if now < self.blocked_until {
            return Some((self.blocked_rule, self.blocked_until));
        }
        let t = &self.t;
        match *cmd {
            Command::Act { bank, .. } => {
                let flat = self.flat(cmd).expect("ACT has a bank");
                let rank = bank.rank as usize;
                let b = &self.banks[flat];
                if b.open_row.is_some() {
                    return Some(("act-open-bank", 0));
                }
                if let Some(p) = b.last_pre {
                    if now < p + t.t_rp.as_ps() {
                        return Some(("tRP", p + t.t_rp.as_ps()));
                    }
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_rc.as_ps() {
                        return Some(("tRC", a + t.t_rc.as_ps()));
                    }
                }
                if let Some(&last) = self.rank_acts[rank].back() {
                    if now < last + t.t_rrd.as_ps() {
                        return Some(("tRRD", last + t.t_rrd.as_ps()));
                    }
                }
                if self.rank_acts[rank].len() == 4 {
                    let oldest = self.rank_acts[rank][0];
                    if now < oldest + t.t_faw.as_ps() {
                        return Some(("tFAW", oldest + t.t_faw.as_ps()));
                    }
                }
                self.check_abo_window(now)
                    .or_else(|| self.check_ref_cadence(now))
            }
            Command::Pre { .. } => {
                let flat = self.flat(cmd).expect("PRE has a bank");
                self.check_pre_bank(flat, now)
                    .or_else(|| self.check_ref_cadence(now))
            }
            Command::PreAll => {
                for flat in 0..self.banks.len() {
                    if self.banks[flat].open_row.is_some() {
                        if let Some(v) = self.check_pre_bank(flat, now) {
                            return Some(v);
                        }
                    }
                }
                self.check_ref_cadence(now)
            }
            Command::Rd { .. } => {
                let flat = self.flat(cmd).expect("RD has a bank");
                let b = &self.banks[flat];
                if b.open_row.is_none() {
                    return Some(("rd-closed-bank", 0));
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_rcd.as_ps() {
                        return Some(("tRCD", a + t.t_rcd.as_ps()));
                    }
                }
                if let Some(c) = self.last_col_at {
                    if now < c + t.t_ccd.as_ps() {
                        return Some(("tCCD", c + t.t_ccd.as_ps()));
                    }
                }
                if let Some(w) = b.last_wr_end {
                    if now < w + t.t_wtr.as_ps() {
                        return Some(("tWTR", w + t.t_wtr.as_ps()));
                    }
                }
                self.check_abo_window(now)
                    .or_else(|| self.check_ref_cadence(now))
            }
            Command::Wr { .. } => {
                let flat = self.flat(cmd).expect("WR has a bank");
                let b = &self.banks[flat];
                if b.open_row.is_none() {
                    return Some(("wr-closed-bank", 0));
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_rcd.as_ps() {
                        return Some(("tRCD", a + t.t_rcd.as_ps()));
                    }
                }
                if let Some(c) = self.last_col_at {
                    if now < c + t.t_ccd.as_ps() {
                        return Some(("tCCD", c + t.t_ccd.as_ps()));
                    }
                }
                self.check_abo_window(now)
                    .or_else(|| self.check_ref_cadence(now))
            }
            Command::Ref | Command::Rfm { .. } => {
                for b in &self.banks {
                    if b.open_row.is_some() {
                        return Some(("allbank-open-bank", 0));
                    }
                    if let Some(p) = b.last_pre {
                        if now < p + t.t_rp.as_ps() {
                            return Some(("tRP", p + t.t_rp.as_ps()));
                        }
                    }
                }
                None
            }
        }
    }

    /// tRAS / tRTP / tWR rules for precharging one bank.
    fn check_pre_bank(&self, flat: usize, now: u64) -> Option<(&'static str, u64)> {
        let t = &self.t;
        let b = &self.banks[flat];
        if b.open_row.is_none() {
            return Some(("pre-closed-bank", 0));
        }
        if let Some(a) = b.last_act {
            if now < a + t.t_ras.as_ps() {
                return Some(("tRAS", a + t.t_ras.as_ps()));
            }
        }
        if let Some(r) = b.last_rd {
            if now < r + t.t_rtp.as_ps() {
                return Some(("tRTP", r + t.t_rtp.as_ps()));
            }
        }
        if let Some(w) = b.last_wr_end {
            if now < w + t.t_wr.as_ps() {
                return Some(("tWR", w + t.t_wr.as_ps()));
            }
        }
        None
    }

    /// ABO prologue: once ALERT has been asserted for longer than the
    /// prologue window, the controller must have stopped demand traffic
    /// until the back-off RFM services the alert.
    fn check_abo_window(&self, now: u64) -> Option<(&'static str, u64)> {
        let t0 = self.alert_since?;
        let deadline = t0 + self.t.t_alert_prologue.as_ps();
        (now > deadline).then_some(("abo-prologue", deadline))
    }

    /// tREFI cadence: flags (once per lapse) when the stream runs more
    /// than `max_late_refis` tREFI past the next nominal REF due time.
    fn check_ref_cadence(&mut self, now: u64) -> Option<(&'static str, u64)> {
        if self.refresh_late_flagged {
            return None;
        }
        let refi = self.t.t_refi.as_ps();
        let deadline = (self.refs_seen + 1 + self.max_late_refis) * refi;
        if now > deadline {
            self.refresh_late_flagged = true;
            return Some(("tREFI", deadline));
        }
        None
    }

    /// Applies `cmd`'s effect on the shadow state (always, even after a
    /// violation, so one bad command does not cascade).
    fn apply(&mut self, cmd: &Command, now: u64) {
        self.last_cmd_at = self.last_cmd_at.max(now);
        let t = self.t.clone();
        match *cmd {
            Command::Act { bank, row } => {
                let flat = self.flat(cmd).expect("ACT has a bank");
                let rank = bank.rank as usize;
                if let Some(c) = &mut self.census {
                    c.on_act(flat, row);
                }
                let b = &mut self.banks[flat];
                b.open_row = Some(row);
                b.last_act = Some(now);
                let acts = &mut self.rank_acts[rank];
                acts.push_back(now);
                if acts.len() > 4 {
                    acts.pop_front();
                }
            }
            Command::Pre { .. } => {
                let flat = self.flat(cmd).expect("PRE has a bank");
                let b = &mut self.banks[flat];
                if b.open_row.take().is_some() {
                    b.last_pre = Some(now);
                }
            }
            Command::PreAll => {
                for b in &mut self.banks {
                    if b.open_row.take().is_some() {
                        b.last_pre = Some(now);
                    }
                }
            }
            Command::Rd { .. } => {
                let flat = self.flat(cmd).expect("RD has a bank");
                self.banks[flat].last_rd = Some(now);
                self.last_col_at = Some(now);
            }
            Command::Wr { .. } => {
                let flat = self.flat(cmd).expect("WR has a bank");
                self.banks[flat].last_wr_end = Some(now + (t.cwl + t.t_burst).as_ps());
                self.last_col_at = Some(now);
            }
            Command::Ref => {
                let until = now + t.t_rfc.as_ps();
                if until > self.blocked_until {
                    self.blocked_until = until;
                    self.blocked_rule = "tRFC";
                }
                self.refs_seen += 1;
                self.refresh_late_flagged = false;
                if let Some(c) = &mut self.census {
                    c.on_ref();
                }
            }
            Command::Rfm { alert } => {
                let dur = if alert {
                    t.t_rfm.max(t.t_alert_stall)
                } else {
                    t.t_rfm
                };
                let until = now + dur.as_ps();
                if until > self.blocked_until {
                    self.blocked_until = until;
                    self.blocked_rule = if alert { "abo-stall" } else { "tRFM" };
                }
                if alert {
                    self.alert_since = None;
                }
            }
        }
    }

    fn flat(&self, cmd: &Command) -> Option<usize> {
        // Shadow banks are indexed rank-major within the sub-channel,
        // mirroring `BankId::flat_in_subchannel` but derived here from the
        // bank count per rank so the auditor stays self-contained.
        let bank = cmd.bank()?;
        let banks_per_rank = self.banks.len() / self.rank_acts.len();
        Some(bank.rank as usize * banks_per_rank + bank.bank as usize)
    }

    fn flag(
        &mut self,
        cmd: &Command,
        now: u64,
        rule: &'static str,
        legal_at_ps: u64,
        telemetry: &Telemetry,
    ) {
        self.violation_count += 1;
        if self.recent.len() < MAX_RETAINED {
            self.recent.push(Violation {
                t_ps: now,
                rule,
                cmd: format!("{cmd:?}"),
                legal_at_ps,
            });
        }
        telemetry.inc(names::AUDIT_VIOLATIONS, 1);
        if telemetry.is_enabled() {
            telemetry.event(
                now,
                names::EV_PROTOCOL_VIOLATION,
                &[
                    ("rule", Json::Str(rule.to_string())),
                    ("cmd", Json::Str(format!("{cmd:?}"))),
                    ("legal_at_ps", Json::U64(legal_at_ps)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{BankId, MappingScheme, RowMapping};
    use crate::device::Subchannel;
    use crate::mitigation::NullMitigator;
    use mirza_telemetry::{EventSink, SharedBuf};

    fn bank(i: u32) -> BankId {
        BankId::new(0, 0, i)
    }

    fn auditor() -> CommandAuditor {
        CommandAuditor::new(TimingParams::ddr5_6000(), &Geometry::ddr5_32gb())
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let mut a = auditor();
        let t = TimingParams::ddr5_6000();
        let tel = Telemetry::disabled();
        let act = Command::Act {
            bank: bank(0),
            row: 7,
        };
        a.observe(&act, Ps::ZERO, &tel);
        let rd = Command::Rd {
            bank: bank(0),
            col: 0,
        };
        a.observe(&rd, t.t_rcd, &tel);
        let pre = Command::Pre { bank: bank(0) };
        a.observe(&pre, t.t_ras, &tel);
        a.observe(&act, t.t_rc, &tel);
        assert_eq!(a.violations(), 0);
        assert_eq!(a.commands_checked(), 4);
    }

    #[test]
    fn early_act_after_pre_flags_exactly_one_trp_violation() {
        // A deliberately permissive device (tRP = 0, tRC = tRAS) accepts an
        // ACT the DDR5-6000 reference forbids; the auditor — configured
        // with the real reference — must flag it, exactly once, as a
        // structured event.
        let mut permissive = TimingParams::ddr5_6000();
        permissive.t_rp = Ps::ZERO;
        permissive.t_rc = permissive.t_ras;
        permissive
            .validate()
            .expect("permissive set is self-consistent");
        let geom = Geometry::ddr5_32gb();
        let mut sc = Subchannel::new(
            permissive.clone(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        );
        sc.enable_audit_with(TimingParams::ddr5_6000());
        let buf = SharedBuf::new();
        sc.set_telemetry(Telemetry::enabled().with_events(EventSink::new(buf.writer())));

        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
        );
        sc.issue(Command::Pre { bank: bank(0) }, permissive.t_ras);
        // Device-legal (tRP = 0, tRC = tRAS) but 14 ns too early for the
        // reference's tRP.
        sc.issue(
            Command::Act {
                bank: bank(0),
                row: 2,
            },
            permissive.t_ras,
        );

        let audit = sc.auditor().expect("audit enabled");
        assert_eq!(audit.violations(), 1);
        let v = &audit.recent_violations()[0];
        assert_eq!(v.rule, "tRP");
        assert_eq!(v.t_ps, permissive.t_ras.as_ps());
        assert_eq!(
            v.legal_at_ps,
            (permissive.t_ras + TimingParams::ddr5_6000().t_rp).as_ps()
        );

        let events: Vec<Json> = buf
            .contents()
            .lines()
            .map(|l| Json::parse(l).expect("event line parses"))
            .filter(|e| e.get("event").and_then(Json::as_str) == Some("protocol_violation"))
            .collect();
        assert_eq!(events.len(), 1, "exactly one structured violation event");
        assert_eq!(events[0].get("rule").unwrap().as_str(), Some("tRP"));
    }

    #[test]
    fn fifth_act_inside_faw_window_flags_tfaw() {
        let mut a = auditor();
        let t = TimingParams::ddr5_6000();
        let tel = Telemetry::disabled();
        let mut now = Ps::ZERO;
        for i in 0..4 {
            a.observe(
                &Command::Act {
                    bank: bank(i),
                    row: 1,
                },
                now,
                &tel,
            );
            now += t.t_rrd;
        }
        assert_eq!(a.violations(), 0);
        // 5th ACT only tRRD after the 4th: inside the tFAW window.
        a.observe(
            &Command::Act {
                bank: bank(4),
                row: 1,
            },
            now,
            &tel,
        );
        assert_eq!(a.violations(), 1);
        assert_eq!(a.recent_violations()[0].rule, "tFAW");
        assert_eq!(a.recent_violations()[0].legal_at_ps, t.t_faw.as_ps());
    }

    #[test]
    fn command_during_trfc_flags_block() {
        let mut a = auditor();
        let t = TimingParams::ddr5_6000();
        let tel = Telemetry::enabled();
        a.observe(&Command::Ref, Ps::ZERO, &tel);
        a.observe(
            &Command::Act {
                bank: bank(0),
                row: 1,
            },
            t.t_rfc - Ps::from_ns(1),
            &tel,
        );
        assert_eq!(a.violations(), 1);
        assert_eq!(a.recent_violations()[0].rule, "tRFC");
        assert_eq!(tel.counter("audit.violations"), 1);
    }

    #[test]
    fn refresh_starvation_flags_trefi_once_per_lapse() {
        let mut a = auditor();
        let t = TimingParams::ddr5_6000();
        let tel = Telemetry::disabled();
        // No REF for 10 tREFI while demand keeps running: one flag.
        let late = t.t_refi * 10;
        a.observe(
            &Command::Act {
                bank: bank(0),
                row: 1,
            },
            late,
            &tel,
        );
        a.observe(
            &Command::Rd {
                bank: bank(0),
                col: 0,
            },
            late + t.t_rcd,
            &tel,
        );
        assert_eq!(a.violations(), 1, "flagged once per lapse, not per command");
        assert_eq!(a.recent_violations()[0].rule, "tREFI");
        // A REF repays the debt and re-arms the check.
        a.observe(&Command::Pre { bank: bank(0) }, late + t.t_ras, &tel);
        a.observe(&Command::Ref, late + t.t_rc, &tel);
        assert_eq!(a.violations(), 1);
    }

    #[test]
    fn abo_window_polices_demand_after_prologue() {
        let mut a = auditor();
        let t = TimingParams::ddr5_6000();
        let tel = Telemetry::disabled();
        a.observe(
            &Command::Act {
                bank: bank(0),
                row: 1,
            },
            Ps::ZERO,
            &tel,
        );
        a.note_alert(0);
        // Demand ACT inside the prologue is fine...
        a.observe(
            &Command::Act {
                bank: bank(1),
                row: 1,
            },
            t.t_alert_prologue,
            &tel,
        );
        assert_eq!(a.violations(), 0);
        // ...but past it, with the alert still unserviced, it is not.
        a.observe(
            &Command::Act {
                bank: bank(2),
                row: 1,
            },
            t.t_alert_prologue + t.t_rrd,
            &tel,
        );
        assert_eq!(a.violations(), 1);
        assert_eq!(a.recent_violations()[0].rule, "abo-prologue");
    }

    #[test]
    fn device_clean_run_stays_clean_under_audit() {
        // The same ACT/RD/PRE cycle the device tests use, with auditing on
        // and the same reference timing: nothing may be flagged.
        let geom = Geometry::ddr5_32gb();
        let mut sc = Subchannel::new(
            TimingParams::ddr5_6000(),
            geom,
            RowMapping::for_geometry(MappingScheme::Strided, &geom),
            Box::new(NullMitigator::new()),
        );
        sc.enable_audit();
        let mut now = Ps::ZERO;
        for i in 0..8u32 {
            let act = Command::Act {
                bank: bank(i % 4),
                row: i,
            };
            if let Some(e) = sc.earliest(&act) {
                now = e.max(now);
                sc.issue(act, now);
                let rd = Command::Rd {
                    bank: bank(i % 4),
                    col: 0,
                };
                let e = sc.earliest(&rd).unwrap();
                now = e.max(now);
                sc.issue(rd, now);
                let pre = Command::Pre { bank: bank(i % 4) };
                let e = sc.earliest(&pre).unwrap();
                now = e.max(now);
                sc.issue(pre, now);
            }
        }
        let e = sc.earliest(&Command::Ref).unwrap();
        sc.issue(Command::Ref, e.max(now));
        let audit = sc.auditor().unwrap();
        assert_eq!(audit.violations(), 0);
        assert_eq!(audit.commands_checked(), 25);
    }
}
