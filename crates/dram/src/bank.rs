//! Per-bank timing state machine.
//!
//! Each bank tracks its open row and the earliest instant at which each
//! command class may legally be issued to it. The sub-channel device layers
//! rank-level constraints (tRRD, tFAW, refresh) on top.

use crate::time::Ps;
use crate::timing::TimingParams;

/// Timing and row-buffer state of a single bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankState {
    open_row: Option<u32>,
    next_act: Ps,
    next_pre: Ps,
    next_rd: Ps,
    next_wr: Ps,
    last_act_at: Ps,
}

impl Default for BankState {
    fn default() -> Self {
        Self::new()
    }
}

impl BankState {
    /// A freshly powered-up, precharged bank.
    pub fn new() -> Self {
        BankState {
            open_row: None,
            next_act: Ps::ZERO,
            next_pre: Ps::ZERO,
            next_rd: Ps::ZERO,
            next_wr: Ps::ZERO,
            last_act_at: Ps::ZERO,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Time of the most recent ACT to this bank.
    pub fn last_act_at(&self) -> Ps {
        self.last_act_at
    }

    /// Earliest instant an ACT may be issued (bank must be precharged).
    ///
    /// Returns `None` while a row is open (a PRE must come first).
    pub fn earliest_act(&self) -> Option<Ps> {
        if self.open_row.is_some() {
            None
        } else {
            Some(self.next_act)
        }
    }

    /// Earliest instant a PRE may be issued. `None` if already precharged.
    pub fn earliest_pre(&self) -> Option<Ps> {
        self.open_row.map(|_| self.next_pre)
    }

    /// Earliest instant a RD to `row` may be issued. `None` on row mismatch
    /// or closed bank.
    pub fn earliest_rd(&self, row: u32) -> Option<Ps> {
        (self.open_row == Some(row)).then_some(self.next_rd)
    }

    /// Earliest instant a WR to `row` may be issued. `None` on row mismatch
    /// or closed bank.
    pub fn earliest_wr(&self, row: u32) -> Option<Ps> {
        (self.open_row == Some(row)).then_some(self.next_wr)
    }

    /// Applies an ACT issued at `now`.
    ///
    /// # Panics
    /// Panics if the bank is not precharged or `now` violates timing; the
    /// memory controller must consult [`earliest_act`](Self::earliest_act).
    pub fn issue_act(&mut self, row: u32, now: Ps, t: &TimingParams) {
        assert!(self.open_row.is_none(), "ACT to bank with open row");
        assert!(now >= self.next_act, "ACT violates tRC/tRP at {now}");
        self.open_row = Some(row);
        self.last_act_at = now;
        self.next_pre = now + t.t_ras;
        self.next_rd = now + t.t_rcd;
        self.next_wr = now + t.t_rcd;
        // Same-bank ACT-to-ACT: enforced through PRE (tRAS + tRP) and tRC.
        self.next_act = now + t.t_rc;
    }

    /// Applies a PRE issued at `now`.
    ///
    /// # Panics
    /// Panics if the bank is precharged or `now` violates timing.
    pub fn issue_pre(&mut self, now: Ps, t: &TimingParams) {
        assert!(self.open_row.is_some(), "PRE to precharged bank");
        assert!(now >= self.next_pre, "PRE violates tRAS/tRTP/tWR at {now}");
        self.open_row = None;
        self.next_act = self.next_act.max(now + t.t_rp);
    }

    /// Applies a RD burst issued at `now`. Returns the instant the data burst
    /// completes on the bus (`now + CL + tBURST`).
    ///
    /// # Panics
    /// Panics on row mismatch or timing violation.
    pub fn issue_rd(&mut self, row: u32, now: Ps, t: &TimingParams) -> Ps {
        assert_eq!(self.open_row, Some(row), "RD row mismatch");
        assert!(now >= self.next_rd, "RD violates tRCD/tCCD at {now}");
        self.next_rd = now + t.t_ccd;
        self.next_wr = self.next_wr.max(now + t.t_ccd);
        // Read-to-precharge.
        self.next_pre = self.next_pre.max(now + t.t_rtp);
        now + t.cl + t.t_burst
    }

    /// Applies a WR burst issued at `now`. Returns the instant the data burst
    /// completes on the bus (`now + CWL + tBURST`).
    ///
    /// # Panics
    /// Panics on row mismatch or timing violation.
    pub fn issue_wr(&mut self, row: u32, now: Ps, t: &TimingParams) -> Ps {
        assert_eq!(self.open_row, Some(row), "WR row mismatch");
        assert!(now >= self.next_wr, "WR violates tRCD/tCCD at {now}");
        let burst_end = now + t.cwl + t.t_burst;
        self.next_wr = now + t.t_ccd;
        // Write-to-read turnaround and write recovery.
        self.next_rd = self.next_rd.max(burst_end + t.t_wtr);
        self.next_pre = self.next_pre.max(burst_end + t.t_wr);
        burst_end
    }

    /// Blocks the bank until `until` (used for REF/RFM/ALERT stalls).
    ///
    /// # Panics
    /// Panics if a row is open; all banks must be precharged first.
    pub fn block_until(&mut self, until: Ps) {
        assert!(self.open_row.is_none(), "bank busy during blocking command");
        self.next_act = self.next_act.max(until);
    }

    /// Earliest instant at which *any* command class this bank currently
    /// admits becomes issuable: the bank-local next-event time.
    ///
    /// Open bank: the earliest of PRE / RD / WR release (an ACT is illegal
    /// until a PRE happens, so `next_act` is unreachable before one of
    /// these). Closed bank: the ACT release (PRE/RD/WR are illegal).
    ///
    /// This is the bank's contribution to the device-level
    /// `next_interesting_ps()` contract: before this instant the bank's
    /// legality/earliest answers cannot change except through a new command
    /// issued to it (which invalidates any cache of this value).
    pub fn next_interesting_ps(&self) -> Ps {
        if self.open_row.is_some() {
            self.next_pre.min(self.next_rd).min(self.next_wr)
        } else {
            self.next_act
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(7, Ps::ZERO, &t);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.earliest_rd(7), Some(t.t_rcd));
        assert_eq!(b.earliest_rd(8), None);
        let done = b.issue_rd(7, t.t_rcd, &t);
        assert_eq!(done, t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn act_to_act_same_bank_is_trc() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        b.issue_pre(t.t_ras, &t);
        // PRE at tRAS -> next ACT at max(tRC, tRAS + tRP) = tRC (46 = 32+14).
        assert_eq!(b.earliest_act(), Some(t.t_rc));
        b.issue_act(2, t.t_rc, &t);
        assert_eq!(b.open_row(), Some(2));
    }

    #[test]
    fn read_extends_precharge_by_trtp() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        let late_rd = t.t_ras; // read issued late in the row cycle
        b.issue_rd(1, late_rd, &t);
        assert_eq!(b.earliest_pre(), Some(late_rd + t.t_rtp));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        let wr_at = t.t_rcd;
        let burst_end = b.issue_wr(1, wr_at, &t);
        assert_eq!(burst_end, wr_at + t.cwl + t.t_burst);
        assert_eq!(b.earliest_pre(), Some(burst_end + t.t_wr));
        // Write-to-read turnaround.
        assert_eq!(b.earliest_rd(1), Some(burst_end + t.t_wtr));
    }

    #[test]
    #[should_panic(expected = "ACT to bank with open row")]
    fn double_act_panics() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        b.issue_act(2, t.t_rc, &t);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn early_pre_panics() {
        let t = t();
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        b.issue_pre(Ps::from_ns(1), &t);
    }

    #[test]
    fn block_until_defers_act() {
        let mut b = BankState::new();
        b.block_until(Ps::from_ns(410));
        assert_eq!(b.earliest_act(), Some(Ps::from_ns(410)));
    }

    #[test]
    fn next_interesting_tracks_row_state() {
        let t = t();
        let mut b = BankState::new();
        // Closed bank: the ACT release is the only interesting edge.
        b.block_until(Ps::from_ns(410));
        assert_eq!(b.next_interesting_ps(), Ps::from_ns(410));
        let mut b = BankState::new();
        b.issue_act(1, Ps::ZERO, &t);
        // Open bank: RD/WR at tRCD come before PRE at tRAS.
        assert_eq!(b.next_interesting_ps(), t.t_rcd);
        b.issue_rd(1, t.t_rcd, &t);
        // After the read the earliest edge is the next column slot (tCCD).
        assert_eq!(b.next_interesting_ps(), t.t_rcd + t.t_ccd);
        b.issue_pre(t.t_ras, &t);
        assert_eq!(b.next_interesting_ps(), t.t_rc);
    }
}
