//! # mirza-attacks — composable Rowhammer attack framework
//!
//! Attacks decompose into three independent trait axes (the SWAGE
//! allocator × hammerer × victim decomposition, adapted to an in-DRAM
//! mitigation study):
//!
//! * [`strategy::AddressStrategy`] — *which* rows to activate: wrappers
//!   over the canned [`mirza_workloads::attacks::RowPattern`] kernels
//!   (single/double/many-sided, half-double, blacksmith, CGF-evading
//!   same-region) plus adaptive strategies that react to run feedback
//!   (feinting, decoy flood, refresh-sync).
//! * [`schedule::Schedule`] — *when* to activate: flat-out bursts, paced
//!   hammering with a tunable inter-ACT gap, and an ALERT-adaptive pacer
//!   that backs off while the tracker asserts ALERT.
//! * [`victim::Victim`] — *what counts as compromised*: scored against the
//!   per-row [`mirza_dram::audit::RowCensus`] accumulated by the rig,
//!   compared with a mitigation's NBO activation bound (MIRZA's
//!   `safe_trhd`, PRAC's `2×ATH` envelope, a tracker's design TRH).
//!
//! The [`rig`] module replays any (strategy, schedule) pair against any
//! [`mirza_dram::mitigation::Mitigator`] on a faithful REF/ALERT timeline
//! and judges the outcome with a victim model. The legacy Monte-Carlo
//! entry points (`HammerHarness`, `run_hammer`) live here too and are
//! re-exported by `mirza_security::montecarlo` unchanged.
//!
//! Everything is deterministic for a fixed seed: strategies draw their
//! randomness from seeded `SmallRng` streams and the rig itself is
//! RNG-free, so a matrix sweep re-run with the same seeds is bit-identical.

pub mod rig;
pub mod schedule;
pub mod strategy;
pub mod victim;

use mirza_dram::mitigation::RefreshSlice;
use mirza_dram::time::Ps;

/// Per-slot run feedback handed to strategies and schedules: everything an
/// on-device adversary could plausibly observe (command timing, ALERT
/// assertion, refresh cadence) and nothing it could not (tracker
/// internals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// Current simulated instant.
    pub now: Ps,
    /// REF intervals completed so far.
    pub interval: u64,
    /// REF commands elapsed.
    pub refs: u64,
    /// ALERT back-offs serviced so far.
    pub alerts: u64,
    /// Whether the tracker is asserting ALERT right now.
    pub alert_pending: bool,
    /// Attacker ACTs performed since the last serviced ALERT.
    pub acts_since_alert: u32,
    /// ACT slots elapsed (hammered or idled) since the last serviced ALERT.
    pub slots_since_alert: u64,
    /// Total attacker ACTs performed.
    pub total_acts: u64,
    /// The most recent refresh slice, if any REF has been issued.
    pub last_refresh: Option<RefreshSlice>,
}

impl Feedback {
    /// Feedback at the start of a run (nothing observed yet).
    pub fn initial() -> Self {
        Feedback {
            now: Ps::ZERO,
            interval: 0,
            refs: 0,
            alerts: 0,
            alert_pending: false,
            acts_since_alert: 0,
            slots_since_alert: 0,
            total_acts: 0,
            last_refresh: None,
        }
    }
}
