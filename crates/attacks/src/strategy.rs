//! The `AddressStrategy` axis: which rows an attack activates.
//!
//! [`PatternStrategy`] carries every canned [`RowPattern`] kernel over to
//! the trait API; the remaining strategies are *adaptive* — they use the
//! per-slot [`Feedback`] (ALERT assertions, refresh slices) to retarget,
//! which a fixed circular pattern cannot express.

use mirza_dram::address::{RegionMap, RowMapping};
use mirza_dram::mitigation::RefreshSlice;
use mirza_workloads::attacks::RowPattern;

use crate::Feedback;

/// Chooses the row for each attacker activation.
///
/// Implementations must be deterministic given their constructor inputs
/// (any randomness comes from an explicit seed), so same-seed attack runs
/// replay bit-identically.
pub trait AddressStrategy {
    /// Stable identifier used in matrix CSV rows and telemetry events.
    fn label(&self) -> String;

    /// The row address to activate next.
    fn next_row(&mut self, fb: &Feedback) -> u32;

    /// Notification that a REF refreshed `slice` (refresh-pointer walk
    /// position). Strategies that chase the walk retarget here.
    fn on_ref(&mut self, _slice: &RefreshSlice) {}

    /// The rows the attack centers on, for targeted victim scoring.
    /// Empty means "no specific target" (score any row).
    fn target_rows(&self) -> Vec<u32> {
        Vec::new()
    }
}

/// A [`RowPattern`] behind the trait: the migration path for the canned
/// single/double/many-sided, half-double, blacksmith and same-region
/// kernels. Feedback is ignored — the pattern is a fixed circular
/// sequence.
#[derive(Debug, Clone)]
pub struct PatternStrategy {
    label: String,
    pattern: RowPattern,
}

impl PatternStrategy {
    /// Wraps an arbitrary pattern under `label`.
    pub fn from_pattern(label: impl Into<String>, pattern: RowPattern) -> Self {
        PatternStrategy {
            label: label.into(),
            pattern,
        }
    }

    /// Classic single-sided hammering of one row.
    pub fn single_sided(row: u32) -> Self {
        Self::from_pattern("single-sided", RowPattern::single_sided(row))
    }

    /// Double-sided attack around the victim at physical index
    /// `victim_phys` (see [`RowPattern::double_sided`]).
    pub fn double_sided(mapping: &RowMapping, victim_phys: u32) -> Self {
        Self::from_pattern(
            "double-sided",
            RowPattern::double_sided(mapping, victim_phys),
        )
    }

    /// Many-sided (TRRespass-style) pattern (see [`RowPattern::many_sided`]).
    pub fn many_sided(mapping: &RowMapping, subarray: u32, pairs: u32) -> Self {
        Self::from_pattern(
            format!("many-sided-p{pairs}"),
            RowPattern::many_sided(mapping, subarray, pairs),
        )
    }

    /// Half-Double style far/near mix (see [`RowPattern::half_double`]).
    pub fn half_double(mapping: &RowMapping, victim_phys: u32) -> Self {
        Self::from_pattern("half-double", RowPattern::half_double(mapping, victim_phys))
    }

    /// Blacksmith-style non-uniform pattern (see [`RowPattern::blacksmith`]).
    pub fn blacksmith(mapping: &RowMapping, subarray: u32, k: u32, seed: u64) -> Self {
        Self::from_pattern(
            format!("blacksmith-k{k}"),
            RowPattern::blacksmith(mapping, subarray, k, seed),
        )
    }

    /// The CGF-evading same-region kernel (see [`RowPattern::same_region`]).
    pub fn same_region(mapping: &RowMapping, regions: &RegionMap, region: u32, k: u32) -> Self {
        Self::from_pattern(
            format!("same-region-k{k}"),
            RowPattern::same_region(mapping, regions, region, k),
        )
    }
}

impl AddressStrategy for PatternStrategy {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn next_row(&mut self, _fb: &Feedback) -> u32 {
        self.pattern.next_act()
    }

    fn target_rows(&self) -> Vec<u32> {
        self.pattern.rows().to_vec()
    }
}

/// Feinting attack on MIRZA-Q (Section IX-B flavored): a steady aggressor
/// pair rides along while rotating *feint* rows absorb bursts just large
/// enough to enter candidate selection and occupy queue slots, delaying
/// the real pair's mitigation. The active feint row rotates every time the
/// tracker services an ALERT — the feedback a real attacker gets for free.
#[derive(Debug, Clone)]
pub struct Feinting {
    main: [u32; 2],
    feints: Vec<u32>,
    burst: u32,
    /// Position inside the `[feint × burst, A, B]` phase.
    pos: u32,
    feint_idx: usize,
    last_alerts: u64,
}

impl Feinting {
    /// A feinting attack inside RCT region `region`: the aggressor pair
    /// straddles the region's middle physical row; `feints` decoy rows are
    /// taken from the region's start, each burst `burst` ACTs long.
    ///
    /// # Panics
    /// Panics if the region cannot host `feints` feint rows plus the pair.
    pub fn new(
        mapping: &RowMapping,
        regions: &RegionMap,
        region: u32,
        feints: u32,
        burst: u32,
    ) -> Self {
        let range = regions.phys_range(region);
        assert!(
            feints + 4 <= regions.rows_per_region() && feints > 0 && burst > 0,
            "region holds only {} rows",
            regions.rows_per_region()
        );
        let mid = range.start + regions.rows_per_region() / 2;
        let feint_rows = range
            .clone()
            .take(feints as usize)
            .map(|p| mapping.row_of(p))
            .collect();
        Feinting {
            main: [mapping.row_of(mid - 1), mapping.row_of(mid + 1)],
            feints: feint_rows,
            burst,
            pos: 0,
            feint_idx: 0,
            last_alerts: 0,
        }
    }
}

impl AddressStrategy for Feinting {
    fn label(&self) -> String {
        format!("feint-f{}-b{}", self.feints.len(), self.burst)
    }

    fn next_row(&mut self, fb: &Feedback) -> u32 {
        if fb.alerts != self.last_alerts {
            // The tracker just mitigated someone; rotate the feint so a
            // fresh row re-pressures the queue.
            self.last_alerts = fb.alerts;
            self.feint_idx = (self.feint_idx + 1) % self.feints.len();
            self.pos = 0;
        }
        let row = if self.pos < self.burst {
            self.feints[self.feint_idx]
        } else {
            self.main[(self.pos - self.burst) as usize % 2]
        };
        self.pos = (self.pos + 1) % (self.burst + 2);
        row
    }

    fn target_rows(&self) -> Vec<u32> {
        self.main.to_vec()
    }
}

/// Decoy flood (the pattern that breaks sampling-based TRR, generalized):
/// `decoys` rows spread across the bank each receive `ratio` ACTs per
/// cycle, keeping a frequency tracker's table full, while the double-sided
/// aggressor pair is activated only once per cycle and never becomes the
/// mitigation target.
#[derive(Debug, Clone)]
pub struct DecoyFlood {
    aggressors: [u32; 2],
    decoys: Vec<u32>,
    ratio: u32,
    pos: u64,
}

impl DecoyFlood {
    /// A flood of `decoys` rows at `ratio` ACTs each per cycle around the
    /// double-sided pair of `victim_phys`.
    ///
    /// # Panics
    /// Panics if `decoys` or `ratio` is zero, the bank cannot spread the
    /// decoys, or the victim sits at a subarray edge.
    pub fn new(mapping: &RowMapping, victim_phys: u32, decoys: u32, ratio: u32) -> Self {
        assert!(decoys > 0 && ratio > 0, "need at least one decoy and ACT");
        let aggrs = RowPattern::double_sided(mapping, victim_phys);
        let rows_per_bank = mapping.rows_per_bank();
        assert!(decoys + 4 < rows_per_bank, "bank cannot host the decoys");
        // Spread decoys evenly over the bank, stepping past the aggressor
        // neighborhood so no decoy aliases the pair.
        let stride = rows_per_bank / (decoys + 1);
        let decoy_rows = (0..decoys)
            .map(|i| {
                let mut phys = (i + 1) * stride;
                if phys.abs_diff(victim_phys) <= 2 {
                    phys = (phys + 3) % rows_per_bank;
                }
                mapping.row_of(phys)
            })
            .collect();
        DecoyFlood {
            aggressors: [aggrs.rows()[0], aggrs.rows()[1]],
            decoys: decoy_rows,
            ratio,
            pos: 0,
        }
    }
}

impl AddressStrategy for DecoyFlood {
    fn label(&self) -> String {
        format!("decoy-d{}-r{}", self.decoys.len(), self.ratio)
    }

    fn next_row(&mut self, _fb: &Feedback) -> u32 {
        let cycle = self.decoys.len() as u64 * u64::from(self.ratio) + 2;
        let p = self.pos % cycle;
        self.pos += 1;
        let flood = self.decoys.len() as u64 * u64::from(self.ratio);
        if p < flood {
            self.decoys[(p / u64::from(self.ratio)) as usize]
        } else {
            self.aggressors[(p - flood) as usize]
        }
    }

    fn target_rows(&self) -> Vec<u32> {
        self.aggressors.to_vec()
    }
}

/// Refresh-synchronized attack: chases the refresh-pointer walk, always
/// hammering the pair of rows the most recent REF just refreshed — their
/// unmitigated counts were just cleared, so every ACT lands at the start
/// of a full walk-length accumulation window.
#[derive(Debug, Clone)]
pub struct RefreshSync {
    rows: [u32; 2],
    flip: bool,
}

impl RefreshSync {
    /// A refresh-chasing attack; starts on physical rows 0/1 until the
    /// first REF retargets it.
    pub fn new(mapping: &RowMapping) -> Self {
        RefreshSync {
            rows: [mapping.row_of(0), mapping.row_of(1)],
            flip: false,
        }
    }

    /// Remembers the mapping for retargeting — kept outside the struct to
    /// stay `Copy`-cheap; retargeting uses the slice plus this mapping.
    fn retarget(&mut self, mapping: &RowMapping, slice: &RefreshSlice) {
        let s = slice.phys_rows.start;
        self.rows = [mapping.row_of(s), mapping.row_of(s + 1)];
    }
}

/// [`RefreshSync`] needs the mapping at `on_ref` time, so the public type
/// bundles them.
#[derive(Debug, Clone)]
pub struct RefreshSyncStrategy {
    inner: RefreshSync,
    mapping: RowMapping,
}

impl RefreshSyncStrategy {
    /// A refresh-chasing attack over `mapping`.
    pub fn new(mapping: RowMapping) -> Self {
        RefreshSyncStrategy {
            inner: RefreshSync::new(&mapping),
            mapping,
        }
    }
}

impl AddressStrategy for RefreshSyncStrategy {
    fn label(&self) -> String {
        "refresh-sync".into()
    }

    fn next_row(&mut self, _fb: &Feedback) -> u32 {
        self.inner.flip = !self.inner.flip;
        self.inner.rows[usize::from(self.inner.flip)]
    }

    fn on_ref(&mut self, slice: &RefreshSlice) {
        self.inner.retarget(&self.mapping, slice);
    }

    fn target_rows(&self) -> Vec<u32> {
        self.inner.rows.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_dram::address::MappingScheme;

    fn strided() -> RowMapping {
        RowMapping::new(MappingScheme::Strided, 4096, 128)
    }

    fn take(s: &mut dyn AddressStrategy, n: usize) -> Vec<u32> {
        let fb = Feedback::initial();
        (0..n).map(|_| s.next_row(&fb)).collect()
    }

    #[test]
    fn pattern_strategy_mirrors_the_row_pattern() {
        let m = strided();
        let mut s = PatternStrategy::double_sided(&m, 500);
        let mut p = RowPattern::double_sided(&m, 500);
        assert_eq!(take(&mut s, 8), p.take_acts(8));
        assert_eq!(s.label(), "double-sided");
        assert_eq!(s.target_rows().len(), 2);
    }

    #[test]
    fn blacksmith_strategy_is_seed_deterministic() {
        let m = strided();
        let a = take(&mut PatternStrategy::blacksmith(&m, 2, 8, 7), 32);
        let b = take(&mut PatternStrategy::blacksmith(&m, 2, 8, 7), 32);
        let c = take(&mut PatternStrategy::blacksmith(&m, 2, 8, 8), 32);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn feinting_bursts_then_hammers_the_pair() {
        let m = strided();
        let regions = RegionMap::new(4096, 128);
        let mut f = Feinting::new(&m, &regions, 3, 4, 6);
        let seq = take(&mut f, 8);
        // First 6 ACTs are one feint row, then the two mains.
        assert_eq!(seq[0], seq[5]);
        assert_ne!(seq[6], seq[0]);
        assert_ne!(seq[7], seq[6]);
        assert_eq!(f.target_rows().len(), 2);
    }

    #[test]
    fn feinting_rotates_feints_on_alert() {
        let m = strided();
        let regions = RegionMap::new(4096, 128);
        let mut f = Feinting::new(&m, &regions, 3, 4, 6);
        let fb0 = Feedback::initial();
        let first = f.next_row(&fb0);
        let mut fb1 = Feedback::initial();
        fb1.alerts = 1;
        let rotated = f.next_row(&fb1);
        assert_ne!(first, rotated, "alert must rotate the feint row");
    }

    #[test]
    fn decoy_flood_keeps_aggressors_rare() {
        let m = strided();
        let mut d = DecoyFlood::new(&m, 2000, 10, 3);
        let seq = take(&mut d, 32 * 2);
        let aggr = d.target_rows();
        let aggr_acts = seq.iter().filter(|r| aggr.contains(r)).count();
        // Cycle = 10*3 + 2 = 32 ACTs: 2 aggressor ACTs per cycle.
        assert_eq!(aggr_acts, 4);
        assert_eq!(d.label(), "decoy-d10-r3");
    }

    #[test]
    fn refresh_sync_chases_the_walk() {
        let m = strided();
        let mut s = RefreshSyncStrategy::new(m);
        let before = take(&mut s, 2);
        s.on_ref(&RefreshSlice {
            index: 5,
            phys_rows: 80..96,
        });
        let after = take(&mut s, 2);
        assert_ne!(before, after);
        let m = strided();
        assert!(after.contains(&m.row_of(80)));
        assert!(after.contains(&m.row_of(81)));
    }
}
