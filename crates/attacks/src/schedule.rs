//! The `Schedule` axis: when an attack activates.
//!
//! A schedule is consulted once per ACT slot and answers with an
//! [`Action`]: hammer now, or sit idle for some slots. Pacing trades raw
//! activation count against tracker pressure — MINT's sampling probability
//! and PRAC's ABO threshold both key off ACT density, so the sweet spot is
//! an empirical question the matrix sweep answers.

use crate::Feedback;

/// What to do with the current ACT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Issue an activation this slot.
    Hammer,
    /// Leave the next `n` slots idle (tRC still elapses per slot).
    Idle(u32),
}

/// Decides, slot by slot, whether the attacker activates.
///
/// Implementations must be deterministic: the same feedback sequence must
/// produce the same action sequence.
pub trait Schedule {
    /// Stable identifier used in matrix CSV rows and telemetry events.
    fn label(&self) -> String;

    /// The action for the current slot.
    fn decide(&mut self, fb: &Feedback) -> Action;
}

/// Hammer every available slot — the legacy harness behavior and the
/// strongest untargeted adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Burst;

impl Schedule for Burst {
    fn label(&self) -> String {
        "burst".into()
    }

    fn decide(&mut self, _fb: &Feedback) -> Action {
        Action::Hammer
    }
}

/// Hammer once every `gap + 1` slots: a tunable inter-ACT gap. `gap = 0`
/// degenerates to [`Burst`]. This is the parameter the matrix sweep
/// explores.
#[derive(Debug, Clone, Copy)]
pub struct Paced {
    gap: u32,
    countdown: u32,
}

impl Paced {
    /// A pacer with `gap` idle slots between consecutive ACTs.
    pub fn new(gap: u32) -> Self {
        Paced { gap, countdown: 0 }
    }

    /// The configured inter-ACT gap.
    pub fn gap(&self) -> u32 {
        self.gap
    }
}

impl Schedule for Paced {
    fn label(&self) -> String {
        format!("paced-{}", self.gap)
    }

    fn decide(&mut self, _fb: &Feedback) -> Action {
        if self.countdown == 0 {
            self.countdown = self.gap;
            Action::Hammer
        } else {
            let n = self.countdown;
            self.countdown = 0;
            Action::Idle(n)
        }
    }
}

/// ALERT-adaptive pacer: hammers flat out, but the moment the tracker
/// asserts ALERT it goes quiet and stays quiet for `cooldown` slots after
/// the back-off is serviced. Models an attacker that reads ALERT as a
/// detection signal and tries to stay under the mitigation's radar.
#[derive(Debug, Clone, Copy)]
pub struct AlertAdaptive {
    cooldown: u64,
}

impl AlertAdaptive {
    /// An adaptive pacer that idles while ALERT is pending and for
    /// `cooldown` further slots after each serviced back-off.
    pub fn new(cooldown: u64) -> Self {
        AlertAdaptive { cooldown }
    }
}

impl Schedule for AlertAdaptive {
    fn label(&self) -> String {
        format!("adaptive-{}", self.cooldown)
    }

    fn decide(&mut self, fb: &Feedback) -> Action {
        if fb.alert_pending || (fb.alerts > 0 && fb.slots_since_alert < self.cooldown) {
            Action::Idle(1)
        } else {
            Action::Hammer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_always_hammers() {
        let mut b = Burst;
        let fb = Feedback::initial();
        for _ in 0..8 {
            assert_eq!(b.decide(&fb), Action::Hammer);
        }
    }

    #[test]
    fn paced_alternates_hammer_and_gap() {
        let mut p = Paced::new(3);
        let fb = Feedback::initial();
        assert_eq!(p.decide(&fb), Action::Hammer);
        assert_eq!(p.decide(&fb), Action::Idle(3));
        assert_eq!(p.decide(&fb), Action::Hammer);
        assert_eq!(p.decide(&fb), Action::Idle(3));
    }

    #[test]
    fn paced_zero_gap_is_burst() {
        let mut p = Paced::new(0);
        let fb = Feedback::initial();
        for _ in 0..8 {
            assert_eq!(p.decide(&fb), Action::Hammer);
        }
    }

    #[test]
    fn adaptive_idles_while_alert_pending_and_through_cooldown() {
        let mut a = AlertAdaptive::new(4);
        let mut fb = Feedback::initial();
        assert_eq!(a.decide(&fb), Action::Hammer);
        fb.alert_pending = true;
        assert_eq!(a.decide(&fb), Action::Idle(1));
        // Back-off serviced: still cooling down.
        fb.alert_pending = false;
        fb.alerts = 1;
        fb.slots_since_alert = 2;
        assert_eq!(a.decide(&fb), Action::Idle(1));
        // Cooldown elapsed: resume.
        fb.slots_since_alert = 4;
        assert_eq!(a.decide(&fb), Action::Hammer);
    }
}
