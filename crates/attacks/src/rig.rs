//! Attack rig: replays (strategy, schedule) pairs against any
//! [`Mitigator`] on a faithful REF/ALERT timeline and judges the outcome
//! with a [`Victim`] model.
//!
//! This module subsumes the original Monte-Carlo engine: the legacy
//! pattern-based entry points ([`HammerHarness::interval`],
//! [`HammerHarness::burst`], [`run_hammer`]) are preserved bit-for-bit
//! (`mirza_security::montecarlo` re-exports them), while
//! [`HammerHarness::interval_with`] generalizes the slot loop over the
//! trait axes.
//!
//! Accounting (per DESIGN.md): a row's unmitigated count increments on each
//! of its ACTs and resets when (a) the row is mitigated as an aggressor
//! (its victims are refreshed), or (b) the refresh-pointer walk refreshes
//! the row (a <=1-REF-slice approximation of its victims' refresh). The
//! per-row ledger is a [`RowCensus`]; unlike the command auditor's
//! conservative census, the rig *credits* targeted mitigations because it
//! models the mitigation protocol faithfully.

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::audit::RowCensus;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{Mitigator, RefreshSlice};
use mirza_dram::refresh::RefreshPointer;
use mirza_dram::time::Ps;
use mirza_dram::timing::TimingParams;
use mirza_workloads::attacks::RowPattern;

use crate::schedule::{Action, Schedule};
use crate::strategy::AddressStrategy;
use crate::victim::Victim;
use crate::Feedback;

/// ACTs the attacker can land during one ALERT prologue (180 ns / tRC).
pub const PROLOGUE_ACTS: u32 = 3;

/// Activation slots consumed by the ALERT stall (350 ns / tRC, rounded up).
pub const STALL_SLOTS: u32 = 8;

/// Result of one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Maximum unmitigated ACTs observed on any row at any instant.
    pub max_unmitigated_acts: u32,
    /// Total attacker activations performed.
    pub total_acts: u64,
    /// ALERT back-offs serviced.
    pub alerts: u64,
    /// REF commands elapsed.
    pub refs: u64,
}

/// Outcome of a judged attack run: the raw [`AttackOutcome`] plus the
/// victim model's verdict against the mitigation's NBO bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackReport {
    /// Raw run counters.
    pub outcome: AttackOutcome,
    /// Maximum unmitigated ACT burden on any row the victim model scores.
    pub max_row_acts: u32,
    /// The bound the run was judged against.
    pub bound: u32,
    /// Whether `max_row_acts >= bound` per the victim model.
    pub success: bool,
}

/// Replays activation patterns against a mitigator with a faithful
/// REF/ALERT timeline for one bank.
pub struct HammerHarness<'a> {
    mitigator: &'a mut dyn Mitigator,
    bank: usize,
    census: RowCensus,
    refptr: RefreshPointer,
    acts_per_interval: u32,
    now: Ps,
    t_rc: Ps,
    acts_since_alert: u32,
    slots_since_alert: u64,
    intervals: u64,
    last_refresh: Option<RefreshSlice>,
    outcome: AttackOutcome,
}

impl<'a> HammerHarness<'a> {
    /// Creates a harness attacking `bank` of `geom` through `mitigator`.
    /// The attacker ACT budget per REF interval comes from `timing`
    /// (`(tREFI - tRFC)/tRC`, 75 for baseline DDR5-6000).
    pub fn new(
        mitigator: &'a mut dyn Mitigator,
        geom: &Geometry,
        timing: &TimingParams,
        bank: usize,
    ) -> Self {
        let mapping = mitigator
            .mapping()
            .copied()
            .unwrap_or_else(|| RowMapping::for_geometry(MappingScheme::Sequential, geom));
        let acts_per_interval =
            ((timing.t_refi.as_ps() - timing.t_rfc.as_ps()) / timing.t_rc.as_ps()) as u32;
        HammerHarness {
            mitigator,
            bank,
            census: RowCensus::new(mapping, 1, geom.rows_per_bank, geom.rows_per_ref),
            refptr: RefreshPointer::new(geom.rows_per_bank, geom.rows_per_ref),
            acts_per_interval,
            now: Ps::ZERO,
            t_rc: timing.t_rc,
            acts_since_alert: 1,
            slots_since_alert: 0,
            intervals: 0,
            last_refresh: None,
            outcome: AttackOutcome {
                max_unmitigated_acts: 0,
                total_acts: 0,
                alerts: 0,
                refs: 0,
            },
        }
    }

    /// Attacker ACT slots per REF interval.
    pub fn acts_per_interval(&self) -> u32 {
        self.acts_per_interval
    }

    /// Current unmitigated count of `row`.
    pub fn count(&self, row: u32) -> u32 {
        self.census.count(0, row)
    }

    /// The per-row activation ledger accumulated so far.
    pub fn census(&self) -> &RowCensus {
        &self.census
    }

    /// The feedback an on-device adversary observes right now.
    pub fn feedback(&self) -> Feedback {
        Feedback {
            now: self.now,
            interval: self.intervals,
            refs: self.outcome.refs,
            alerts: self.outcome.alerts,
            alert_pending: self.mitigator.alert_pending(),
            acts_since_alert: self.acts_since_alert,
            slots_since_alert: self.slots_since_alert,
            total_acts: self.outcome.total_acts,
            last_refresh: self.last_refresh.clone(),
        }
    }

    fn act(&mut self, row: u32) {
        self.mitigator.on_activate(self.bank, row, self.now);
        self.now += self.t_rc;
        self.acts_since_alert += 1;
        self.slots_since_alert += 1;
        self.outcome.total_acts += 1;
        self.census.on_act(0, row);
    }

    fn apply_mitigations(&mut self) {
        for (bank, row) in self.mitigator.drain_mitigations() {
            if bank == self.bank {
                self.census.credit(0, row);
            }
        }
    }

    /// Services one pending ALERT back-off: stall, RFM, drain.
    fn service_alert(&mut self, budget: &mut i64) {
        *budget -= i64::from(STALL_SLOTS);
        self.now += self.t_rc * u64::from(STALL_SLOTS);
        self.mitigator.on_rfm(true, self.now);
        self.outcome.alerts += 1;
        self.acts_since_alert = 0;
        self.slots_since_alert = 0;
        self.apply_mitigations();
    }

    /// Runs one REF interval of attacker activations from `pattern`,
    /// honoring the ALERT protocol, then the REF itself.
    ///
    /// Equivalent to [`interval_with`] over the pattern and a
    /// [`Burst`](crate::schedule::Burst) schedule (there is a test pinning
    /// this).
    ///
    /// [`interval_with`]: HammerHarness::interval_with
    pub fn interval(&mut self, pattern: &mut RowPattern) {
        let mut budget = i64::from(self.acts_per_interval);
        while budget > 0 {
            if self.mitigator.alert_pending() && self.acts_since_alert >= 1 {
                for _ in 0..PROLOGUE_ACTS {
                    if budget > 0 {
                        let row = pattern.next_act();
                        self.act(row);
                        budget -= 1;
                    }
                }
                self.service_alert(&mut budget);
            } else {
                let row = pattern.next_act();
                self.act(row);
                budget -= 1;
            }
        }
        self.ref_step();
    }

    /// Runs one REF interval with the trait axes: the schedule decides,
    /// slot by slot, whether the strategy is asked for an activation. The
    /// ALERT protocol takes precedence over the schedule (the prologue +
    /// back-off is a bus-level sequence the attacker cannot opt out of),
    /// and a pending ALERT is serviced even across idle slots — the memory
    /// controller issues the RFM whether or not the attacker activates.
    pub fn interval_with(
        &mut self,
        strategy: &mut dyn AddressStrategy,
        schedule: &mut dyn Schedule,
    ) {
        let mut budget = i64::from(self.acts_per_interval);
        while budget > 0 {
            if self.mitigator.alert_pending() && self.acts_since_alert >= 1 {
                for _ in 0..PROLOGUE_ACTS {
                    if budget > 0 {
                        let fb = self.feedback();
                        let row = strategy.next_row(&fb);
                        self.act(row);
                        budget -= 1;
                    }
                }
                self.service_alert(&mut budget);
            } else {
                let fb = self.feedback();
                match schedule.decide(&fb) {
                    Action::Hammer => {
                        let row = strategy.next_row(&fb);
                        self.act(row);
                        budget -= 1;
                    }
                    Action::Idle(n) => {
                        let n = n.max(1);
                        budget -= i64::from(n);
                        self.now += self.t_rc * u64::from(n);
                        self.slots_since_alert += u64::from(n);
                        if self.mitigator.alert_pending() {
                            // The attacker is quiet but the device still
                            // asserts ALERT: the MC services it anyway.
                            self.service_alert(&mut budget);
                        }
                    }
                }
            }
        }
        let slice = self.ref_step();
        strategy.on_ref(&slice);
    }

    /// Runs one idle REF interval (no attacker ACTs).
    pub fn idle_interval(&mut self) {
        self.ref_step();
    }

    fn ref_step(&mut self) -> RefreshSlice {
        let slice = self.refptr.advance();
        self.mitigator.on_ref(&slice, self.now);
        self.census.on_ref();
        self.apply_mitigations();
        self.outcome.refs += 1;
        self.intervals += 1;
        self.now += Ps::from_ns(3900);
        self.last_refresh = Some(slice.clone());
        slice
    }

    /// Performs exactly `n` attacker ACTs without advancing refresh
    /// (scenario scripting helper; regular runs use [`interval`]).
    ///
    /// [`interval`]: HammerHarness::interval
    pub fn burst(&mut self, pattern: &mut RowPattern, n: u32) {
        for _ in 0..n {
            if self.mitigator.alert_pending() && self.acts_since_alert >= 1 {
                self.mitigator.on_rfm(true, self.now);
                self.outcome.alerts += 1;
                self.acts_since_alert = 0;
                self.slots_since_alert = 0;
                self.apply_mitigations();
            }
            let row = pattern.next_act();
            self.act(row);
        }
    }

    /// Finishes and reports.
    pub fn finish(mut self) -> AttackOutcome {
        self.outcome.max_unmitigated_acts = self.census.max_seen();
        self.outcome
    }
}

/// Monte-Carlo seed sweep: runs `trial(seed)` for every seed on the
/// supervised `mirza-runner` work-pool and returns the results in seed
/// order regardless of completion order. Each trial must be pure in its
/// seed (every rig entry point is RNG-free by contract), so the returned
/// vector is bit-identical at any job count — `jobs <= 1` runs inline on
/// the caller thread. A panicking trial propagates as a panic after the
/// pool's bounded retry; sweeps that need degraded endings instead should
/// drive [`mirza_runner::Pool`] with their own [`mirza_runner::Cell`].
pub fn monte_carlo<T, F>(seeds: &[u64], jobs: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    mirza_runner::parallel_map(seeds, jobs, |_, &seed| trial(seed))
}

/// Runs `pattern` flat-out for `refs` REF intervals and reports.
pub fn run_hammer(
    mitigator: &mut dyn Mitigator,
    geom: &Geometry,
    timing: &TimingParams,
    bank: usize,
    pattern: &mut RowPattern,
    refs: u64,
) -> AttackOutcome {
    let mut h = HammerHarness::new(mitigator, geom, timing, bank);
    for _ in 0..refs {
        h.interval(pattern);
    }
    h.finish()
}

/// Runs a full composed attack — `strategy` rows on `schedule` timing —
/// for `refs` REF intervals and judges it with `victim` against `bound`.
#[allow(clippy::too_many_arguments)]
pub fn run_attack(
    mitigator: &mut dyn Mitigator,
    geom: &Geometry,
    timing: &TimingParams,
    bank: usize,
    strategy: &mut dyn AddressStrategy,
    schedule: &mut dyn Schedule,
    victim: &dyn Victim,
    bound: u32,
    refs: u64,
) -> AttackReport {
    let mut h = HammerHarness::new(mitigator, geom, timing, bank);
    for _ in 0..refs {
        h.interval_with(strategy, schedule);
    }
    let max_row_acts = victim.observed_max(h.census());
    let success = victim.compromised(h.census(), bound);
    AttackReport {
        outcome: h.finish(),
        max_row_acts,
        bound,
        success,
    }
}

/// A [`RowPattern`] borrowed as an [`AddressStrategy`] without cloning —
/// lets `interval_with` drive a caller-owned pattern whose cursor state
/// must persist across calls (the legacy scripting style).
pub struct PatternRef<'p>(pub &'p mut RowPattern);

impl AddressStrategy for PatternRef<'_> {
    fn label(&self) -> String {
        "pattern".into()
    }

    fn next_row(&mut self, _fb: &Feedback) -> u32 {
        self.0.next_act()
    }

    fn target_rows(&self) -> Vec<u32> {
        self.0.rows().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{AlertAdaptive, Burst, Paced};
    use crate::strategy::PatternStrategy;
    use crate::victim::{AnyRow, TargetRows};
    use mirza_core::config::MirzaConfig;
    use mirza_core::mirza::Mirza;
    use mirza_trackers::trr::Trr;

    fn geom() -> Geometry {
        Geometry::ddr5_32gb()
    }

    fn timing() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn interval_with_burst_matches_legacy_interval() {
        let cfg = MirzaConfig::trhd_1000();
        let legacy = {
            let mut m = Mirza::new(cfg, &geom(), 7);
            let mapping = *m.mapping().unwrap();
            let mut pattern = RowPattern::double_sided(&mapping, 5_000);
            run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 512)
        };
        let composed = {
            let mut m = Mirza::new(cfg, &geom(), 7);
            let mapping = *m.mapping().unwrap();
            let mut h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
            let mut s = PatternStrategy::double_sided(&mapping, 5_000);
            let mut sched = Burst;
            for _ in 0..512 {
                h.interval_with(&mut s, &mut sched);
            }
            h.finish()
        };
        assert_eq!(legacy, composed);
    }

    #[test]
    fn paced_schedule_reduces_total_acts() {
        let cfg = MirzaConfig::trhd_1000();
        let run = |gap: u32| {
            let mut m = Mirza::new(cfg, &geom(), 3);
            let mapping = *m.mapping().unwrap();
            let mut s = PatternStrategy::double_sided(&mapping, 5_000);
            let mut sched = Paced::new(gap);
            run_attack(
                &mut m,
                &geom(),
                &timing(),
                0,
                &mut s,
                &mut sched,
                &AnyRow,
                cfg.safe_trhd(),
                256,
            )
        };
        let flat = run(0);
        let paced = run(3);
        assert!(paced.outcome.total_acts < flat.outcome.total_acts / 2);
        assert!(!flat.success, "MIRZA must bound the paced sweep baseline");
        assert!(!paced.success);
    }

    #[test]
    fn adaptive_schedule_backs_off_after_alerts() {
        let cfg = MirzaConfig::trhd_1000();
        let run = |adaptive: bool| {
            let mut m = Mirza::new(cfg, &geom(), 5);
            let mapping = *m.mapping().unwrap();
            let mut s = PatternStrategy::double_sided(&mapping, 5_000);
            let mut burst = Burst;
            let mut ad = AlertAdaptive::new(64);
            let sched: &mut dyn Schedule = if adaptive { &mut ad } else { &mut burst };
            run_attack(
                &mut m,
                &geom(),
                &timing(),
                0,
                &mut s,
                sched,
                &AnyRow,
                cfg.safe_trhd(),
                1024,
            )
        };
        let flat = run(false);
        let adaptive = run(true);
        assert!(
            adaptive.outcome.total_acts < flat.outcome.total_acts,
            "cooldowns must cost activations: {} vs {}",
            adaptive.outcome.total_acts,
            flat.outcome.total_acts
        );
    }

    #[test]
    fn targeted_victim_sees_through_decoy_mitigations() {
        // Same decoy construction as the legacy TRR break, expressed via
        // the trait axes and judged only on the aggressor pair.
        let mut t = Trr::ddr4_like(&geom());
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8);
        }
        rows.push(20_001);
        rows.push(20_003);
        let mut s = PatternStrategy::from_pattern("trr-decoys", RowPattern::circular(rows));
        let victim = TargetRows::new(vec![20_001, 20_003]);
        let mut sched = Burst;
        let report = run_attack(
            &mut t,
            &geom(),
            &timing(),
            0,
            &mut s,
            &mut sched,
            &victim,
            4_800,
            16_384,
        );
        assert!(report.success, "aggressor pair must exceed TRR's TRHD");
        assert!(report.max_row_acts > 4_800);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let run = || {
            let cfg = MirzaConfig::trhd_1000();
            let mut m = Mirza::new(cfg, &geom(), 29);
            let mapping = *m.mapping().unwrap();
            let mut s = PatternStrategy::blacksmith(&mapping, 7, 24, 3);
            let mut sched = Paced::new(1);
            run_attack(
                &mut m,
                &geom(),
                &timing(),
                0,
                &mut s,
                &mut sched,
                &AnyRow,
                cfg.safe_trhd(),
                512,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn monte_carlo_is_bit_identical_across_job_counts() {
        // A real rig trial per seed: the supervised pool must return the
        // exact vector the inline (jobs = 1) path produces, at any width.
        let trial = |seed: u64| {
            let cfg = MirzaConfig::trhd_1000();
            let mut m = Mirza::new(cfg, &geom(), seed);
            let mapping = *m.mapping().unwrap();
            let mut s = PatternStrategy::double_sided(&mapping, 5_000);
            let mut sched = Burst;
            run_attack(
                &mut m,
                &geom(),
                &timing(),
                0,
                &mut s,
                &mut sched,
                &AnyRow,
                cfg.safe_trhd(),
                128,
            )
        };
        let seeds: Vec<u64> = (0..6).collect();
        let serial = monte_carlo(&seeds, 1, trial);
        for jobs in [2, 8] {
            assert_eq!(serial, monte_carlo(&seeds, jobs, trial), "jobs={jobs}");
        }
    }

    #[test]
    fn pattern_ref_preserves_cursor_state() {
        let mut p = RowPattern::circular(vec![1, 2, 3]);
        {
            let mut r = PatternRef(&mut p);
            let fb = Feedback::initial();
            assert_eq!(r.next_row(&fb), 1);
            assert_eq!(r.next_row(&fb), 2);
        }
        assert_eq!(p.next_act(), 3);
    }
}
