//! The `Victim` axis: which rows count as compromised.
//!
//! A victim model reduces the rig's per-row [`RowCensus`] to the single
//! number that matters — the worst unmitigated activation burden any row
//! of interest ever carried — and compares it with a mitigation's NBO
//! bound (MIRZA's `safe_trhd`, a tracker's design TRH).

use mirza_dram::audit::RowCensus;

/// Judges an attack run from the rig's per-row activation census.
pub trait Victim {
    /// Stable identifier used in matrix CSV rows and telemetry events.
    fn label(&self) -> String;

    /// The maximum unmitigated ACT count observed on any row this model
    /// cares about, over the whole run.
    fn observed_max(&self, census: &RowCensus) -> u32;

    /// Whether the run compromised the victim: the observed burden met or
    /// exceeded the mitigation's guaranteed bound.
    fn compromised(&self, census: &RowCensus, bound: u32) -> bool {
        self.observed_max(census) >= bound
    }
}

/// Any row in the bank counts: the conservative model matching the
/// auditor's `max_row_acts` security verdict.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyRow;

impl Victim for AnyRow {
    fn label(&self) -> String {
        "any-row".into()
    }

    fn observed_max(&self, census: &RowCensus) -> u32 {
        census.max_seen()
    }
}

/// Only the attack's own aggressor rows count: the targeted model for
/// strategies whose decoy traffic is *supposed* to rack up counts (a decoy
/// getting mitigated is the defense working, not the attack succeeding).
#[derive(Debug, Clone)]
pub struct TargetRows {
    rows: Vec<u32>,
}

impl TargetRows {
    /// A targeted victim model over the given aggressor row addresses.
    ///
    /// # Panics
    /// Panics if `rows` is empty (use [`AnyRow`] for untargeted scoring).
    pub fn new(rows: Vec<u32>) -> Self {
        assert!(!rows.is_empty(), "targeted victim needs at least one row");
        TargetRows { rows }
    }
}

impl Victim for TargetRows {
    fn label(&self) -> String {
        format!("target-{}", self.rows.len())
    }

    fn observed_max(&self, census: &RowCensus) -> u32 {
        self.rows
            .iter()
            .map(|&r| census.row_max(0, r))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_dram::address::{MappingScheme, RowMapping};

    fn census() -> RowCensus {
        let mapping = RowMapping::new(MappingScheme::Sequential, 64, 8);
        RowCensus::new(mapping, 1, 64, 16)
    }

    #[test]
    fn any_row_tracks_the_global_max() {
        let mut c = census();
        for _ in 0..5 {
            c.on_act(0, 3);
        }
        c.on_act(0, 7);
        assert_eq!(AnyRow.observed_max(&c), 5);
        assert!(AnyRow.compromised(&c, 5));
        assert!(!AnyRow.compromised(&c, 6));
    }

    #[test]
    fn target_rows_ignores_decoy_burden() {
        let mut c = census();
        for _ in 0..9 {
            c.on_act(0, 3); // decoy
        }
        for _ in 0..4 {
            c.on_act(0, 7); // aggressor
        }
        let v = TargetRows::new(vec![7]);
        assert_eq!(v.observed_max(&c), 4);
        assert!(!v.compromised(&c, 9));
        assert!(AnyRow.compromised(&c, 9));
    }

    #[test]
    fn target_rows_survive_credit() {
        let mut c = census();
        for _ in 0..6 {
            c.on_act(0, 7);
        }
        c.credit(0, 7); // tracker mitigated the aggressor
        let v = TargetRows::new(vec![7]);
        // Running count resets, but the historical max is the security
        // signal — a row that reached the bound was compromised.
        assert_eq!(c.count(0, 7), 0);
        assert_eq!(v.observed_max(&c), 6);
    }
}
