//! Loop equivalence: the next-event skip-ahead core (`System::try_run`
//! default) must be bit-identical to the legacy eager per-quantum loop
//! (`cfg.legacy_loop`) — same report, same telemetry registry, same epoch
//! stream, same fault summary — under every mitigator, with the protocol
//! auditor, span layer, epoch sampler, and fault injector all armed at
//! once. The skip-ahead optimization only elides provably-idle boundaries,
//! so any divergence here is a scheduling bug, not noise.

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::faults::{FaultInjector, FaultPlan};
use mirza_sim::runner::{run_stalled, try_run_workload_with};
use mirza_sim::SimError;
use mirza_telemetry::{EpochSampler, SpanCollector, Telemetry};

fn mitigator(index: usize) -> MitigationConfig {
    match index {
        0 => MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: ResetPolicy::Safe,
        },
        1 => MitigationConfig::PracAbo { trhd: 1000 },
        2 => MitigationConfig::Mithril {
            entries: 64,
            refs_per_mit: 1,
        },
        3 => MitigationConfig::Trr,
        _ => MitigationConfig::None,
    }
}

/// Runs one fully-instrumented workload under the selected loop and
/// flattens every deterministic observable into one comparison document.
fn manifest(mit: usize, legacy: bool) -> String {
    let mut cfg = SimConfig::new(mitigator(mit), 20_000);
    cfg.cores = 2;
    cfg.audit = true;
    cfg.track_row_acts = true;
    cfg.legacy_loop = legacy;
    let telemetry = Telemetry::enabled()
        .with_epochs(EpochSampler::new(1_000_000))
        .with_spans(SpanCollector::new());
    let plan = FaultPlan::parse("rct-seu:start_us=1,period_us=2").expect("canned plan");
    let injector = FaultInjector::new(plan, telemetry.clone());
    let report = try_run_workload_with(&cfg, "lbm", telemetry.clone(), Some(&injector))
        .expect("instrumented run completes");
    let mut doc = report.to_json().to_string_pretty();
    doc.push('\n');
    doc.push_str(
        &telemetry
            .to_json()
            .expect("telemetry enabled")
            .to_string_pretty(),
    );
    doc.push('\n');
    doc.push_str(&telemetry.epochs_jsonl().expect("sampler attached"));
    doc.push_str(&injector.summary_json().to_string_pretty());
    doc
}

#[test]
fn event_core_matches_legacy_loop_bit_for_bit() {
    for mit in 0..5 {
        let event = manifest(mit, false);
        let legacy = manifest(mit, true);
        assert!(
            event.contains("\"faults\"") || !event.is_empty(),
            "comparison document must not be empty"
        );
        assert_eq!(
            event, legacy,
            "mitigator {mit}: event core diverges from the legacy loop"
        );
    }
}

/// Satellite regression: the forward-progress watchdog still aborts a
/// stalled run with exit code 6 under both loops, even though the event
/// core rebases the idle budget from visited-boundary counts onto
/// simulated-time progress.
#[test]
fn watchdog_still_aborts_stalls_under_both_loops() {
    for legacy in [false, true] {
        let mut cfg = SimConfig::new(MitigationConfig::None, 5_000);
        cfg.cores = 1;
        cfg.watchdog_idle_quanta = 10_000;
        cfg.legacy_loop = legacy;
        let err = run_stalled(&cfg, "lbm", Telemetry::disabled())
            .expect_err("zero-width quantum must stall");
        match &err {
            SimError::Watchdog {
                reason,
                instructions,
                ..
            } => {
                assert!(
                    reason.contains("no forward progress"),
                    "legacy_loop={legacy}: unexpected reason {reason:?}"
                );
                assert_eq!(*instructions, 0, "legacy_loop={legacy}");
            }
            other => panic!("legacy_loop={legacy}: expected watchdog, got {other}"),
        }
        assert_eq!(err.exit_code(), 6);
    }
}
