//! End-to-end telemetry integration: a full `System::run` with a recording
//! handle attached must produce metrics consistent with the controller's
//! own counters, and sinks must capture the command stream.

use mirza_frontend::trace::{TraceOp, VecStream};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::system::{CoreSetup, System};
use mirza_telemetry::{EventSink, Json, SharedBuf, Telemetry, TraceSink};

/// Loads-only scattered stream: no stores means no LLC writebacks, so every
/// DRAM access the controllers classify is a read with a recorded latency.
fn loads(n: usize) -> Box<VecStream> {
    Box::new(VecStream::once(
        (0..n)
            .map(|i| TraceOp {
                nonmem: 9,
                vaddr: (i as u64) * 64 * 97,
                is_store: false,
            })
            .collect(),
    ))
}

fn run_with(cfg: SimConfig, telemetry: Telemetry) -> mirza_sim::report::SimReport {
    let instr = cfg.instructions_per_core;
    let setups = (0..2)
        .map(|_| CoreSetup::benign(loads(2_000), instr))
        .collect();
    let mut sys = System::new(cfg, "telemetry-it", setups);
    sys.set_telemetry(telemetry);
    sys.run()
}

#[test]
fn read_latency_histogram_matches_classified_accesses() {
    let cfg = SimConfig::new(MitigationConfig::None, 20_000);
    let telemetry = Telemetry::enabled();
    let r = run_with(cfg, telemetry.clone());
    let classified = r.mc.row_hits + r.mc.row_misses + r.mc.row_conflicts;
    assert!(classified > 0, "workload must reach DRAM");
    assert_eq!(r.mc.writes_done, 0, "loads-only stream saw a write");
    assert_eq!(
        telemetry.histogram_count("mc.read_latency_ns"),
        classified,
        "every classified access is a read with a recorded latency"
    );
    // Queue occupancy is sampled once per enqueued request.
    assert_eq!(
        telemetry.histogram_count("mc.queue_occupancy"),
        r.mc.reads_done + r.mc.writes_done
    );
}

#[test]
fn mirza_run_records_queue_metrics_and_manifest_json() {
    let cfg = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: mirza_core::config::MirzaConfig::trhd_1000(),
            policy: mirza_core::rct::ResetPolicy::Safe,
        },
        20_000,
    );
    let telemetry = Telemetry::enabled();
    let r = run_with(cfg.clone(), telemetry.clone());
    assert!(r.device.acts > 0);
    let doc = telemetry.to_json().expect("enabled handle serializes");
    let hists = doc.get("histograms").expect("histogram section");
    for required in [
        "mc.read_latency_ns",
        "mc.queue_occupancy",
        "dram.acts_per_subarray",
    ] {
        let count = hists
            .get(required)
            .unwrap_or_else(|| panic!("missing histogram {required}"))
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(count > 0, "{required} must have samples");
    }
    // The manifest text round-trips through the hand-rolled parser.
    let text = doc.to_string_pretty();
    assert_eq!(Json::parse(&text).unwrap(), doc);
    // Config serialization carries the fields a manifest needs.
    let cj = cfg.to_json();
    assert_eq!(cj.get("cores").unwrap().as_u64(), Some(8));
    assert!(cj
        .get("mitigation")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("mirza"));
}

#[test]
fn sinks_capture_command_trace_and_events() {
    let trace_buf = SharedBuf::new();
    let event_buf = SharedBuf::new();
    let telemetry = Telemetry::enabled()
        .with_trace(TraceSink::new(trace_buf.writer()))
        .with_events(EventSink::new(event_buf.writer()));
    let cfg = SimConfig::new(MitigationConfig::None, 5_000);
    let r = run_with(cfg, telemetry.clone());
    telemetry.flush();
    let trace = trace_buf.contents();
    assert!(trace.lines().count() > 0, "command trace must not be empty");
    assert!(
        trace.lines().any(|l| l.contains(" ACT ")),
        "trace must contain activates"
    );
    assert!(
        trace.lines().any(|l| l.contains(" RD ")),
        "trace must contain reads"
    );
    // Every line parses as `<t_ps> <CMD> sc<n> ...`.
    for line in trace.lines().take(50) {
        let mut parts = line.split_whitespace();
        parts.next().unwrap().parse::<u64>().expect("timestamp");
        assert!(!parts.next().unwrap().is_empty(), "command name");
        assert!(parts.next().unwrap().starts_with("sc"), "sub-channel tag");
    }
    // The trace and the device counters agree on REF count exactly.
    let ref_lines = trace.lines().filter(|l| l.contains(" REF ")).count() as u64;
    assert_eq!(ref_lines, r.device.refs);
    // Events (if any fired) are one JSON object per line.
    for line in event_buf.contents().lines() {
        let parsed = Json::parse(line).expect("JSONL event");
        assert!(parsed.get("t_ps").is_some());
        assert!(parsed.get("event").is_some());
    }
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let cfg = SimConfig::new(MitigationConfig::None, 10_000);
    let enabled = Telemetry::enabled();
    let with = run_with(cfg.clone(), enabled);
    let without = run_with(cfg, Telemetry::disabled());
    assert_eq!(with.device.acts, without.device.acts);
    assert_eq!(with.mc.row_hits, without.mc.row_hits);
    assert_eq!(with.instructions, without.instructions);
    assert_eq!(with.elapsed, without.elapsed);
}
