//! Span-layer integration: stall attribution conserves exactly under every
//! mitigator on randomized workloads, attaching the collector never
//! perturbs the simulated outcome, and the emitted Chrome trace is valid
//! trace-event JSON (monotone timestamps, balanced B/E pairs per track).

use proptest::prelude::*;

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_frontend::trace::{TraceOp, VecStream};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::report::SimReport;
use mirza_sim::system::{CoreSetup, System};
use mirza_telemetry::{ChromeTraceSink, Json, SharedBuf, SpanCollector, StallBucket, Telemetry};

/// The four Table-4 mitigators plus the unprotected baseline, indexable
/// so proptest can draw one.
fn mitigator(index: usize) -> MitigationConfig {
    match index {
        0 => MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: ResetPolicy::Safe,
        },
        1 => MitigationConfig::PracAbo { trhd: 1000 },
        2 => MitigationConfig::Mithril {
            entries: 64,
            refs_per_mit: 1,
        },
        3 => MitigationConfig::Trr,
        _ => MitigationConfig::None,
    }
}

fn stream(ops: usize, stride: u64, store_mod: usize) -> Box<VecStream> {
    Box::new(VecStream::once(
        (0..ops)
            .map(|i| TraceOp {
                nonmem: 9,
                vaddr: (i as u64) * 64 * stride,
                is_store: store_mod > 0 && i % store_mod == 0,
            })
            .collect(),
    ))
}

fn run_spanned(
    mitigation: MitigationConfig,
    ops: usize,
    stride: u64,
    store_mod: usize,
    instructions: u64,
) -> (SimReport, Telemetry) {
    let cfg = SimConfig::new(mitigation, instructions);
    let telemetry = Telemetry::enabled().with_spans(SpanCollector::new());
    let setups = (0..2)
        .map(|_| CoreSetup::benign(stream(ops, stride, store_mod), instructions))
        .collect();
    let mut sys = System::new(cfg, "attribution-it", setups);
    sys.set_telemetry(telemetry.clone());
    (sys.run(), telemetry)
}

proptest! {
    /// Conservation is exact in integer picoseconds for every mitigator:
    /// the six buckets sum to the total stall, globally and per bank.
    #[test]
    fn buckets_sum_exactly_to_total_stall(
        mit in 0usize..5,
        ops in 64usize..512,
        stride in 1u64..128,
        store_mod in 0usize..7,
        instructions in 2_000u64..20_000,
    ) {
        let (report, telemetry) =
            run_spanned(mitigator(mit), ops, stride, store_mod, instructions);
        let summary = report.attribution.expect("spans were attached");
        prop_assert!(summary.conserved, "collector flagged a leak");
        let global: u64 = summary.buckets_ps.iter().sum();
        prop_assert_eq!(global, summary.total_stall_ps);
        let banks = telemetry.spans_bank_attributions();
        prop_assert!(!banks.is_empty() || summary.requests == 0);
        let mut bank_requests = 0;
        let mut bank_stall = [0u64; StallBucket::ALL.len()];
        for ((_, _), b) in &banks {
            prop_assert!(b.conserved(), "per-bank leak");
            bank_requests += b.requests;
            for (acc, ps) in bank_stall.iter_mut().zip(b.buckets_ps) {
                *acc += ps;
            }
        }
        prop_assert_eq!(bank_requests, summary.requests);
        prop_assert_eq!(bank_stall, summary.buckets_ps);
    }
}

/// Attaching the span collector must not change what the simulation
/// computes: the report minus its attribution section is identical to a
/// plain run's.
#[test]
fn span_collection_is_pure_observability() {
    for mit in 0..5 {
        let (mut spanned, _) = run_spanned(mitigator(mit), 400, 97, 5, 20_000);
        assert!(spanned.attribution.is_some());
        let cfg = SimConfig::new(mitigator(mit), 20_000);
        let setups = (0..2)
            .map(|_| CoreSetup::benign(stream(400, 97, 5), 20_000))
            .collect();
        let mut sys = System::new(cfg, "attribution-it", setups);
        sys.set_telemetry(Telemetry::disabled());
        let plain = sys.run();
        assert!(
            plain.attribution.is_none(),
            "plain run must omit the section"
        );
        spanned.attribution = None;
        assert_eq!(
            spanned.to_json().to_string_pretty(),
            plain.to_json().to_string_pretty(),
            "mitigator {mit}: spans must not perturb the run"
        );
    }
}

/// The Chrome trace written during a real simulated run parses with the
/// in-tree JSON parser and satisfies the trace-event contract: per track
/// (tid), timestamps are monotone non-decreasing and every `B` is closed
/// by a matching `E` with the same name.
#[test]
fn emitted_chrome_trace_is_well_formed() {
    let buf = SharedBuf::new();
    let cfg = SimConfig::new(MitigationConfig::PracAbo { trhd: 1000 }, 20_000);
    let telemetry = Telemetry::enabled()
        .with_spans(SpanCollector::new().with_chrome(ChromeTraceSink::new(buf.writer())));
    let setups = (0..2)
        .map(|_| CoreSetup::benign(stream(400, 97, 5), 20_000))
        .collect();
    let mut sys = System::new(cfg, "attribution-it", setups);
    sys.set_telemetry(telemetry.clone());
    let report = sys.run();
    assert!(report.attribution.is_some());

    let doc = Json::parse(&buf.contents()).expect("trace must be valid JSON");
    let events = doc.as_arr().expect("array format");
    assert!(events.len() > 10, "a real run produces real spans");

    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut open: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    let mut tracks = 0usize;
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .expect("ph on every event");
        if ph == "M" {
            tracks += 1;
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_string();
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "tid {tid}: ts went backwards ({ts} < {prev})");
        *prev = ts;
        let stack = open.entry(tid).or_default();
        match ph {
            "B" => stack.push(name),
            "E" => {
                let b = stack.pop().expect("E without matching B");
                assert_eq!(b, name, "B/E name mismatch on tid {tid}");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(tracks >= 2, "expected bank tracks plus a blocking track");
    for (tid, stack) in open {
        assert!(stack.is_empty(), "tid {tid}: unclosed B events {stack:?}");
    }
}
