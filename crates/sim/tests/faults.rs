//! Fault-injection integration: the injector is deterministic (same seed
//! and plan ⇒ bit-identical fault summaries), pure when disabled (a
//! faultless run is bit-identical to one with no injector at all), and
//! the watchdog turns a stalled run into a structured [`SimError`]
//! instead of a hang.

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::faults::{FaultInjector, FaultPlan};
use mirza_sim::runner::{run_stalled, try_run_workload_with};
use mirza_sim::SimError;
use mirza_telemetry::{Json, Telemetry};

fn mirza_cfg(instr: u64) -> SimConfig {
    let mut cfg = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: ResetPolicy::Safe,
        },
        instr,
    );
    cfg.cores = 2;
    cfg
}

/// One faulted run: returns (fault summary JSON, report JSON, telemetry).
fn faulted_run(plan: &str, instr: u64) -> (String, String, Telemetry) {
    let cfg = mirza_cfg(instr);
    let telemetry = Telemetry::enabled();
    let plan = FaultPlan::parse(plan).expect("valid plan");
    let inj = FaultInjector::new(plan, telemetry.clone());
    let report = try_run_workload_with(&cfg, "lbm", telemetry.clone(), Some(&inj))
        .expect("faulted run still completes");
    (
        inj.summary_json().to_string_pretty(),
        report.to_json().to_string_pretty(),
        telemetry,
    )
}

#[test]
fn same_seed_and_plan_give_bit_identical_fault_summaries() {
    let plan = "rct-seu:period_us=1,start_us=1";
    let (sa, ra, _) = faulted_run(plan, 20_000);
    let (sb, rb, _) = faulted_run(plan, 20_000);
    assert_eq!(sa, sb, "fault summary must be reproducible byte-for-byte");
    assert_eq!(ra, rb, "faulted report must be reproducible");
}

#[test]
fn rct_seu_plan_applies_faults_and_feeds_the_census() {
    let (summary, _, telemetry) = faulted_run("rct-seu:period_us=1,start_us=1", 20_000);
    let doc = Json::parse(&summary).unwrap();
    assert!(
        doc.get("attempted").unwrap().as_u64().unwrap() >= 1,
        "plan scheduled nothing: {summary}"
    );
    assert!(
        doc.get("injected").unwrap().as_u64().unwrap() >= 1,
        "no fault applied to a MIRZA run: {summary}"
    );
    assert!(
        telemetry.counter("faults.injected") >= 1,
        "telemetry counter must mirror the summary"
    );
    // The injector arms no census by itself; System does when asked.
    let mut cfg = mirza_cfg(20_000);
    cfg.track_row_acts = true;
    cfg.audit = true;
    let tel = Telemetry::enabled();
    let plan = FaultPlan::parse("rct-seu:period_us=1,start_us=1").unwrap();
    let inj = FaultInjector::new(plan, tel.clone());
    try_run_workload_with(&cfg, "lbm", tel.clone(), Some(&inj)).unwrap();
    assert!(
        tel.counter("audit.max_row_acts") > 0,
        "census must observe per-row activity"
    );
}

#[test]
fn disabled_faults_are_bit_identical_to_no_injector_at_all() {
    let cfg = mirza_cfg(20_000);
    let plain = try_run_workload_with(&cfg, "lbm", Telemetry::disabled(), None)
        .unwrap()
        .to_json()
        .to_string_pretty();
    // Auditing + census on, but no injector: still the same report.
    let mut audited = cfg.clone();
    audited.audit = true;
    audited.track_row_acts = true;
    let shadowed = try_run_workload_with(&audited, "lbm", Telemetry::enabled(), None)
        .unwrap()
        .to_json()
        .to_string_pretty();
    assert_eq!(
        plain, shadowed,
        "census and auditor must be pure observability"
    );
}

#[test]
fn watchdog_aborts_a_stalled_run_with_a_structured_error() {
    let mut cfg = SimConfig::new(MitigationConfig::None, 5_000);
    cfg.cores = 1;
    cfg.watchdog_idle_quanta = 10_000;
    let err = run_stalled(&cfg, "lbm", Telemetry::disabled())
        .expect_err("a zero-width quantum can never make progress");
    match &err {
        SimError::Watchdog { instructions, .. } => assert_eq!(*instructions, 0),
        other => panic!("expected Watchdog, got {other}"),
    }
    assert_eq!(err.exit_code(), 6);
    assert!(err.to_string().contains("no forward progress"));
}

#[test]
fn unknown_workload_is_an_error_with_exit_code_2() {
    let cfg = SimConfig::new(MitigationConfig::None, 1_000);
    let err = try_run_workload_with(&cfg, "doom", Telemetry::disabled(), None).unwrap_err();
    assert!(matches!(err, SimError::UnknownWorkload { .. }), "{err}");
    assert_eq!(err.exit_code(), 2);
}

#[test]
fn plan_parsing_rejects_unknown_names_keys_and_values() {
    for (input, want) in [
        ("nonsense", "unknown fault plan"),
        ("rct-seu:flux_capacitor=1", "unknown fault-plan key"),
        ("rct-seu:period_us=banana", "expected an unsigned integer"),
        ("trace-corrupt:seed", "expected key=value"),
    ] {
        let err = FaultPlan::parse(input).expect_err(input);
        assert!(matches!(err, SimError::Config { .. }), "{input}: {err}");
        assert_eq!(err.exit_code(), 4, "{input}");
        assert!(
            err.to_string().contains(want),
            "{input}: message {err} lacks {want:?}"
        );
    }
}

#[test]
fn trace_corruption_changes_the_run_but_stays_deterministic() {
    let run = |plan: Option<&str>| {
        let cfg = mirza_cfg(20_000);
        let tel = Telemetry::disabled();
        let inj = plan.map(|p| FaultInjector::new(FaultPlan::parse(p).unwrap(), tel.clone()));
        try_run_workload_with(&cfg, "lbm", tel, inj.as_ref())
            .unwrap()
            .to_json()
            .to_string_pretty()
    };
    let clean = run(None);
    let a = run(Some("trace-corrupt:one_in=64"));
    let b = run(Some("trace-corrupt:one_in=64"));
    assert_eq!(a, b, "corruption must be seed-deterministic");
    assert_ne!(a, clean, "1-in-64 corruption must perturb the run");
}
