//! mirza-probe integration: the epoch sampler is deterministic across
//! identically-seeded runs, pure observability (attaching it cannot change
//! the `SimReport`), and a clean simulated run stays clean under the
//! independent protocol auditor.

use mirza_frontend::trace::{TraceOp, VecStream};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::report::SimReport;
use mirza_sim::system::{CoreSetup, System};
use mirza_telemetry::{EpochSampler, Telemetry};

fn loads(n: usize) -> Box<VecStream> {
    Box::new(VecStream::once(
        (0..n)
            .map(|i| TraceOp {
                nonmem: 9,
                vaddr: (i as u64) * 64 * 97,
                is_store: i % 7 == 0,
            })
            .collect(),
    ))
}

fn run_with(cfg: SimConfig, telemetry: Telemetry) -> SimReport {
    let instr = cfg.instructions_per_core;
    let setups = (0..2)
        .map(|_| CoreSetup::benign(loads(2_000), instr))
        .collect();
    let mut sys = System::new(cfg, "probe-it", setups);
    sys.set_telemetry(telemetry);
    sys.run()
}

fn epoch_run(instr: u64) -> (String, SimReport) {
    let cfg = SimConfig::new(MitigationConfig::None, instr);
    let telemetry = Telemetry::enabled().with_epochs(EpochSampler::new(1_000_000));
    let report = run_with(cfg, telemetry.clone());
    let jsonl = telemetry.epochs_jsonl().expect("sampler attached");
    (jsonl, report)
}

#[test]
fn identical_seeded_runs_emit_byte_identical_epoch_jsonl() {
    let (a, ra) = epoch_run(20_000);
    let (b, rb) = epoch_run(20_000);
    assert!(!a.is_empty(), "epoch stream must not be empty");
    assert!(a.lines().count() >= 2, "run spans multiple epochs");
    assert_eq!(a, b, "epoch JSONL must be reproducible byte-for-byte");
    assert_eq!(
        ra.to_json().to_string_pretty(),
        rb.to_json().to_string_pretty()
    );
}

#[test]
fn sampler_and_profiler_do_not_perturb_the_report() {
    let cfg = SimConfig::new(MitigationConfig::None, 20_000);
    let probed = Telemetry::enabled()
        .with_epochs(EpochSampler::new(1_000_000))
        .with_profiler();
    let with = run_with(cfg.clone(), probed);
    let without = run_with(cfg, Telemetry::disabled());
    assert_eq!(
        with.to_json().to_string_pretty(),
        without.to_json().to_string_pretty(),
        "probe must be pure observability"
    );
}

#[test]
fn epoch_stream_carries_core_and_device_series() {
    let (jsonl, report) = epoch_run(20_000);
    assert!(report.instructions > 0);
    // Per-core and aggregate instruction counters appear as epoch deltas.
    assert!(jsonl.contains("\"core00.instructions\""));
    assert!(jsonl.contains("\"sim.instructions\""));
    // MC counters registered at their call sites show up too.
    assert!(jsonl.contains("\"mc.reads\""));
    // Gauges sampled each quantum.
    assert!(jsonl.contains("\"mc.queue_depth\""));
}

#[test]
fn clean_mirza_run_has_zero_audit_violations() {
    let mut cfg = SimConfig::new(
        MitigationConfig::Mirza {
            cfg: mirza_core::config::MirzaConfig::trhd_1000(),
            policy: mirza_core::rct::ResetPolicy::Safe,
        },
        20_000,
    );
    cfg.audit = true;
    let telemetry = Telemetry::enabled();
    let report = run_with(cfg, telemetry.clone());
    assert!(report.device.acts > 0, "workload must reach DRAM");
    assert_eq!(
        telemetry.counter("audit.violations"),
        0,
        "device-legal command stream must satisfy the independent auditor"
    );
}

#[test]
fn audited_run_matches_unaudited_report() {
    let mut audited_cfg = SimConfig::new(MitigationConfig::None, 20_000);
    audited_cfg.audit = true;
    let audited = run_with(audited_cfg, Telemetry::enabled());
    let plain = run_with(
        SimConfig::new(MitigationConfig::None, 20_000),
        Telemetry::disabled(),
    );
    assert_eq!(
        audited.to_json().to_string_pretty(),
        plain.to_json().to_string_pretty(),
        "the auditor observes but never alters scheduling"
    );
}
