//! Opportunity-counter purity: arming the event-core opportunity counters
//! (`Telemetry::with_opportunity`) must not change anything the simulation
//! computes — they are read-only probes of the scheduler hot path. Also
//! checks the counters actually record plausible values when armed.

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_dram::time::Ps;
use mirza_frontend::trace::{TraceOp, VecStream};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::system::{CoreSetup, System};
use mirza_telemetry::{names, Telemetry};

fn mitigator(index: usize) -> MitigationConfig {
    match index {
        0 => MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: ResetPolicy::Safe,
        },
        1 => MitigationConfig::PracAbo { trhd: 1000 },
        2 => MitigationConfig::Mithril {
            entries: 64,
            refs_per_mit: 1,
        },
        3 => MitigationConfig::Trr,
        _ => MitigationConfig::None,
    }
}

fn stream(ops: usize, stride: u64, store_mod: usize) -> Box<VecStream> {
    Box::new(VecStream::once(
        (0..ops)
            .map(|i| TraceOp {
                nonmem: 9,
                vaddr: (i as u64) * 64 * stride,
                is_store: store_mod > 0 && i % store_mod == 0,
            })
            .collect(),
    ))
}

fn run_with(mitigation: MitigationConfig, telemetry: Telemetry) -> mirza_sim::report::SimReport {
    run_with_cfg(SimConfig::new(mitigation, 20_000), telemetry)
}

fn run_with_cfg(cfg: SimConfig, telemetry: Telemetry) -> mirza_sim::report::SimReport {
    let setups = (0..2)
        .map(|_| CoreSetup::benign(stream(400, 97, 5), 20_000))
        .collect();
    let mut sys = System::new(cfg, "opportunity-it", setups);
    sys.set_telemetry(telemetry);
    sys.run()
}

/// Counters on vs. counters off: the full report JSON must be
/// bit-identical under every mitigator.
#[test]
fn opportunity_counters_are_pure_observability() {
    for mit in 0..5 {
        let counted = run_with(mitigator(mit), Telemetry::enabled().with_opportunity());
        let plain = run_with(mitigator(mit), Telemetry::disabled());
        assert_eq!(
            counted.to_json().to_string_pretty(),
            plain.to_json().to_string_pretty(),
            "mitigator {mit}: opportunity counters must not perturb the run"
        );
    }
}

/// When armed, the counters record a self-consistent picture: passes are
/// counted, idle passes never exceed total passes, and the per-pass
/// command histogram saw every pass.
#[test]
fn opportunity_counters_record_plausible_values() {
    let telemetry = Telemetry::enabled().with_opportunity();
    let report = run_with(mitigator(0), telemetry.clone());
    assert!(report.instructions > 0);
    let (passes, idle, cmds_per_pass) = telemetry
        .with_recorder(|r| {
            (
                r.registry.counter(names::MC_OPP_SCHED_PASSES),
                r.registry.counter(names::MC_OPP_IDLE_PASSES),
                r.registry
                    .histogram(names::MC_OPP_CMDS_PER_PASS)
                    .map_or(0, mirza_telemetry::Histogram::count),
            )
        })
        .expect("recorder is enabled");
    assert!(passes > 0, "scheduler passes were counted");
    assert!(idle <= passes, "idle passes are a subset of passes");
    assert_eq!(
        cmds_per_pass, passes,
        "every pass lands one observation in the per-pass histogram"
    );
}

/// The event loop records the simulated time it actually jumps. A
/// same-bank row-conflict stream is paced by tRC (~46 ns): with a 10 ns
/// quantum the core sits MSHR-blocked across several boundaries between
/// consecutive ACTs, so the skip histogram must fill, and every recorded
/// skip spans more than one quantum.
#[test]
fn event_loop_records_taken_skips() {
    let telemetry = Telemetry::enabled().with_opportunity();
    let mut cfg = SimConfig::new(mitigator(4), 10_000);
    cfg.quantum = Ps::from_ns(10);
    let ops: Vec<TraceOp> = (0..1500u64)
        .map(|i| TraceOp {
            nonmem: 3,
            vaddr: i * 64 * 4 * 64 * 17, // jump rows, same few banks
            is_store: false,
        })
        .collect();
    let setups = vec![CoreSetup::benign(Box::new(VecStream::once(ops)), 10_000)];
    let mut sys = System::new(cfg, "opportunity-skips", setups);
    sys.set_telemetry(telemetry.clone());
    let report = sys.run();
    assert!(report.instructions > 0);
    let skips = telemetry
        .with_recorder(|r| {
            r.registry
                .histogram(names::SIM_OPP_SKIP_TAKEN_NS)
                .map(mirza_telemetry::Histogram::summary)
        })
        .expect("recorder is enabled")
        .expect("a tRC-paced stream on a 10 ns grid must skip boundaries");
    assert!(skips.count > 0, "skips were recorded");
    assert!(
        skips.max >= 20,
        "skips jump more than one quantum, max {} ns",
        skips.max
    );
}
