//! Opportunity-counter purity: arming the skip-ahead opportunity counters
//! (`Telemetry::with_opportunity`) must not change anything the simulation
//! computes — they are read-only probes of the scheduler hot path. Also
//! checks the counters actually record plausible values when armed.

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_frontend::trace::{TraceOp, VecStream};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::system::{CoreSetup, System};
use mirza_telemetry::{names, Telemetry};

fn mitigator(index: usize) -> MitigationConfig {
    match index {
        0 => MitigationConfig::Mirza {
            cfg: MirzaConfig::trhd_1000(),
            policy: ResetPolicy::Safe,
        },
        1 => MitigationConfig::PracAbo { trhd: 1000 },
        2 => MitigationConfig::Mithril {
            entries: 64,
            refs_per_mit: 1,
        },
        3 => MitigationConfig::Trr,
        _ => MitigationConfig::None,
    }
}

fn stream(ops: usize, stride: u64, store_mod: usize) -> Box<VecStream> {
    Box::new(VecStream::once(
        (0..ops)
            .map(|i| TraceOp {
                nonmem: 9,
                vaddr: (i as u64) * 64 * stride,
                is_store: store_mod > 0 && i % store_mod == 0,
            })
            .collect(),
    ))
}

fn run_with(mitigation: MitigationConfig, telemetry: Telemetry) -> mirza_sim::report::SimReport {
    let cfg = SimConfig::new(mitigation, 20_000);
    let setups = (0..2)
        .map(|_| CoreSetup::benign(stream(400, 97, 5), 20_000))
        .collect();
    let mut sys = System::new(cfg, "opportunity-it", setups);
    sys.set_telemetry(telemetry);
    sys.run()
}

/// Counters on vs. counters off: the full report JSON must be
/// bit-identical under every mitigator.
#[test]
fn opportunity_counters_are_pure_observability() {
    for mit in 0..5 {
        let counted = run_with(mitigator(mit), Telemetry::enabled().with_opportunity());
        let plain = run_with(mitigator(mit), Telemetry::disabled());
        assert_eq!(
            counted.to_json().to_string_pretty(),
            plain.to_json().to_string_pretty(),
            "mitigator {mit}: opportunity counters must not perturb the run"
        );
    }
}

/// When armed, the counters record a self-consistent picture: passes are
/// counted, idle passes never exceed total passes, and every pass probed
/// the device at least once.
#[test]
fn opportunity_counters_record_plausible_values() {
    let telemetry = Telemetry::enabled().with_opportunity();
    let report = run_with(mitigator(0), telemetry.clone());
    assert!(report.instructions > 0);
    let (passes, idle, probes) = telemetry
        .with_recorder(|r| {
            (
                r.registry.counter(names::MC_OPP_SCHED_PASSES),
                r.registry.counter(names::MC_OPP_IDLE_PASSES),
                r.registry.counter(names::DRAM_OPP_EARLIEST_PROBES),
            )
        })
        .expect("recorder is enabled");
    assert!(passes > 0, "scheduler passes were counted");
    assert!(idle <= passes, "idle passes are a subset of passes");
    assert!(
        probes >= passes,
        "each pass probes the device at least once"
    );
}
