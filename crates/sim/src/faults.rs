//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what* to perturb (SEUs in RCT counters and
//! MIRZA-Q tardiness fields, dropped ALERT raises, skipped refresh-pointer
//! steps, lost/duplicated queue entries, corrupted trace records) and
//! *when* (a periodic schedule per fault kind, in simulated time). The
//! [`FaultInjector`] executes the plan against the live memory controllers
//! once per simulation quantum, emitting a structured `fault_injected`
//! telemetry event per attempt and keeping a summary for the run manifest.
//!
//! Determinism: all randomness comes from `SmallRng`s seeded from the
//! plan's seed (trace corruption uses a per-core stream so its draws never
//! interleave with the scheduler's), and the schedule is driven by
//! simulated time only. Same seed + same plan ⇒ bit-identical fault
//! summaries; no plan ⇒ the injector is never constructed and the run is
//! bit-identical to an unfaulted one.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use mirza_dram::mitigation::DeviceFault;
use mirza_dram::time::Ps;
use mirza_frontend::error::SimError;
use mirza_frontend::trace::{AccessStream, TraceOp};
use mirza_memctrl::controller::MemController;
use mirza_telemetry::{names, Json, Telemetry};

/// The fault kinds the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// SEU in an RCT counter (random bank/region/bit).
    RctSeu,
    /// SEU in a MIRZA-Q tardiness field (random bank/slot/bit).
    QueueSeu,
    /// Lose one MIRZA-Q entry (random bank/slot).
    QueueLoss,
    /// Duplicate one MIRZA-Q entry (random bank/slot).
    QueueDup,
    /// Suppress ALERT assertion for `mask` of simulated time (a dropped
    /// or delayed raise).
    AboDrop {
        /// How long the ALERT pin reads deasserted.
        mask: Ps,
    },
    /// Jump the refresh pointer forward, skipping rows for one walk.
    RefreshSkip {
        /// REF slots skipped per injection.
        steps: u32,
    },
    /// Corrupt roughly 1-in-`one_in` trace records at the frontend
    /// boundary (not scheduled; applies continuously).
    TraceCorrupt {
        /// Expected records per corruption.
        one_in: u32,
    },
}

impl FaultKind {
    /// Stable identifier used in telemetry events and manifest summaries.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RctSeu => "rct_seu",
            FaultKind::QueueSeu => "queue_seu",
            FaultKind::QueueLoss => "queue_loss",
            FaultKind::QueueDup => "queue_dup",
            FaultKind::AboDrop { .. } => "abo_drop",
            FaultKind::RefreshSkip { .. } => "refresh_skip",
            FaultKind::TraceCorrupt { .. } => "trace_corrupt",
        }
    }
}

/// One scheduled fault process: `kind` fires at `start`, then every
/// `period`, at most `max` times. `TraceCorrupt` entries ignore the
/// schedule (they act per trace record instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// What to inject.
    pub kind: FaultKind,
    /// First injection instant (simulated time).
    pub start: Ps,
    /// Injection period after `start`.
    pub period: Ps,
    /// Maximum number of injections.
    pub max: u64,
}

/// Names of the canned plans, for diagnostics and CLI help.
pub const CANNED_PLANS: [&str; 5] = [
    "rct-seu",
    "abo-drop",
    "queue-loss",
    "refresh-skip",
    "trace-corrupt",
];

/// A named, seeded fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Plan name (appears in manifests).
    pub name: String,
    /// Seed for all fault randomness (target/bit selection, corruption).
    pub seed: u64,
    /// The scheduled fault processes.
    pub entries: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The canned plan `name`, or `None` for an unknown name.
    pub fn canned(name: &str) -> Option<FaultPlan> {
        let every = |kind, start_us: u64, period_us: u64| PlannedFault {
            kind,
            start: Ps::from_us(start_us),
            period: Ps::from_us(period_us),
            max: u64::MAX,
        };
        let entries = match name {
            // SEUs in the tracker's SRAM: RCT counters and MIRZA-Q
            // tardiness fields.
            "rct-seu" => vec![
                every(FaultKind::RctSeu, 5, 25),
                every(FaultKind::QueueSeu, 7, 40),
            ],
            "abo-drop" => vec![every(
                FaultKind::AboDrop {
                    mask: Ps::from_us(2),
                },
                10,
                60,
            )],
            "queue-loss" => vec![
                every(FaultKind::QueueLoss, 8, 40),
                every(FaultKind::QueueDup, 12, 90),
            ],
            "refresh-skip" => vec![every(FaultKind::RefreshSkip { steps: 4 }, 9, 70)],
            "trace-corrupt" => vec![PlannedFault {
                kind: FaultKind::TraceCorrupt { one_in: 4096 },
                start: Ps::ZERO,
                period: Ps::ZERO,
                max: u64::MAX,
            }],
            _ => return None,
        };
        Some(FaultPlan {
            name: name.to_string(),
            seed: 0xFA017,
            entries,
        })
    }

    /// Parses a CLI plan spec: `NAME` or `NAME:key=value,key=value,...`.
    ///
    /// Keys: `seed`, `period_us`, `start_us`, `max` (all scheduled
    /// entries), `mask_us` (abo-drop), `steps` (refresh-skip), `one_in`
    /// (trace-corrupt).
    ///
    /// # Errors
    /// [`SimError::Config`] naming the unknown plan or key.
    pub fn parse(spec: &str) -> Result<FaultPlan, SimError> {
        let (name, overrides) = match spec.split_once(':') {
            Some((n, o)) => (n, o),
            None => (spec, ""),
        };
        let mut plan = FaultPlan::canned(name).ok_or_else(|| SimError::Config {
            key: name.to_string(),
            reason: format!("unknown fault plan (known: {})", CANNED_PLANS.join(", ")),
        })?;
        for kv in overrides.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = kv.split_once('=').ok_or_else(|| SimError::Config {
                key: kv.to_string(),
                reason: "expected key=value".into(),
            })?;
            let num: u64 = value.parse().map_err(|_| SimError::Config {
                key: key.to_string(),
                reason: format!("expected an unsigned integer, got {value:?}"),
            })?;
            match key {
                "seed" => plan.seed = num,
                "period_us" => {
                    for e in plan.entries.iter_mut().filter(|e| e.period > Ps::ZERO) {
                        e.period = Ps::from_us(num.max(1));
                    }
                }
                "start_us" => {
                    for e in plan.entries.iter_mut().filter(|e| e.period > Ps::ZERO) {
                        e.start = Ps::from_us(num);
                    }
                }
                "max" => {
                    for e in &mut plan.entries {
                        e.max = num;
                    }
                }
                "mask_us" => {
                    for e in &mut plan.entries {
                        if let FaultKind::AboDrop { mask } = &mut e.kind {
                            *mask = Ps::from_us(num);
                        }
                    }
                }
                "steps" => {
                    for e in &mut plan.entries {
                        if let FaultKind::RefreshSkip { steps } = &mut e.kind {
                            *steps = num as u32;
                        }
                    }
                }
                "one_in" => {
                    for e in &mut plan.entries {
                        if let FaultKind::TraceCorrupt { one_in } = &mut e.kind {
                            *one_in = (num as u32).max(1);
                        }
                    }
                }
                other => {
                    return Err(SimError::Config {
                        key: other.to_string(),
                        reason: "unknown fault-plan key (known: seed, period_us, \
                                 start_us, max, mask_us, steps, one_in)"
                            .into(),
                    })
                }
            }
        }
        Ok(plan)
    }

    /// The corruption rate of the plan's `TraceCorrupt` entry, if any.
    pub fn trace_one_in(&self) -> Option<u32> {
        self.entries.iter().find_map(|e| match e.kind {
            FaultKind::TraceCorrupt { one_in } => Some(one_in),
            _ => None,
        })
    }
}

/// Per-scheduled-entry runtime state.
#[derive(Debug, Clone, Copy)]
struct EntryState {
    next_due: Ps,
    fired: u64,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    rng: SmallRng,
    states: Vec<EntryState>,
    /// Applied injections per fault-kind label (BTreeMap: deterministic
    /// manifest ordering).
    applied: BTreeMap<&'static str, u64>,
    attempted: u64,
    injected: u64,
    telemetry: Telemetry,
}

impl Inner {
    fn record(&mut self, label: &'static str, t_ps: u64, target: u64, applied: bool) {
        self.attempted += 1;
        self.telemetry.inc(names::FAULTS_ATTEMPTED, 1);
        if applied {
            self.injected += 1;
            *self.applied.entry(label).or_insert(0) += 1;
            self.telemetry.inc(names::FAULTS_INJECTED, 1);
        }
        self.telemetry.event(
            t_ps,
            names::EV_FAULT_INJECTED,
            &[
                ("kind", Json::Str(label.into())),
                ("target", Json::U64(target)),
                ("applied", Json::Bool(applied)),
            ],
        );
    }
}

/// Executes a [`FaultPlan`] against the live system. Cheap to clone
/// (shared handle); the `System` ticks it once per quantum.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    inner: Rc<RefCell<Inner>>,
}

impl FaultInjector {
    /// An injector executing `plan`, reporting through `telemetry`.
    pub fn new(plan: FaultPlan, telemetry: Telemetry) -> Self {
        let states = plan
            .entries
            .iter()
            .map(|e| EntryState {
                next_due: e.start,
                fired: 0,
            })
            .collect();
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultInjector {
            inner: Rc::new(RefCell::new(Inner {
                plan,
                rng,
                states,
                applied: BTreeMap::new(),
                attempted: 0,
                injected: 0,
                telemetry,
            })),
        }
    }

    /// Fires every scheduled fault due at or before `t_end` against `mcs`
    /// (one controller per sub-channel). Called once per quantum.
    pub fn tick(&self, t_end: Ps, mcs: &mut [MemController]) {
        if mcs.is_empty() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        for i in 0..inner.plan.entries.len() {
            let entry = inner.plan.entries[i];
            if entry.period == Ps::ZERO {
                continue; // trace corruption acts per record, not per tick
            }
            loop {
                let state = inner.states[i];
                if state.next_due > t_end || state.fired >= entry.max {
                    break;
                }
                let at = state.next_due;
                inner.states[i] = EntryState {
                    next_due: at + entry.period,
                    fired: state.fired + 1,
                };
                // Draw all selectors unconditionally so the RNG stream (and
                // with it every later draw) is independent of what applied.
                let target = inner.rng.next_u64() % mcs.len() as u64;
                let (a, b, c) = (
                    inner.rng.next_u64(),
                    inner.rng.next_u64(),
                    inner.rng.next_u64() as u32,
                );
                let mc = &mut mcs[target as usize];
                let applied = match entry.kind {
                    FaultKind::RctSeu => mc.inject_device_fault(
                        &DeviceFault::RctCounterBitFlip {
                            bank: a,
                            region: b,
                            bit: c,
                        },
                        at,
                    ),
                    FaultKind::QueueSeu => mc.inject_device_fault(
                        &DeviceFault::QueueTardinessBitFlip {
                            bank: a,
                            slot: b,
                            bit: c,
                        },
                        at,
                    ),
                    FaultKind::QueueLoss => mc
                        .inject_device_fault(&DeviceFault::QueueDropEntry { bank: a, slot: b }, at),
                    FaultKind::QueueDup => mc.inject_device_fault(
                        &DeviceFault::QueueDuplicateEntry { bank: a, slot: b },
                        at,
                    ),
                    FaultKind::AboDrop { mask } => {
                        mc.mask_alert_until(at + mask);
                        true
                    }
                    FaultKind::RefreshSkip { steps } => {
                        mc.skip_refresh_steps(steps);
                        true
                    }
                    FaultKind::TraceCorrupt { .. } => unreachable!("not scheduled"),
                };
                inner.record(entry.kind.label(), at.as_ps(), target, applied);
            }
        }
    }

    /// Earliest instant any scheduled entry will next fire, or `None`
    /// when nothing is pending (unscheduled plans, exhausted `max`
    /// budgets). The event loop caps its skip-ahead at this instant's
    /// quantum so injections land on exactly the same tick — with the
    /// same RNG stream position — as under the legacy per-quantum walk.
    pub fn next_due_ps(&self) -> Option<Ps> {
        let inner = self.inner.borrow();
        inner
            .plan
            .entries
            .iter()
            .zip(&inner.states)
            .filter(|(e, s)| e.period > Ps::ZERO && s.fired < e.max)
            .map(|(_, s)| s.next_due)
            .min()
    }

    /// True when the plan corrupts trace records (the runner then wraps
    /// every core's stream in a [`CorruptingStream`]).
    pub fn corrupts_trace(&self) -> bool {
        self.inner.borrow().plan.trace_one_in().is_some()
    }

    /// Wraps `stream` so ~1-in-`one_in` records are corrupted, with a
    /// per-core RNG (seed ⊕ core) so corruption draws never interleave
    /// with the scheduler's.
    pub fn corrupting(&self, stream: Box<dyn AccessStream>, core: u32) -> Box<dyn AccessStream> {
        let inner = self.inner.borrow();
        let one_in = inner.plan.trace_one_in().unwrap_or(u32::MAX);
        let rng = SmallRng::seed_from_u64(
            inner.plan.seed ^ (u64::from(core).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        drop(inner);
        Box::new(CorruptingStream {
            stream,
            rng,
            one_in: u64::from(one_in.max(1)),
            injector: self.clone(),
            core,
            index: 0,
        })
    }

    /// Total faults that changed state.
    pub fn total_injected(&self) -> u64 {
        self.inner.borrow().injected
    }

    /// Total injection attempts (including no-ops on empty structures).
    pub fn total_attempted(&self) -> u64 {
        self.inner.borrow().attempted
    }

    /// Manifest summary: plan identity, totals, applied counts per kind.
    pub fn summary_json(&self) -> Json {
        let inner = self.inner.borrow();
        let mut by_kind = Json::obj();
        for (&kind, &count) in &inner.applied {
            by_kind.push(kind, count);
        }
        let mut doc = Json::obj();
        doc.push("plan", inner.plan.name.as_str())
            .push("seed", inner.plan.seed)
            .push("attempted", inner.attempted)
            .push("injected", inner.injected)
            .push("injected_by_kind", by_kind);
        doc
    }
}

/// An [`AccessStream`] adapter that flips bits in ~1-in-`one_in` records:
/// address bit flips, load/store inversions, or instruction-count upsets.
struct CorruptingStream {
    stream: Box<dyn AccessStream>,
    rng: SmallRng,
    one_in: u64,
    injector: FaultInjector,
    core: u32,
    index: u64,
}

impl AccessStream for CorruptingStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        let mut op = self.stream.next_op()?;
        self.index += 1;
        if self.rng.next_u64().is_multiple_of(self.one_in) {
            match self.rng.next_u64() % 3 {
                0 => op.vaddr ^= 1 << (self.rng.next_u64() % 48),
                1 => op.is_store = !op.is_store,
                _ => op.nonmem ^= 1 << (self.rng.next_u64() % 8),
            }
            // Trace faults have no device timestamp; the event carries the
            // record's stream position instead.
            self.injector
                .inner
                .borrow_mut()
                .record("trace_corrupt", 0, u64::from(self.core), true);
        }
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_plans_parse_and_unknown_names_fail() {
        for name in CANNED_PLANS {
            let plan = FaultPlan::parse(name).unwrap();
            assert_eq!(plan.name, name);
            assert!(!plan.entries.is_empty());
        }
        let err = FaultPlan::parse("cosmic-rays").unwrap_err();
        assert!(matches!(err, SimError::Config { .. }), "{err}");
        assert!(err.to_string().contains("cosmic-rays"), "{err}");
    }

    #[test]
    fn overrides_apply_and_unknown_keys_fail() {
        let plan = FaultPlan::parse("rct-seu:seed=9,period_us=3,start_us=1,max=5").unwrap();
        assert_eq!(plan.seed, 9);
        for e in &plan.entries {
            assert_eq!(e.period, Ps::from_us(3));
            assert_eq!(e.start, Ps::from_us(1));
            assert_eq!(e.max, 5);
        }
        let err = FaultPlan::parse("rct-seu:bogus=1").unwrap_err();
        assert!(
            matches!(err, SimError::Config { ref key, .. } if key == "bogus"),
            "{err}"
        );
        let err = FaultPlan::parse("rct-seu:period_us").unwrap_err();
        assert!(err.to_string().contains("key=value"), "{err}");
        let err = FaultPlan::parse("rct-seu:max=many").unwrap_err();
        assert!(err.to_string().contains("unsigned integer"), "{err}");
    }

    #[test]
    fn trace_plan_is_unscheduled() {
        let plan = FaultPlan::parse("trace-corrupt:one_in=7").unwrap();
        assert_eq!(plan.trace_one_in(), Some(7));
        let inj = FaultInjector::new(plan, Telemetry::disabled());
        assert!(inj.corrupts_trace());
        // No controllers: tick must be a no-op, not a panic.
        inj.tick(Ps::from_us(1_000), &mut []);
        assert_eq!(inj.total_attempted(), 0);
    }

    #[test]
    fn corrupting_stream_is_deterministic_and_bounded() {
        use mirza_frontend::trace::VecStream;
        let ops: Vec<TraceOp> = (0..4096u64)
            .map(|i| TraceOp {
                nonmem: 3,
                vaddr: i * 64,
                is_store: false,
            })
            .collect();
        let run = || {
            let plan = FaultPlan::parse("trace-corrupt:one_in=64").unwrap();
            let inj = FaultInjector::new(plan, Telemetry::disabled());
            let mut s = inj.corrupting(Box::new(VecStream::once(ops.clone())), 0);
            let mut out = Vec::new();
            while let Some(op) = s.next_op() {
                out.push(op);
            }
            (out, inj.total_injected())
        };
        let (a, na) = run();
        let (b, nb) = run();
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_eq!(na, nb);
        assert!(na > 0, "expected some corruption at 1-in-64 over 4096 ops");
        let flipped = a.iter().zip(&ops).filter(|(x, y)| x != y).count() as u64;
        assert!(flipped <= na, "corruptions {na} < visible flips {flipped}");
    }
}
