//! Experiment drivers: build a Table-IV workload (or a DoS scenario) and
//! run it under a given mitigation.

use mirza_frontend::trace::{AccessStream, TraceOp, VecStream};
use mirza_memctrl::mapping::AddressMapper;
use mirza_workloads::attacks::RowPattern;
use mirza_workloads::spec::{MixSpec, WorkloadSpec, TABLE4_MIXES};
use mirza_workloads::synth::SyntheticWorkload;

use mirza_dram::address::{BankId, DramAddr};
use mirza_telemetry::Telemetry;

use crate::config::SimConfig;
use crate::faults::FaultInjector;
use crate::report::SimReport;
use crate::system::{CoreSetup, System};
use crate::SimError;

/// Builds the per-core trace streams for a named Table-IV workload
/// (single benchmarks run in 8-core rate mode; mixes run one benchmark
/// per core).
///
/// # Panics
/// Panics if `workload` is not a Table-IV name; use [`try_build_traces`]
/// for user-supplied names.
pub fn build_traces(
    workload: &str,
    cores: usize,
    seed: u64,
    footprint_divisor: u64,
) -> Vec<Box<dyn AccessStream>> {
    try_build_traces(workload, cores, seed, footprint_divisor).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_traces`]: an unresolvable workload name is an error.
///
/// # Errors
/// [`SimError::UnknownWorkload`] when `workload` matches neither a
/// benchmark nor a mix.
pub fn try_build_traces(
    workload: &str,
    cores: usize,
    seed: u64,
    footprint_divisor: u64,
) -> Result<Vec<Box<dyn AccessStream>>, SimError> {
    let shrink = |mut spec: WorkloadSpec| {
        spec.pages = (spec.pages / footprint_divisor.max(1)).max(1024);
        spec
    };
    if let Some(spec) = WorkloadSpec::by_name(workload) {
        return Ok((0..cores)
            .map(|i| {
                Box::new(SyntheticWorkload::new(
                    shrink(*spec),
                    seed.wrapping_add(i as u64 * 101),
                )) as Box<dyn AccessStream>
            })
            .collect());
    }
    let mix: &MixSpec = TABLE4_MIXES
        .iter()
        .find(|m| m.name == workload)
        .ok_or_else(|| SimError::UnknownWorkload {
            name: workload.to_string(),
        })?;
    Ok((0..cores)
        .map(|i| {
            let name = mix.cores[i % mix.cores.len()];
            let spec = WorkloadSpec::by_name(name).expect("mix entries validated");
            Box::new(SyntheticWorkload::new(
                shrink(*spec),
                seed.wrapping_add(i as u64 * 101),
            )) as Box<dyn AccessStream>
        })
        .collect())
}

/// Runs one Table-IV workload under `cfg` and returns the report.
pub fn run_workload(cfg: &SimConfig, workload: &str) -> SimReport {
    run_workload_with(cfg, workload, Telemetry::disabled())
}

/// [`run_workload`] with a telemetry handle attached to the whole stack
/// (controllers, devices, mitigation engine).
pub fn run_workload_with(cfg: &SimConfig, workload: &str, telemetry: Telemetry) -> SimReport {
    try_run_workload_with(cfg, workload, telemetry, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_workload_with`] with optional fault injection: the
/// injector is ticked every quantum, and when its plan corrupts trace
/// records every core's stream is wrapped at the frontend boundary.
///
/// # Errors
/// [`SimError::UnknownWorkload`] for a bad name, [`SimError::Watchdog`]
/// when the run stalls.
pub fn try_run_workload_with(
    cfg: &SimConfig,
    workload: &str,
    telemetry: Telemetry,
    faults: Option<&FaultInjector>,
) -> Result<SimReport, SimError> {
    let mut streams = try_build_traces(workload, cfg.cores, cfg.seed, cfg.footprint_divisor)?;
    if let Some(inj) = faults {
        if inj.corrupts_trace() {
            streams = streams
                .into_iter()
                .enumerate()
                .map(|(i, s)| inj.corrupting(s, i as u32))
                .collect();
        }
    }
    let setups = streams
        .into_iter()
        .map(|t| CoreSetup::benign(t, cfg.instructions_per_core))
        .collect();
    let mut system = System::new(cfg.clone(), workload, setups);
    system.set_telemetry(telemetry);
    if let Some(inj) = faults {
        system.set_fault_injector(inj.clone());
    }
    system.try_run()
}

/// Replays a plain-text trace file (see `mirza_workloads::tracefile`) on
/// every core under `cfg`.
///
/// # Errors
/// [`SimError::Io`]/[`SimError::TraceParse`] for an unreadable or
/// malformed file (naming `path:line`), [`SimError::Watchdog`] when the
/// run stalls.
pub fn run_tracefile(
    cfg: &SimConfig,
    path: &std::path::Path,
    telemetry: Telemetry,
) -> Result<SimReport, SimError> {
    let ops = mirza_workloads::tracefile::load_nonempty(path)?;
    let setups = (0..cfg.cores)
        .map(|_| {
            CoreSetup::benign(
                Box::new(VecStream::once(ops.clone())),
                cfg.instructions_per_core,
            )
        })
        .collect();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let mut system = System::new(cfg.clone(), &name, setups);
    system.set_telemetry(telemetry);
    system.try_run()
}

/// Deliberately stalls: runs `workload` with a zero-width quantum, so no
/// pass ever makes forward progress and the idle watchdog must fire.
/// Exists to exercise (and demonstrate) the watchdog path end to end.
///
/// # Errors
/// Always returns [`SimError::Watchdog`] (or the workload-resolution
/// errors of [`try_build_traces`]).
pub fn run_stalled(
    cfg: &SimConfig,
    workload: &str,
    telemetry: Telemetry,
) -> Result<SimReport, SimError> {
    let mut cfg = cfg.clone();
    cfg.quantum = mirza_dram::time::Ps::ZERO;
    try_run_workload_with(&cfg, workload, telemetry, None)
}

/// Converts a row-level attack pattern on `bank` into an uncached,
/// physically-addressed trace stream (column rotates so consecutive ACTs
/// to the same row stay distinct lines).
pub fn attack_stream(cfg: &SimConfig, bank: BankId, pattern: &RowPattern) -> Box<dyn AccessStream> {
    let mapper = AddressMapper::mop4(cfg.geometry);
    let ops = pattern
        .rows()
        .iter()
        .map(|&row| TraceOp {
            nonmem: 0,
            vaddr: mapper.encode(&DramAddr { bank, row, col: 0 }),
            is_store: false,
        })
        .collect();
    Box::new(VecStream::looping(ops))
}

/// Runs `workload` on `cfg.cores - 1` benign cores with one attacker core
/// replaying `pattern` against `bank` (the Section IX performance attack).
pub fn run_with_attacker(
    cfg: &SimConfig,
    workload: &str,
    bank: BankId,
    pattern: &RowPattern,
) -> SimReport {
    assert!(cfg.cores >= 2, "need a benign core and an attacker");
    let mut setups: Vec<CoreSetup> =
        build_traces(workload, cfg.cores - 1, cfg.seed, cfg.footprint_divisor)
            .into_iter()
            .map(|t| CoreSetup::benign(t, cfg.instructions_per_core))
            .collect();
    setups.push(CoreSetup::attacker(attack_stream(cfg, bank, pattern)));
    System::new(cfg.clone(), &format!("{workload}+attack"), setups).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MitigationConfig;

    #[test]
    fn single_workload_runs_rate_mode() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 5_000);
        cfg.cores = 2;
        let r = run_workload(&cfg, "lbm");
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.device.acts > 0);
        assert!(r.mpki() > 1.0, "lbm is memory intensive, mpki={}", r.mpki());
    }

    #[test]
    fn mix_assigns_different_benchmarks() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 3_000);
        cfg.cores = 2;
        let r = run_workload(&cfg, "mix_1");
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.instructions >= 6_000);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let cfg = SimConfig::new(MitigationConfig::None, 1_000);
        let _ = run_workload(&cfg, "doom");
    }

    #[test]
    fn attacker_hammers_the_target_bank() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 50_000);
        cfg.cores = 2;
        let bank = BankId::new(0, 0, 0);
        let pattern = RowPattern::circular(vec![100 * 128, 101 * 128, 102 * 128]);
        let r = run_with_attacker(&cfg, "lbm", bank, &pattern);
        assert_eq!(r.core_ipc.len(), 1, "attacker excluded from report");
        // The attacker's conflict loop adds ACT traffic well beyond lbm's own.
        let mut solo_cfg = cfg.clone();
        solo_cfg.cores = 1;
        let solo = run_workload(&solo_cfg, "lbm");
        assert!(
            r.device.acts > solo.device.acts,
            "attack acts {} <= solo acts {}",
            r.device.acts,
            solo.device.acts
        );
    }
}
