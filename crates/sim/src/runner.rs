//! Experiment drivers: build a Table-IV workload (or a DoS scenario) and
//! run it under a given mitigation.

use mirza_frontend::trace::{AccessStream, TraceOp, VecStream};
use mirza_memctrl::mapping::AddressMapper;
use mirza_workloads::attacks::RowPattern;
use mirza_workloads::spec::{MixSpec, WorkloadSpec, TABLE4_MIXES};
use mirza_workloads::synth::SyntheticWorkload;

use mirza_dram::address::{BankId, DramAddr};
use mirza_telemetry::Telemetry;

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::system::{CoreSetup, System};

/// Builds the per-core trace streams for a named Table-IV workload
/// (single benchmarks run in 8-core rate mode; mixes run one benchmark
/// per core).
///
/// # Panics
/// Panics if `workload` is not a Table-IV name.
pub fn build_traces(
    workload: &str,
    cores: usize,
    seed: u64,
    footprint_divisor: u64,
) -> Vec<Box<dyn AccessStream>> {
    let shrink = |mut spec: WorkloadSpec| {
        spec.pages = (spec.pages / footprint_divisor.max(1)).max(1024);
        spec
    };
    if let Some(spec) = WorkloadSpec::by_name(workload) {
        return (0..cores)
            .map(|i| {
                Box::new(SyntheticWorkload::new(
                    shrink(*spec),
                    seed.wrapping_add(i as u64 * 101),
                )) as Box<dyn AccessStream>
            })
            .collect();
    }
    let mix: &MixSpec = TABLE4_MIXES
        .iter()
        .find(|m| m.name == workload)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    (0..cores)
        .map(|i| {
            let name = mix.cores[i % mix.cores.len()];
            let spec = WorkloadSpec::by_name(name).expect("mix entries validated");
            Box::new(SyntheticWorkload::new(
                shrink(*spec),
                seed.wrapping_add(i as u64 * 101),
            )) as Box<dyn AccessStream>
        })
        .collect()
}

/// Runs one Table-IV workload under `cfg` and returns the report.
pub fn run_workload(cfg: &SimConfig, workload: &str) -> SimReport {
    run_workload_with(cfg, workload, Telemetry::disabled())
}

/// [`run_workload`] with a telemetry handle attached to the whole stack
/// (controllers, devices, mitigation engine).
pub fn run_workload_with(cfg: &SimConfig, workload: &str, telemetry: Telemetry) -> SimReport {
    let setups = build_traces(workload, cfg.cores, cfg.seed, cfg.footprint_divisor)
        .into_iter()
        .map(|t| CoreSetup::benign(t, cfg.instructions_per_core))
        .collect();
    let mut system = System::new(cfg.clone(), workload, setups);
    system.set_telemetry(telemetry);
    system.run()
}

/// Converts a row-level attack pattern on `bank` into an uncached,
/// physically-addressed trace stream (column rotates so consecutive ACTs
/// to the same row stay distinct lines).
pub fn attack_stream(cfg: &SimConfig, bank: BankId, pattern: &RowPattern) -> Box<dyn AccessStream> {
    let mapper = AddressMapper::mop4(cfg.geometry);
    let ops = pattern
        .rows()
        .iter()
        .map(|&row| TraceOp {
            nonmem: 0,
            vaddr: mapper.encode(&DramAddr { bank, row, col: 0 }),
            is_store: false,
        })
        .collect();
    Box::new(VecStream::looping(ops))
}

/// Runs `workload` on `cfg.cores - 1` benign cores with one attacker core
/// replaying `pattern` against `bank` (the Section IX performance attack).
pub fn run_with_attacker(
    cfg: &SimConfig,
    workload: &str,
    bank: BankId,
    pattern: &RowPattern,
) -> SimReport {
    assert!(cfg.cores >= 2, "need a benign core and an attacker");
    let mut setups: Vec<CoreSetup> =
        build_traces(workload, cfg.cores - 1, cfg.seed, cfg.footprint_divisor)
            .into_iter()
            .map(|t| CoreSetup::benign(t, cfg.instructions_per_core))
            .collect();
    setups.push(CoreSetup::attacker(attack_stream(cfg, bank, pattern)));
    System::new(cfg.clone(), &format!("{workload}+attack"), setups).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MitigationConfig;

    #[test]
    fn single_workload_runs_rate_mode() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 5_000);
        cfg.cores = 2;
        let r = run_workload(&cfg, "lbm");
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.device.acts > 0);
        assert!(r.mpki() > 1.0, "lbm is memory intensive, mpki={}", r.mpki());
    }

    #[test]
    fn mix_assigns_different_benchmarks() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 3_000);
        cfg.cores = 2;
        let r = run_workload(&cfg, "mix_1");
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.instructions >= 6_000);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let cfg = SimConfig::new(MitigationConfig::None, 1_000);
        let _ = run_workload(&cfg, "doom");
    }

    #[test]
    fn attacker_hammers_the_target_bank() {
        let mut cfg = SimConfig::new(MitigationConfig::None, 50_000);
        cfg.cores = 2;
        let bank = BankId::new(0, 0, 0);
        let pattern = RowPattern::circular(vec![100 * 128, 101 * 128, 102 * 128]);
        let r = run_with_attacker(&cfg, "lbm", bank, &pattern);
        assert_eq!(r.core_ipc.len(), 1, "attacker excluded from report");
        // The attacker's conflict loop adds ACT traffic well beyond lbm's own.
        let mut solo_cfg = cfg.clone();
        solo_cfg.cores = 1;
        let solo = run_workload(&solo_cfg, "lbm");
        assert!(
            r.device.acts > solo.device.acts,
            "attack acts {} <= solo acts {}",
            r.device.acts,
            solo.device.acts
        );
    }
}
