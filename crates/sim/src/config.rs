//! Simulation configuration: which mitigation runs, with which timing
//! overlay and controller policy (Table III baseline system).

use mirza_core::config::MirzaConfig;
use mirza_core::mirza::Mirza;
use mirza_core::rct::ResetPolicy;
use mirza_dram::address::MappingScheme;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{Mitigator, NullMitigator};
use mirza_dram::time::Ps;
use mirza_dram::timing::TimingParams;
use mirza_frontend::core::CoreParams;
use mirza_memctrl::controller::McConfig;
use mirza_telemetry::Json;
use mirza_trackers::mint_ref::MintRef;
use mirza_trackers::mint_rfm::MintRfm;
use mirza_trackers::mithril::Mithril;
use mirza_trackers::para::Para;
use mirza_trackers::prac::PracMoat;
use mirza_trackers::trr::Trr;

/// Which Rowhammer mitigation the simulated system runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MitigationConfig {
    /// Unprotected baseline.
    None,
    /// Full MIRZA (Section V) with the given config and RCT reset policy.
    Mirza {
        /// Tracker parameters (Table VII presets).
        cfg: MirzaConfig,
        /// RCT reset policy (Safe in all performance experiments).
        policy: ResetPolicy,
    },
    /// Naive MIRZA: MINT+ABO without filtering (Table V).
    MirzaNaive {
        /// MINT window (24/48/96 in Table V).
        mint_w: u32,
        /// MIRZA-Q entries (1/2/4/8 in Table V).
        queue: usize,
    },
    /// MINT with proactive RFM every `bat` ACTs (Figure 3).
    MintRfm {
        /// Bank activation threshold (24/48/96 for TRHD 500/1K/2K).
        bat: u32,
    },
    /// MINT mitigating under REF every `refs_per_mit` REFs (Table XII).
    MintRef {
        /// REFs between mitigations.
        refs_per_mit: u64,
    },
    /// PRAC + ABO with MOAT policy; runs with the inflated PRAC timings.
    PracAbo {
        /// Target double-sided threshold (sets ATH).
        trhd: u32,
    },
    /// Mithril-style counter tracker mitigating under REF.
    Mithril {
        /// Counter entries per bank.
        entries: usize,
        /// REFs between mitigations.
        refs_per_mit: u64,
    },
    /// DDR4-style TRR (28 entries, 1 mitigation per 4 REF).
    Trr,
    /// PARA with per-ACT probability `p`.
    Para {
        /// Mitigation probability.
        p: f64,
    },
}

impl MitigationConfig {
    /// Human-readable identifier for reports.
    pub fn label(&self) -> String {
        match self {
            MitigationConfig::None => "baseline".into(),
            MitigationConfig::Mirza { cfg, policy } => {
                // Every distinguishing parameter appears so run caches
                // keyed on the label never collide across configurations.
                format!(
                    "mirza-trhd{}-f{}-w{}-r{}-c{}-qth{}-{}{}",
                    cfg.target_trhd,
                    cfg.fth,
                    cfg.mint_w,
                    cfg.regions_per_bank,
                    cfg.queue_capacity,
                    cfg.qth,
                    match cfg.mapping {
                        mirza_dram::address::MappingScheme::Strided => "str",
                        mirza_dram::address::MappingScheme::Sequential => "seq",
                    },
                    match policy {
                        ResetPolicy::Safe => "",
                        ResetPolicy::Eager => "-eager",
                        ResetPolicy::Lazy => "-lazy",
                    }
                )
            }
            MitigationConfig::MirzaNaive { mint_w, queue } => {
                format!("naive-w{mint_w}-q{queue}")
            }
            MitigationConfig::MintRfm { bat } => format!("mint-rfm-bat{bat}"),
            MitigationConfig::MintRef { refs_per_mit } => {
                format!("mint-ref-{refs_per_mit}")
            }
            MitigationConfig::PracAbo { trhd } => format!("prac-trhd{trhd}"),
            MitigationConfig::Mithril {
                entries,
                refs_per_mit,
            } => format!("mithril-{entries}-k{refs_per_mit}"),
            MitigationConfig::Trr => "trr".into(),
            MitigationConfig::Para { p } => format!("para-{p}"),
        }
    }

    /// The DRAM timing parameter set this mitigation requires (PRAC inflates
    /// tRP/tRAS/tRC; everything else runs baseline DDR5-6000).
    pub fn timing(&self) -> TimingParams {
        match self {
            MitigationConfig::PracAbo { .. } => TimingParams::ddr5_6000_prac(),
            _ => TimingParams::ddr5_6000(),
        }
    }

    /// Controller policy: MINT+RFM installs the proactive BAT counter.
    pub fn mc_config(&self) -> McConfig {
        match self {
            MitigationConfig::MintRfm { bat } => McConfig {
                rfm_bat: Some(*bat),
                ..McConfig::default()
            },
            _ => McConfig::default(),
        }
    }

    /// Instantiates the in-DRAM engine for one sub-channel.
    pub fn build(&self, geom: &Geometry, seed: u64) -> Box<dyn Mitigator> {
        match *self {
            MitigationConfig::None => Box::new(NullMitigator::new()),
            MitigationConfig::Mirza { cfg, policy } => {
                Box::new(Mirza::with_reset_policy(cfg, geom, seed, policy))
            }
            MitigationConfig::MirzaNaive { mint_w, queue } => {
                Box::new(Mirza::naive(mint_w, queue, geom, seed))
            }
            MitigationConfig::MintRfm { .. } => Box::new(MintRfm::new(geom, seed)),
            MitigationConfig::MintRef { refs_per_mit } => {
                Box::new(MintRef::new(refs_per_mit, geom, seed))
            }
            MitigationConfig::PracAbo { trhd } => Box::new(PracMoat::for_trhd(trhd, geom)),
            MitigationConfig::Mithril {
                entries,
                refs_per_mit,
            } => Box::new(Mithril::new(entries, refs_per_mit, geom)),
            MitigationConfig::Trr => Box::new(Trr::ddr4_like(geom)),
            MitigationConfig::Para { p } => Box::new(Para::new(p, geom, seed)),
        }
    }
}

/// Full simulation configuration (Table III defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Channel geometry.
    pub geometry: Geometry,
    /// Installed mitigation.
    pub mitigation: MitigationConfig,
    /// Core count (8 in the paper, rate mode).
    pub cores: usize,
    /// Instructions each core retires before the run ends (250 M simpoints
    /// in the paper; scaled down in fast mode).
    pub instructions_per_core: u64,
    /// Core microarchitecture.
    pub core_params: CoreParams,
    /// Mapping used for the ACTs-per-subarray metric histogram.
    pub metrics_mapping: MappingScheme,
    /// Master seed (workloads, trackers).
    pub seed: u64,
    /// Simulation quantum for core/MC interleaving.
    pub quantum: Ps,
    /// LLC sets (16-way, 64 B lines); 16384 = the paper's 16 MB.
    pub llc_sets: usize,
    /// Divisor applied to workload footprints (scaled-mode experiments
    /// shrink DRAM, LLC and footprints together; see DESIGN.md).
    pub footprint_divisor: u64,
    /// Overrides tREFW (scaled-mode experiments shorten the refresh window
    /// together with the bank height so the walk stays consistent).
    pub t_refw: Option<Ps>,
    /// RowPress weighting: convert long row-open times into activation
    /// equivalents charged to the tracker (Section II-A).
    pub rowpress: bool,
    /// Progress heartbeat: print a status line every this many retired
    /// instructions (`None` = silent).
    pub heartbeat_every: Option<u64>,
    /// Enable the independent DDR5 protocol auditor on every sub-channel.
    /// Pure observability: it never alters simulated behavior, so it is
    /// deliberately excluded from [`SimConfig::to_json`] (audited and
    /// unaudited manifests stay comparable).
    pub audit: bool,
    /// Enable the auditor's per-row ACT census (security verdicts under
    /// fault injection). Pure observability; excluded from
    /// [`SimConfig::to_json`] like `audit`.
    pub track_row_acts: bool,
    /// Forward-progress watchdog: abort with `SimError::Watchdog` after
    /// this many consecutive quanta without retiring/completing anything.
    /// Excluded from [`SimConfig::to_json`]: it only decides when a broken
    /// run dies, never what a healthy run computes.
    pub watchdog_idle_quanta: u64,
    /// Forward-progress watchdog: optional total wall-clock budget for the
    /// run; exceeded ⇒ `SimError::Watchdog`. Excluded from
    /// [`SimConfig::to_json`] for the same reason.
    pub watchdog_wall: Option<std::time::Duration>,
    /// Run the legacy eager quantum-stepped loop instead of the
    /// next-event skip-ahead core. The two produce bit-identical results
    /// (pinned by `sim/tests/event_core.rs`); the legacy loop exists for
    /// that comparison and as a fallback. Excluded from
    /// [`SimConfig::to_json`] so manifests stay comparable across loops.
    pub legacy_loop: bool,
}

impl SimConfig {
    /// Baseline system with the given per-core instruction budget.
    pub fn new(mitigation: MitigationConfig, instructions_per_core: u64) -> Self {
        SimConfig {
            geometry: Geometry::ddr5_32gb(),
            mitigation,
            cores: 8,
            instructions_per_core,
            core_params: CoreParams::default(),
            metrics_mapping: MappingScheme::Strided,
            seed: 0xC0FFEE,
            quantum: Ps::from_ns(1000),
            llc_sets: 16 * 1024,
            footprint_divisor: 1,
            t_refw: None,
            rowpress: false,
            heartbeat_every: None,
            audit: false,
            track_row_acts: false,
            watchdog_idle_quanta: 1_000_000,
            watchdog_wall: None,
            legacy_loop: false,
        }
    }

    /// The effective timing parameters (mitigation overlay + tREFW override).
    pub fn timing(&self) -> TimingParams {
        let mut t = self.mitigation.timing();
        if let Some(w) = self.t_refw {
            t.t_refw = w;
        }
        t
    }

    /// Serializes the full configuration for run manifests.
    pub fn to_json(&self) -> Json {
        let g = &self.geometry;
        let mut geom = Json::obj();
        geom.push("subchannels", g.subchannels)
            .push("ranks", g.ranks)
            .push("banks", g.banks)
            .push("rows_per_bank", g.rows_per_bank)
            .push("row_bytes", g.row_bytes)
            .push("line_bytes", g.line_bytes)
            .push("subarrays_per_bank", g.subarrays_per_bank)
            .push("rows_per_ref", g.rows_per_ref);
        let t = self.timing();
        let mut doc = Json::obj();
        doc.push("mitigation", self.mitigation.label())
            .push("geometry", geom)
            .push("cores", self.cores)
            .push("instructions_per_core", self.instructions_per_core)
            .push(
                "metrics_mapping",
                match self.metrics_mapping {
                    MappingScheme::Strided => "strided",
                    MappingScheme::Sequential => "sequential",
                },
            )
            .push("seed", self.seed)
            .push("quantum_ps", self.quantum.as_ps())
            .push("llc_sets", self.llc_sets)
            .push("footprint_divisor", self.footprint_divisor)
            .push("t_refi_ps", t.t_refi.as_ps())
            .push("t_refw_ps", t.t_refw.as_ps())
            .push("rowpress", self.rowpress);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac_gets_inflated_timings() {
        let m = MitigationConfig::PracAbo { trhd: 1000 };
        assert_eq!(m.timing().t_rp, Ps::from_ns(36));
        let m = MitigationConfig::None;
        assert_eq!(m.timing().t_rp, Ps::from_ns(14));
    }

    #[test]
    fn mint_rfm_installs_bat() {
        let m = MitigationConfig::MintRfm { bat: 48 };
        assert_eq!(m.mc_config().rfm_bat, Some(48));
        assert_eq!(MitigationConfig::None.mc_config().rfm_bat, None);
    }

    #[test]
    fn build_produces_right_engine() {
        let g = Geometry::ddr5_32gb();
        let cases: Vec<(MitigationConfig, &str)> = vec![
            (MitigationConfig::None, "none"),
            (
                MitigationConfig::Mirza {
                    cfg: MirzaConfig::trhd_1000(),
                    policy: ResetPolicy::Safe,
                },
                "mirza",
            ),
            (
                MitigationConfig::MirzaNaive {
                    mint_w: 48,
                    queue: 4,
                },
                "mirza-naive",
            ),
            (MitigationConfig::MintRfm { bat: 48 }, "mint-rfm"),
            (MitigationConfig::MintRef { refs_per_mit: 4 }, "mint-ref"),
            (MitigationConfig::PracAbo { trhd: 1000 }, "prac-moat"),
            (
                MitigationConfig::Mithril {
                    entries: 64,
                    refs_per_mit: 1,
                },
                "mithril",
            ),
            (MitigationConfig::Trr, "trr"),
            (MitigationConfig::Para { p: 0.01 }, "para"),
        ];
        for (cfg, expected) in cases {
            assert_eq!(cfg.build(&g, 1).name(), expected, "{}", cfg.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            MitigationConfig::None,
            MitigationConfig::MintRfm { bat: 48 },
            MitigationConfig::PracAbo { trhd: 1000 },
            MitigationConfig::Trr,
        ]
        .iter()
        .map(MitigationConfig::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
