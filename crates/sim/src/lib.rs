//! # mirza-sim — full-system simulation harness
//!
//! Composes every substrate into the paper's Table-III machine: 8 interval
//! cores sharing a 16 MB LLC, clock-style paging, MOP4 address mapping, two
//! DDR5 sub-channels with FR-FCFS controllers, and the configured Rowhammer
//! mitigation ([`config::MitigationConfig`]).
//!
//! [`runner::run_workload`] executes one Table-IV workload and returns a
//! [`report::SimReport`] carrying every metric the paper's tables and
//! figures use (weighted-speedup slowdown, ALERT rate, refresh power
//! overhead, ACTs-per-subarray statistics, ...).

pub mod config;
pub mod faults;
pub mod report;
pub mod runner;
pub mod system;

pub use mirza_frontend::error::SimError;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::config::{MitigationConfig, SimConfig};
    pub use crate::faults::{FaultInjector, FaultKind, FaultPlan, PlannedFault};
    pub use crate::report::SimReport;
    pub use crate::runner::{attack_stream, build_traces, run_with_attacker, run_workload};
    pub use crate::system::{CoreSetup, System};
    pub use crate::SimError;
}
