//! Simulation output: everything the paper's tables and figures report.

use mirza_dram::mitigation::MitigationStats;
use mirza_dram::stats::DeviceStats;
use mirza_dram::time::Ps;
use mirza_memctrl::request::McStats;
use mirza_telemetry::{AttributionSummary, Json};

/// Aggregated result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Mitigation label (see `MitigationConfig::label`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Per-core IPC.
    pub core_ipc: Vec<f64>,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Wall-clock simulated time (slowest core's finish).
    pub elapsed: Ps,
    /// Merged device counters (both sub-channels).
    pub device: DeviceStats,
    /// Merged mitigation counters.
    pub mitigation: MitigationStats,
    /// Merged controller counters.
    pub mc: McStats,
    /// ACT counts per (sub-channel, bank, subarray), concatenated.
    pub acts_per_subarray: Vec<u64>,
    /// LLC hits and misses.
    pub llc_hits: u64,
    /// LLC misses (fills from DRAM).
    pub llc_misses: u64,
    /// tREFI of the run (for ALERT-rate normalization).
    pub t_refi: Ps,
    /// tREFW of the run (for per-window subarray statistics).
    pub t_refw: Ps,
    /// Sub-channels the device/controller counters were summed over
    /// (from the geometry; used to normalize per-sub-channel metrics).
    pub subchannels: u32,
    /// Per-bucket stall attribution, when the span layer ran. Absent on
    /// plain runs so their manifests stay byte-identical.
    pub attribution: Option<AttributionSummary>,
}

impl SimReport {
    /// Weighted speedup against a baseline run of the same workload:
    /// `sum_i IPC_i / IPC_i^base`.
    pub fn weighted_speedup(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.core_ipc.len(),
            baseline.core_ipc.len(),
            "core counts differ"
        );
        self.core_ipc
            .iter()
            .zip(&baseline.core_ipc)
            .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
            .sum()
    }

    /// Percent slowdown versus the baseline (positive = slower), the
    /// quantity every performance figure reports.
    pub fn slowdown_pct(&self, baseline: &SimReport) -> f64 {
        let n = self.core_ipc.len() as f64;
        (1.0 - self.weighted_speedup(baseline) / n) * 100.0
    }

    /// L3 misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// DRAM activations per kilo-instruction.
    pub fn act_pki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.device.acts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Data-bus utilization percentage (mean of the two sub-channels).
    pub fn bus_utilization_pct(&self) -> f64 {
        if self.elapsed == Ps::ZERO {
            0.0
        } else {
            // bus_busy_ps was summed over all sub-channels.
            let subch = f64::from(self.subchannels.max(1));
            100.0 * self.device.bus_busy_ps as f64 / (subch * self.elapsed.as_ps() as f64)
        }
    }

    /// ALERT back-offs per 100 tREFI per sub-channel (Figure 11b).
    pub fn alerts_per_100_trefi(&self) -> f64 {
        if self.elapsed == Ps::ZERO {
            0.0
        } else {
            let trefis = self.elapsed.as_ps() as f64 / self.t_refi.as_ps() as f64;
            // Alerts were summed over all sub-channels.
            let subch = f64::from(self.subchannels.max(1));
            self.device.alerts as f64 / subch / trefis * 100.0
        }
    }

    /// Refresh power overhead percentage (victim rows / demand rows).
    pub fn refresh_power_overhead_pct(&self) -> f64 {
        self.device.refresh_power_overhead_pct(&self.mitigation)
    }

    /// Mitigations per activation (Table VIII's overhead metric).
    pub fn mitigation_rate(&self) -> f64 {
        self.mitigation.mitigation_rate()
    }

    /// CSV header matching [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,workload,instructions,elapsed_ps,ipc_sum,acts,reads,writes,refs,\
         rfms_proactive,rfms_alert,alerts,demand_refresh_rows,victim_rows,\
         mitigations,acts_filtered,acts_candidate,llc_hits,llc_misses,\
         row_hits,row_misses,row_conflicts,bus_busy_ps"
    }

    /// One CSV row of raw counters (post-process with the tool of your
    /// choice; slowdowns need the matching baseline row).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.label,
            self.workload,
            self.instructions,
            self.elapsed.as_ps(),
            self.core_ipc.iter().sum::<f64>(),
            self.device.acts,
            self.device.reads,
            self.device.writes,
            self.device.refs,
            self.device.rfms_proactive,
            self.device.rfms_alert,
            self.device.alerts,
            self.device.demand_refresh_rows,
            self.mitigation.victim_rows_refreshed,
            self.mitigation.mitigations,
            self.mitigation.acts_filtered,
            self.mitigation.acts_candidate,
            self.llc_hits,
            self.llc_misses,
            self.mc.row_hits,
            self.mc.row_misses,
            self.mc.row_conflicts,
            self.device.bus_busy_ps,
        )
    }

    /// Serializes the report for run manifests: raw counters plus the
    /// derived metrics the paper's tables quote.
    pub fn to_json(&self) -> Json {
        let (sa_mean, sa_sd) = self.acts_per_subarray_per_trefw();
        let mut doc = Json::obj();
        doc.push("label", self.label.as_str())
            .push("workload", self.workload.as_str())
            .push(
                "core_ipc",
                Json::Arr(self.core_ipc.iter().map(|&v| Json::F64(v)).collect()),
            )
            .push("instructions", self.instructions)
            .push("elapsed_ps", self.elapsed.as_ps())
            .push("subchannels", self.subchannels)
            .push("acts", self.device.acts)
            .push("pres", self.device.pres)
            .push("reads", self.device.reads)
            .push("writes", self.device.writes)
            .push("refs", self.device.refs)
            .push("rfms_proactive", self.device.rfms_proactive)
            .push("rfms_alert", self.device.rfms_alert)
            .push("alerts", self.device.alerts)
            .push("demand_refresh_rows", self.device.demand_refresh_rows)
            .push("acts_observed", self.mitigation.acts_observed)
            .push("acts_filtered", self.mitigation.acts_filtered)
            .push("acts_candidate", self.mitigation.acts_candidate)
            .push("mitigations", self.mitigation.mitigations)
            .push(
                "victim_rows_refreshed",
                self.mitigation.victim_rows_refreshed,
            )
            .push("alerts_requested", self.mitigation.alerts_requested)
            .push("row_hits", self.mc.row_hits)
            .push("row_misses", self.mc.row_misses)
            .push("row_conflicts", self.mc.row_conflicts)
            .push("reads_done", self.mc.reads_done)
            .push("writes_done", self.mc.writes_done)
            .push("llc_hits", self.llc_hits)
            .push("llc_misses", self.llc_misses)
            .push("mpki", self.mpki())
            .push("act_pki", self.act_pki())
            .push("bus_utilization_pct", self.bus_utilization_pct())
            .push("alerts_per_100_trefi", self.alerts_per_100_trefi())
            .push(
                "refresh_power_overhead_pct",
                self.refresh_power_overhead_pct(),
            )
            .push("mitigation_rate", self.mitigation_rate())
            .push("acts_per_subarray_per_trefw_mean", sa_mean)
            .push("acts_per_subarray_per_trefw_sd", sa_sd);
        if let Some(a) = &self.attribution {
            doc.push("attribution", a.to_json());
        }
        doc
    }

    /// Mean and standard deviation of ACTs per subarray per tREFW
    /// (Table IV's last column, Figure 6), scaled linearly when the run is
    /// shorter than one refresh window.
    pub fn acts_per_subarray_per_trefw(&self) -> (f64, f64) {
        if self.acts_per_subarray.is_empty() || self.elapsed == Ps::ZERO {
            return (0.0, 0.0);
        }
        let windows = self.elapsed.as_ps() as f64 / self.t_refw.as_ps() as f64;
        let scaled: Vec<f64> = self
            .acts_per_subarray
            .iter()
            .map(|&a| a as f64 / windows)
            .collect();
        let n = scaled.len() as f64;
        let mean = scaled.iter().sum::<f64>() / n;
        let var = scaled.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ipc: Vec<f64>) -> SimReport {
        SimReport {
            label: "x".into(),
            workload: "w".into(),
            core_ipc: ipc,
            instructions: 1_000_000,
            elapsed: Ps::from_ms(32),
            device: DeviceStats::default(),
            mitigation: MitigationStats::default(),
            mc: McStats::default(),
            acts_per_subarray: vec![],
            llc_hits: 0,
            llc_misses: 25_000,
            t_refi: Ps::from_ns(3900),
            t_refw: Ps::from_ms(32),
            subchannels: 2,
            attribution: None,
        }
    }

    #[test]
    fn weighted_speedup_and_slowdown() {
        let base = report(vec![2.0, 2.0]);
        let slower = report(vec![1.8, 2.0]);
        assert!((slower.weighted_speedup(&base) - 1.9).abs() < 1e-12);
        assert!((slower.slowdown_pct(&base) - 5.0).abs() < 1e-9);
        assert_eq!(base.slowdown_pct(&base), 0.0);
    }

    #[test]
    fn mpki_metric() {
        let r = report(vec![1.0]);
        assert!((r.mpki() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn subarray_stats_scale_to_one_window() {
        let mut r = report(vec![1.0]);
        r.elapsed = Ps::from_ms(16); // half a window
        r.acts_per_subarray = vec![100, 300];
        let (mean, sd) = r.acts_per_subarray_per_trefw();
        // Scaled x2: 200 and 600 -> mean 400, sd 200.
        assert!((mean - 400.0).abs() < 1e-9);
        assert!((sd - 200.0).abs() < 1e-9);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = report(vec![1.0]);
        let header_cols = SimReport::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.csv_row().starts_with("x,w,1000000,"));
    }

    #[test]
    fn alert_rate_normalization() {
        let mut r = report(vec![1.0]);
        r.elapsed = Ps::from_ns(3900 * 100); // 100 tREFI
        r.device.alerts = 4; // 2 per sub-channel
        assert!((r.alerts_per_100_trefi() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_subchannel_metrics_use_configured_count() {
        let mut r = report(vec![1.0]);
        r.elapsed = Ps::from_ns(3900 * 100);
        r.device.alerts = 4;
        r.device.bus_busy_ps = r.elapsed.as_ps(); // one sub-channel's worth
        let two_sc = (r.alerts_per_100_trefi(), r.bus_utilization_pct());
        r.subchannels = 1;
        let one_sc = (r.alerts_per_100_trefi(), r.bus_utilization_pct());
        assert!((one_sc.0 - 2.0 * two_sc.0).abs() < 1e-9);
        assert!((one_sc.1 - 2.0 * two_sc.1).abs() < 1e-9);
        assert!((one_sc.1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_section_only_present_when_spans_ran() {
        let mut r = report(vec![1.0]);
        assert!(r.to_json().get("attribution").is_none());
        r.attribution = Some(AttributionSummary {
            requests: 2,
            total_stall_ps: 10,
            buckets_ps: [10, 0, 0, 0, 0, 0],
            conserved: true,
        });
        let doc = r.to_json();
        let a = doc.get("attribution").unwrap();
        assert_eq!(a.get("total_stall_ps").unwrap().as_u64(), Some(10));
        let qc = a.get("buckets").unwrap().get("queue_conflict").unwrap();
        assert_eq!(qc.get("pct").unwrap().as_f64(), Some(100.0));
    }

    #[test]
    fn json_report_round_trips() {
        let mut r = report(vec![1.5, 2.0]);
        r.device.acts = 123;
        let doc = r.to_json();
        assert_eq!(doc.get("acts").unwrap().as_u64(), Some(123));
        assert_eq!(doc.get("subchannels").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("core_ipc").unwrap().as_arr().unwrap().len(), 2);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
