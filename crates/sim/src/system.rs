//! Full-system composition: cores + LLC + paging + two memory controllers
//! (one per sub-channel) + DRAM devices with the configured mitigation.

use mirza_dram::address::RowMapping;
use mirza_dram::device::Subchannel;
use mirza_dram::mitigation::MitigationStats;
use mirza_dram::stats::DeviceStats;
use mirza_dram::time::Ps;
use mirza_frontend::cache::{CacheOutcome, SetAssocCache};
use mirza_frontend::core::{AccessResult, Core, RunStatus};
use mirza_frontend::hash::FxHashMap;
use mirza_frontend::paging::PageAllocator;
use mirza_frontend::trace::AccessStream;
use mirza_memctrl::controller::MemController;
use mirza_memctrl::mapping::AddressMapper;
use mirza_memctrl::request::{AccessKind, Completion, McStats, Request};
use mirza_telemetry::{names, Heartbeat, Phase, Telemetry};

use crate::config::SimConfig;
use crate::faults::FaultInjector;
use crate::report::SimReport;
use crate::SimError;

/// Sampling period for the per-pass profiler phase spans: only 1-in-N
/// scheduler passes are timed (durations scaled back up by N), keeping the
/// clock reads themselves off the profile. Attribution stays statistically
/// right because pass costs are narrowly distributed.
const PASS_SAMPLE: u32 = 16;

/// Per-core launch description.
pub struct CoreSetup {
    /// The instruction/access stream the core executes.
    pub trace: Box<dyn AccessStream>,
    /// Instructions to retire before the core is done (`u64::MAX` for
    /// attacker cores that run as long as the benign cores do).
    pub target_instr: u64,
    /// Bypass the LLC (attack kernels use explicit cache flushes).
    pub uncached: bool,
    /// Treat virtual addresses as physical (attack kernels control DRAM
    /// geometry directly, standing in for huge-page/contig-alloc tricks).
    pub direct_phys: bool,
}

impl CoreSetup {
    /// A normal, cached, paged core.
    pub fn benign(trace: Box<dyn AccessStream>, target_instr: u64) -> Self {
        CoreSetup {
            trace,
            target_instr,
            uncached: false,
            direct_phys: false,
        }
    }

    /// An attacker core: uncached, physically addressed, unbounded.
    pub fn attacker(trace: Box<dyn AccessStream>) -> Self {
        CoreSetup {
            trace,
            target_instr: u64::MAX,
            uncached: true,
            direct_phys: true,
        }
    }
}

/// The simulated machine.
pub struct System {
    cfg: SimConfig,
    workload: String,
    cores: Vec<Core>,
    required: Vec<bool>,
    uncached: Vec<bool>,
    direct_phys: Vec<bool>,
    llc: SetAssocCache,
    pager: PageAllocator,
    mapper: AddressMapper,
    mcs: Vec<MemController>,
    // Insert per owned read, remove per completion — hot enough that the
    // deterministic fast hasher is worth it (order never observed).
    token_owner: FxHashMap<u64, usize>,
    next_token: u64,
    issued_this_pass: bool,
    telemetry: Telemetry,
    faults: Option<FaultInjector>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("workload", &self.workload)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds the machine for `cfg` with one entry of `setups` per core.
    ///
    /// # Panics
    /// Panics if `setups` is empty.
    pub fn new(cfg: SimConfig, workload: &str, setups: Vec<CoreSetup>) -> Self {
        assert!(!setups.is_empty(), "need at least one core");
        let geom = cfg.geometry;
        let timing = cfg.timing();
        let metrics_mapping = RowMapping::for_geometry(cfg.metrics_mapping, &geom);
        let mcs = (0..geom.subchannels)
            .map(|s| {
                let mut device = Subchannel::new(
                    timing.clone(),
                    geom,
                    metrics_mapping,
                    cfg.mitigation
                        .build(&geom, cfg.seed.wrapping_add(u64::from(s) * 7919)),
                );
                device.set_rowpress_weighting(cfg.rowpress);
                if cfg.audit {
                    device.enable_audit();
                }
                if cfg.track_row_acts {
                    device.enable_row_tracking();
                }
                MemController::new(device, cfg.mitigation.mc_config(), s)
            })
            .collect();
        let mut cores = Vec::new();
        let mut required = Vec::new();
        let mut uncached = Vec::new();
        let mut direct_phys = Vec::new();
        for (i, s) in setups.into_iter().enumerate() {
            cores.push(Core::new(
                i as u32,
                cfg.core_params,
                s.trace,
                s.target_instr,
            ));
            required.push(s.target_instr != u64::MAX);
            uncached.push(s.uncached);
            direct_phys.push(s.direct_phys);
        }
        System {
            workload: workload.to_string(),
            cores,
            required,
            uncached,
            direct_phys,
            llc: SetAssocCache::new(cfg.llc_sets, 16),
            pager: PageAllocator::new(geom.total_bytes()),
            mapper: AddressMapper::mop4(geom),
            mcs,
            token_owner: FxHashMap::default(),
            next_token: 1,
            issued_this_pass: false,
            telemetry: Telemetry::disabled(),
            faults: None,
            cfg,
        }
    }

    /// Installs a fault injector, ticked once per simulation quantum.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Attaches a telemetry handle, cloned down through both memory
    /// controllers into the devices and their mitigation engines.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for mc in &mut self.mcs {
            mc.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    fn enqueue(&mut self, pa: u64, kind: AccessKind, now: Ps, owner: Option<usize>) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let addr = self.mapper.decode(pa);
        if let Some(core) = owner {
            self.token_owner.insert(token, core);
        }
        self.mcs[addr.bank.subch as usize].enqueue(Request {
            id: token,
            addr,
            kind,
            arrival: now,
        });
        self.issued_this_pass = true;
        token
    }

    fn memory_access(&mut self, core: usize, vaddr: u64, is_store: bool, now: Ps) -> AccessResult {
        let pa = if self.direct_phys[core] {
            vaddr % self.mapper.capacity()
        } else {
            self.pager.translate(core as u32, vaddr)
        };
        if self.uncached[core] {
            let token = self.enqueue(pa, AccessKind::Read, now, Some(core));
            return AccessResult::Pending(token);
        }
        match self.llc.access(pa / 64, is_store) {
            CacheOutcome::Hit => AccessResult::Ready,
            CacheOutcome::Miss { writeback } => {
                if let Some(line) = writeback {
                    self.enqueue(line * 64, AccessKind::Write, now, None);
                }
                let token = self.enqueue(pa, AccessKind::Read, now, Some(core));
                AccessResult::Pending(token)
            }
        }
    }

    /// Runs to completion and produces the report.
    ///
    /// # Panics
    /// Panics if the system stops making progress (a scheduling bug); use
    /// [`System::try_run`] where a stall should surface as an error.
    pub fn run(&mut self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs to completion and produces the report, or a
    /// [`SimError::Watchdog`] if forward progress stops (no work retired
    /// for the idle budget — `cfg.watchdog_idle_quanta` quanta of
    /// simulated time) or the optional `cfg.watchdog_wall` wall-clock
    /// budget is exhausted. On the error path, per-controller telemetry is
    /// flushed and any epoch series is closed at the stall boundary, so
    /// partial streams stay readable.
    ///
    /// Dispatches to the next-event skip-ahead core, or to the legacy
    /// eager per-quantum loop when `cfg.legacy_loop` is set. The two are
    /// bit-identical (pinned by `sim/tests/event_core.rs`).
    pub fn try_run(&mut self) -> Result<SimReport, SimError> {
        if self.cfg.legacy_loop {
            self.try_run_legacy()
        } else {
            self.try_run_event()
        }
    }

    /// The legacy eager loop: every quantum boundary is visited and every
    /// core re-run, whether or not anything can happen there. Kept for the
    /// loop-equivalence test and as a fallback (`--legacy-loop`).
    fn try_run_legacy(&mut self) -> Result<SimReport, SimError> {
        let quantum = self.cfg.quantum;
        let mut t_end = quantum;
        let mut completions: Vec<Completion> = Vec::new();
        let mut cores = std::mem::take(&mut self.cores);
        let mut idle_quanta = 0u64;
        let mut heartbeat = self.cfg.heartbeat_every.map(Heartbeat::new);
        // One handle clone up front so profiled closures over `self` don't
        // fight the borrow checker (same for the fault injector).
        let tel = self.telemetry.clone();
        let faults = self.faults.clone();
        let sample_epochs = tel.has_epochs();
        // The wall clock is only consulted when a budget is configured, so
        // unbudgeted runs stay bit-for-bit reproducible *and* syscall-free.
        let wall = self
            .cfg
            .watchdog_wall
            .map(|limit| (std::time::Instant::now(), limit));
        let mut stalled: Option<String> = None;
        let mut pass_tick: u32 = 0;
        while !cores
            .iter()
            .zip(&self.required)
            .all(|(c, req)| !req || c.finished())
        {
            if let Some(inj) = &faults {
                inj.tick(t_end, &mut self.mcs);
            }
            let mut progressed_in_quantum = false;
            loop {
                self.issued_this_pass = false;
                let mut delivered = false;
                // Same 1-in-PASS_SAMPLE span sampling as the event core.
                pass_tick = pass_tick.wrapping_add(1);
                let p = if pass_tick.is_multiple_of(PASS_SAMPLE) {
                    tel.profile_start()
                } else {
                    None
                };
                for core in cores.iter_mut() {
                    if core.finished() {
                        continue;
                    }
                    let id = core.id() as usize;
                    let _status: RunStatus =
                        core.run(t_end, |v, s, now| self.memory_access(id, v, s, now));
                }
                let p = tel.profile_next_scaled(Phase::Frontend, p, PASS_SAMPLE);
                for mc in &mut self.mcs {
                    mc.run_until(t_end, &mut completions);
                }
                let p = tel.profile_next_scaled(Phase::Device, p, PASS_SAMPLE);
                for c in completions.drain(..) {
                    if let Some(owner) = self.token_owner.remove(&c.id) {
                        cores[owner].complete(c.id, c.done_at);
                        delivered = true;
                    }
                }
                tel.profile_end_scaled(Phase::Scheduler, p, PASS_SAMPLE);
                if !(self.issued_this_pass || delivered) {
                    break;
                }
                progressed_in_quantum = true;
            }
            if progressed_in_quantum {
                idle_quanta = 0;
            } else {
                idle_quanta += 1;
                if idle_quanta >= self.cfg.watchdog_idle_quanta {
                    stalled = Some(format!("no forward progress for {idle_quanta} quanta"));
                    break;
                }
            }
            if let Some((started, limit)) = wall {
                if started.elapsed() >= limit {
                    stalled = Some(format!(
                        "wall-clock budget of {:.1}s exhausted",
                        limit.as_secs_f64()
                    ));
                    break;
                }
            }
            let p = tel.profile_start();
            if let Some(hb) = heartbeat.as_mut() {
                let retired = cores.iter().map(Core::instructions).sum();
                if let Some(line) = hb.tick(retired, t_end.as_ps()) {
                    // Locked, single-write stderr line: parallel sweep
                    // workers heartbeat concurrently without splicing.
                    mirza_telemetry::progress::line(&line);
                }
            }
            if sample_epochs {
                self.update_epoch_inputs(&cores);
                tel.epoch_tick(t_end.as_ps());
            }
            tel.profile_end(Phase::Io, p);
            t_end += quantum;
        }
        self.cores = cores;
        for mc in &mut self.mcs {
            mc.finish_telemetry();
        }
        if sample_epochs {
            // Close the series at the last simulated boundary (emits a
            // trailing partial epoch when the epoch length is not a
            // multiple of the quantum). A stalled run closes at the stall
            // boundary itself so the partial stream stays flushable.
            let boundary = if stalled.is_some() {
                t_end
            } else {
                t_end - quantum
            };
            tel.epoch_finish(boundary.as_ps());
        }
        if let Some(reason) = stalled {
            return Err(SimError::Watchdog {
                reason,
                instructions: self.cores.iter().map(Core::instructions).sum(),
                sim_time_ps: t_end.as_ps(),
            });
        }
        if self.cfg.track_row_acts {
            let max = self
                .mcs
                .iter()
                .filter_map(|mc| mc.device().auditor())
                .map(|a| u64::from(a.max_row_acts()))
                .max()
                .unwrap_or(0);
            tel.set_counter(names::AUDIT_MAX_ROW_ACTS, max);
        }
        let p = tel.profile_start();
        let report = self.build_report();
        tel.profile_end(Phase::Report, p);
        // Terminate the span layer's Chrome trace after the report snapshot
        // (the attribution summary is already embedded in it).
        tel.spans_finish();
        Ok(report)
    }

    /// The next-event skip-ahead loop. Semantically identical to
    /// [`System::try_run_legacy`] — `sim/tests/event_core.rs` pins the two
    /// bit-identical — but it avoids provably-idle work along two axes:
    ///
    /// - **Core parking.** A core that returned [`RunStatus::Blocked`] can
    ///   do nothing until a completion reaches it: re-running it repeats
    ///   the same failed MSHR/ROB check without side effects. Blocked cores
    ///   are parked and woken by the delivery that unblocks them.
    ///   Completions whose `done_at` lies beyond the current horizon are
    ///   buffered as wake-up times and mature at the first boundary that
    ///   covers them — the boundary where the legacy loop's eager re-run
    ///   stops being a no-op.
    /// - **Quantum skipping.** When every unfinished core is blocked, the
    ///   clock jumps to the first quantum boundary that can host an event:
    ///   the min over each controller's next legal command instant
    ///   (`MemController::next_event_ps`), buffered future completions, the
    ///   fault injector's next due time, and the watchdog deadline. The
    ///   boundaries in between are no-ops in the legacy loop (no issue, no
    ///   delivery, no RNG draw), so skipping them changes no simulator
    ///   state — only wall-clock time.
    ///
    /// The watchdog budget is simulated time (`quantum *
    /// watchdog_idle_quanta` ps) rather than a count of visited boundaries,
    /// so a skip cannot out-run it: the skip bound caps at the deadline,
    /// the loop lands there, and the stall fires at the same boundary the
    /// legacy loop would have chosen.
    fn try_run_event(&mut self) -> Result<SimReport, SimError> {
        let quantum = self.cfg.quantum;
        let mut t_end = quantum;
        let mut completions: Vec<Completion> = Vec::new();
        let mut cores = std::mem::take(&mut self.cores);
        let mut heartbeat = self.cfg.heartbeat_every.map(Heartbeat::new);
        let tel = self.telemetry.clone();
        let faults = self.faults.clone();
        let sample_epochs = tel.has_epochs();
        let opp = tel.has_opportunity();
        let wall = self
            .cfg
            .watchdog_wall
            .map(|limit| (std::time::Instant::now(), limit));
        let mut stalled: Option<String> = None;
        // Watchdog idle budget in simulated picoseconds. A zero quantum
        // (run_stalled) gives a zero budget: the stall fires at the first
        // idle boundary, with nothing skippable in between.
        let idle_budget_ps = quantum
            .as_ps()
            .saturating_mul(self.cfg.watchdog_idle_quanta);
        let mut last_progress_end = Ps::ZERO;
        // Per-core scheduling state: `runnable` marks cores the frontend
        // must run at the current boundary; `status` holds each core's last
        // RunStatus; `future` buffers delivered completions that mature
        // beyond the current horizon, as wake-up times.
        let mut runnable = vec![true; cores.len()];
        let mut status = vec![RunStatus::HorizonReached; cores.len()];
        let mut future: Vec<Vec<Ps>> = vec![Vec::new(); cores.len()];
        let mut pass_tick: u32 = 0;
        loop {
            let done = cores
                .iter()
                .zip(&self.required)
                .all(|(c, req)| !req || c.finished());
            if done {
                break;
            }
            if let Some(inj) = &faults {
                inj.tick(t_end, &mut self.mcs);
            }
            let mut progressed_in_quantum = false;
            loop {
                self.issued_this_pass = false;
                let mut delivered = false;
                // Sampled phase spans: time 1-in-PASS_SAMPLE passes and
                // scale up, so the per-pass clock reads stay off the
                // profile (see `profile_next_scaled`).
                pass_tick = pass_tick.wrapping_add(1);
                let p = if pass_tick.is_multiple_of(PASS_SAMPLE) {
                    tel.profile_start()
                } else {
                    None
                };
                for core in cores.iter_mut() {
                    let id = core.id() as usize;
                    if core.finished() || !runnable[id] {
                        continue;
                    }
                    runnable[id] = false;
                    status[id] = core.run(t_end, |v, s, now| self.memory_access(id, v, s, now));
                }
                let p = tel.profile_next_scaled(Phase::Frontend, p, PASS_SAMPLE);
                for mc in &mut self.mcs {
                    mc.run_until(t_end, &mut completions);
                }
                let p = tel.profile_next_scaled(Phase::Device, p, PASS_SAMPLE);
                for c in completions.drain(..) {
                    if let Some(owner) = self.token_owner.remove(&c.id) {
                        cores[owner].complete(c.id, c.done_at);
                        if c.done_at > t_end {
                            future[owner].push(c.done_at);
                        } else {
                            runnable[owner] = true;
                        }
                        delivered = true;
                    }
                }
                tel.profile_end_scaled(Phase::Scheduler, p, PASS_SAMPLE);
                if !(self.issued_this_pass || delivered) {
                    break;
                }
                progressed_in_quantum = true;
            }
            if progressed_in_quantum {
                last_progress_end = t_end;
            } else {
                let idle_ps = t_end.as_ps() - last_progress_end.as_ps();
                if idle_ps >= idle_budget_ps {
                    let n = if quantum > Ps::ZERO {
                        idle_ps / quantum.as_ps()
                    } else {
                        self.cfg.watchdog_idle_quanta
                    };
                    stalled = Some(format!("no forward progress for {n} quanta"));
                    break;
                }
            }
            if let Some((started, limit)) = wall {
                if started.elapsed() >= limit {
                    stalled = Some(format!(
                        "wall-clock budget of {:.1}s exhausted",
                        limit.as_secs_f64()
                    ));
                    break;
                }
            }
            let p = tel.profile_start();
            if let Some(hb) = heartbeat.as_mut() {
                let retired = cores.iter().map(Core::instructions).sum();
                if let Some(line) = hb.tick(retired, t_end.as_ps()) {
                    // Locked, single-write stderr line: parallel sweep
                    // workers heartbeat concurrently without splicing.
                    mirza_telemetry::progress::line(&line);
                }
            }
            if sample_epochs {
                self.update_epoch_inputs(&cores);
                tel.epoch_tick(t_end.as_ps());
            }
            tel.profile_end(Phase::Io, p);
            let mut next = t_end + quantum;
            let required_pending = cores
                .iter()
                .zip(&self.required)
                .any(|(c, req)| *req && !c.finished());
            if required_pending
                && quantum > Ps::ZERO
                && cores
                    .iter()
                    .all(|c| c.finished() || status[c.id() as usize] == RunStatus::Blocked)
            {
                // Min over everything that could make a boundary non-idle.
                let mut bound = last_progress_end.as_ps().saturating_add(idle_budget_ps);
                for mc in &mut self.mcs {
                    bound = bound.min(mc.next_event_ps().as_ps());
                }
                for waits in &future {
                    for d in waits {
                        bound = bound.min(d.as_ps());
                    }
                }
                if let Some(inj) = &faults {
                    if let Some(due) = inj.next_due_ps() {
                        bound = bound.min(due.as_ps());
                    }
                }
                if bound > next.as_ps() {
                    // Land on the first quantum boundary covering the
                    // bound, so fault firing and completion delivery happen
                    // at the same boundary the legacy loop uses.
                    let k = (bound - t_end.as_ps()).div_ceil(quantum.as_ps());
                    next = t_end + quantum * k;
                    if opp {
                        tel.observe(names::SIM_OPP_SKIP_TAKEN_NS, (next - t_end).as_ps() / 1000);
                    }
                }
            }
            for (i, core) in cores.iter().enumerate() {
                if core.finished() {
                    continue;
                }
                if status[i] != RunStatus::Blocked {
                    runnable[i] = true;
                }
                let waits = &mut future[i];
                if !waits.is_empty() {
                    let before = waits.len();
                    waits.retain(|d| *d > next);
                    if waits.len() < before {
                        runnable[i] = true;
                    }
                }
            }
            t_end = next;
        }
        self.cores = cores;
        for mc in &mut self.mcs {
            mc.finish_telemetry();
        }
        if sample_epochs {
            let boundary = if stalled.is_some() {
                t_end
            } else {
                t_end - quantum
            };
            tel.epoch_finish(boundary.as_ps());
        }
        if let Some(reason) = stalled {
            return Err(SimError::Watchdog {
                reason,
                instructions: self.cores.iter().map(Core::instructions).sum(),
                sim_time_ps: t_end.as_ps(),
            });
        }
        if self.cfg.track_row_acts {
            let max = self
                .mcs
                .iter()
                .filter_map(|mc| mc.device().auditor())
                .map(|a| u64::from(a.max_row_acts()))
                .max()
                .unwrap_or(0);
            tel.set_counter(names::AUDIT_MAX_ROW_ACTS, max);
        }
        let p = tel.profile_start();
        let report = self.build_report();
        tel.profile_end(Phase::Report, p);
        tel.spans_finish();
        Ok(report)
    }

    /// Refreshes the counters/gauges the epoch sampler snapshots: per-core
    /// retired instructions (IPC series), aggregate instructions, MC queue
    /// depth, and open-bank parallelism. Tracker/mitigation rates are
    /// incremented at their call sites; RCT gauges are set by the engine.
    fn update_epoch_inputs(&self, cores: &[Core]) {
        let mut retired = 0u64;
        for (i, c) in cores.iter().enumerate() {
            retired += c.instructions();
            if let Some(name) = names::CORE_INSTR.get(i) {
                self.telemetry.set_counter(name, c.instructions());
            }
        }
        self.telemetry.set_counter(names::SIM_INSTRUCTIONS, retired);
        let pending: usize = self.mcs.iter().map(MemController::pending_requests).sum();
        self.telemetry
            .set_gauge(names::MC_QUEUE_DEPTH, pending as f64);
        let open: usize = self.mcs.iter().map(|m| m.device().open_banks()).sum();
        self.telemetry
            .set_gauge(names::DRAM_OPEN_BANKS, open as f64);
    }

    fn build_report(&self) -> SimReport {
        let timing = self.cfg.timing();
        let mut device = DeviceStats::default();
        let mut mitigation = MitigationStats::default();
        let mut mc_stats = McStats::default();
        let mut hist = Vec::new();
        for mc in &self.mcs {
            let d = mc.device().stats();
            device.acts += d.acts;
            device.pres += d.pres;
            device.reads += d.reads;
            device.writes += d.writes;
            device.refs += d.refs;
            device.rfms_proactive += d.rfms_proactive;
            device.rfms_alert += d.rfms_alert;
            device.alerts += d.alerts;
            device.demand_refresh_rows += d.demand_refresh_rows;
            device.bus_busy_ps += d.bus_busy_ps;
            let m = mc.device().mitigation_stats();
            mitigation.acts_observed += m.acts_observed;
            mitigation.acts_filtered += m.acts_filtered;
            mitigation.acts_candidate += m.acts_candidate;
            mitigation.mitigations += m.mitigations;
            mitigation.victim_rows_refreshed += m.victim_rows_refreshed;
            mitigation.alerts_requested += m.alerts_requested;
            mitigation.ref_mitigations += m.ref_mitigations;
            let s = mc.stats();
            mc_stats.row_hits += s.row_hits;
            mc_stats.row_misses += s.row_misses;
            mc_stats.row_conflicts += s.row_conflicts;
            mc_stats.reads_done += s.reads_done;
            mc_stats.writes_done += s.writes_done;
            mc_stats.read_latency_ps += s.read_latency_ps;
            mc_stats.alerts_serviced += s.alerts_serviced;
            mc_stats.rfms_issued += s.rfms_issued;
            hist.extend_from_slice(mc.device().acts_per_subarray());
        }
        let elapsed = self
            .cores
            .iter()
            .zip(&self.required)
            .filter(|(_, req)| **req)
            .map(|(c, _)| c.time())
            .max()
            .unwrap_or(Ps::ZERO);
        if self.telemetry.is_enabled() {
            for &acts in &hist {
                self.telemetry.observe(names::DRAM_ACTS_PER_SUBARRAY, acts);
            }
            let llc_total = self.llc.hits() + self.llc.misses();
            if llc_total > 0 {
                self.telemetry.set_gauge(
                    names::LLC_HIT_RATE,
                    self.llc.hits() as f64 / llc_total as f64,
                );
            }
            self.telemetry
                .set_gauge(names::SIM_ELAPSED_MS, elapsed.as_ps() as f64 / 1e9);
            let mshr: u64 = self.cores.iter().map(|c| c.mshr_stall().as_ps()).sum();
            let rob: u64 = self.cores.iter().map(|c| c.rob_stall().as_ps()).sum();
            self.telemetry.set_counter(names::CORE_MSHR_STALL_PS, mshr);
            self.telemetry.set_counter(names::CORE_ROB_STALL_PS, rob);
        }
        SimReport {
            label: self.cfg.mitigation.label(),
            workload: self.workload.clone(),
            core_ipc: self
                .cores
                .iter()
                .zip(&self.required)
                .filter(|(_, req)| **req)
                .map(|(c, _)| c.ipc())
                .collect(),
            instructions: self.cores.iter().map(Core::instructions).sum(),
            elapsed,
            device,
            mitigation,
            mc: mc_stats,
            acts_per_subarray: hist,
            llc_hits: self.llc.hits(),
            llc_misses: self.llc.misses(),
            t_refi: timing.t_refi,
            t_refw: timing.t_refw,
            subchannels: self.cfg.geometry.subchannels,
            attribution: self.telemetry.spans_summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MitigationConfig;
    use mirza_frontend::trace::{TraceOp, VecStream};

    fn stream(n: usize) -> Box<VecStream> {
        Box::new(VecStream::once(
            (0..n)
                .map(|i| TraceOp {
                    nonmem: 9,
                    vaddr: (i as u64) * 64 * 97, // scattered lines
                    is_store: i % 5 == 0,
                })
                .collect(),
        ))
    }

    #[test]
    fn baseline_system_completes() {
        let cfg = SimConfig::new(MitigationConfig::None, 20_000);
        let setups = (0..2)
            .map(|_| CoreSetup::benign(stream(2_000), 20_000))
            .collect();
        let mut sys = System::new(cfg, "unit", setups);
        let r = sys.run();
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.instructions >= 40_000);
        assert!(r.elapsed > Ps::ZERO);
        assert!(r.device.acts > 0, "misses must reach DRAM");
        assert!(r.llc_misses > 0);
        for ipc in &r.core_ipc {
            assert!(*ipc > 0.0 && *ipc <= 4.0, "ipc {ipc}");
        }
    }

    #[test]
    fn prac_timing_slows_conflict_streams() {
        // A stream of row conflicts in one bank is directly limited by tRC:
        // PRAC (52 ns) must be measurably slower than baseline (46 ns).
        let make = |mit| {
            let cfg = SimConfig::new(mit, 10_000);
            // Strided rows in the same bank: consecutive stripes 4 KB apart
            // in PA cycle banks; use large stride to revisit bank 0.
            let ops: Vec<TraceOp> = (0..1500u64)
                .map(|i| TraceOp {
                    nonmem: 3,
                    vaddr: i * 64 * 4 * 64 * 17, // jump rows, same few banks
                    is_store: false,
                })
                .collect();
            let setups = vec![CoreSetup::benign(Box::new(VecStream::once(ops)), 10_000)];
            let mut sys = System::new(cfg, "conflicts", setups);
            sys.run()
        };
        let base = make(MitigationConfig::None);
        let prac = make(MitigationConfig::PracAbo { trhd: 1000 });
        let slowdown = prac.slowdown_pct(&base);
        assert!(
            slowdown > 1.0,
            "PRAC should slow a conflict-bound stream, got {slowdown:.2}%"
        );
    }

    #[test]
    fn mint_rfm_issues_rfms() {
        let cfg = SimConfig::new(MitigationConfig::MintRfm { bat: 8 }, 10_000);
        let setups = vec![CoreSetup::benign(stream(3_000), 10_000)];
        let mut sys = System::new(cfg, "rfm", setups);
        let r = sys.run();
        assert!(r.device.rfms_proactive > 0);
        assert!(r.mitigation.mitigations > 0);
        assert!(r.refresh_power_overhead_pct() > 0.0);
    }

    #[test]
    fn attacker_core_does_not_gate_completion() {
        let cfg = SimConfig::new(MitigationConfig::None, 5_000);
        let attack = VecStream::looping(vec![TraceOp {
            nonmem: 0,
            vaddr: 0,
            is_store: false,
        }]);
        let setups = vec![
            CoreSetup::benign(stream(1_000), 5_000),
            CoreSetup::attacker(Box::new(attack)),
        ];
        let mut sys = System::new(cfg, "dos", setups);
        let r = sys.run();
        // Only the benign core is reported.
        assert_eq!(r.core_ipc.len(), 1);
    }
}
