//! Monte-Carlo attack engine: replays worst-case activation patterns
//! against any [`Mitigator`] and measures the maximum number of unmitigated
//! activations any row accrues (the quantity bounded by Section VI's
//! `TRH_safe` equations).
//!
//! Accounting (per DESIGN.md): a row's unmitigated count increments on each
//! of its ACTs and resets when (a) the row is mitigated as an aggressor
//! (its victims are refreshed), or (b) the refresh-pointer walk refreshes
//! the row (a <=1-REF-slice approximation of its victims' refresh).

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::Mitigator;
use mirza_dram::refresh::RefreshPointer;
use mirza_dram::time::Ps;
use mirza_dram::timing::TimingParams;
use mirza_workloads::attacks::RowPattern;

/// ACTs the attacker can land during one ALERT prologue (180 ns / tRC).
pub const PROLOGUE_ACTS: u32 = 3;

/// Activation slots consumed by the ALERT stall (350 ns / tRC, rounded up).
pub const STALL_SLOTS: u32 = 8;

/// Result of one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Maximum unmitigated ACTs observed on any row at any instant.
    pub max_unmitigated_acts: u32,
    /// Total attacker activations performed.
    pub total_acts: u64,
    /// ALERT back-offs serviced.
    pub alerts: u64,
    /// REF commands elapsed.
    pub refs: u64,
}

/// Replays activation patterns against a mitigator with a faithful
/// REF/ALERT timeline for one bank.
pub struct HammerHarness<'a> {
    mitigator: &'a mut dyn Mitigator,
    mapping: RowMapping,
    bank: usize,
    counts: Vec<u32>,
    max: u32,
    refptr: RefreshPointer,
    acts_per_interval: u32,
    now: Ps,
    t_rc: Ps,
    acts_since_alert: u32,
    outcome: AttackOutcome,
}

impl<'a> HammerHarness<'a> {
    /// Creates a harness attacking `bank` of `geom` through `mitigator`.
    /// The attacker ACT budget per REF interval comes from `timing`
    /// (`(tREFI - tRFC)/tRC`, 75 for baseline DDR5-6000).
    pub fn new(
        mitigator: &'a mut dyn Mitigator,
        geom: &Geometry,
        timing: &TimingParams,
        bank: usize,
    ) -> Self {
        let mapping = mitigator
            .mapping()
            .copied()
            .unwrap_or_else(|| RowMapping::for_geometry(MappingScheme::Sequential, geom));
        let acts_per_interval =
            ((timing.t_refi.as_ps() - timing.t_rfc.as_ps()) / timing.t_rc.as_ps()) as u32;
        HammerHarness {
            mitigator,
            mapping,
            bank,
            counts: vec![0; geom.rows_per_bank as usize],
            max: 0,
            refptr: RefreshPointer::new(geom.rows_per_bank, geom.rows_per_ref),
            acts_per_interval,
            now: Ps::ZERO,
            t_rc: timing.t_rc,
            acts_since_alert: 1,
            outcome: AttackOutcome {
                max_unmitigated_acts: 0,
                total_acts: 0,
                alerts: 0,
                refs: 0,
            },
        }
    }

    /// Attacker ACT slots per REF interval.
    pub fn acts_per_interval(&self) -> u32 {
        self.acts_per_interval
    }

    /// Current unmitigated count of `row`.
    pub fn count(&self, row: u32) -> u32 {
        self.counts[row as usize]
    }

    fn act(&mut self, row: u32) {
        self.mitigator.on_activate(self.bank, row, self.now);
        self.now += self.t_rc;
        self.acts_since_alert += 1;
        self.outcome.total_acts += 1;
        let c = &mut self.counts[row as usize];
        *c += 1;
        if *c > self.max {
            self.max = *c;
        }
    }

    fn apply_mitigations(&mut self) {
        for (bank, row) in self.mitigator.drain_mitigations() {
            if bank == self.bank {
                self.counts[row as usize] = 0;
            }
        }
    }

    /// Runs one REF interval of attacker activations from `pattern`,
    /// honoring the ALERT protocol, then the REF itself.
    pub fn interval(&mut self, pattern: &mut RowPattern) {
        let mut budget = i64::from(self.acts_per_interval);
        while budget > 0 {
            if self.mitigator.alert_pending() && self.acts_since_alert >= 1 {
                for _ in 0..PROLOGUE_ACTS {
                    if budget > 0 {
                        let row = pattern.next_act();
                        self.act(row);
                        budget -= 1;
                    }
                }
                budget -= i64::from(STALL_SLOTS);
                self.now += self.t_rc * u64::from(STALL_SLOTS);
                self.mitigator.on_rfm(true, self.now);
                self.outcome.alerts += 1;
                self.acts_since_alert = 0;
                self.apply_mitigations();
            } else {
                let row = pattern.next_act();
                self.act(row);
                budget -= 1;
            }
        }
        self.ref_step();
    }

    /// Runs one idle REF interval (no attacker ACTs).
    pub fn idle_interval(&mut self) {
        self.ref_step();
    }

    fn ref_step(&mut self) {
        let slice = self.refptr.advance();
        self.mitigator.on_ref(&slice, self.now);
        for phys in slice.phys_rows.clone() {
            self.counts[self.mapping.row_of(phys) as usize] = 0;
        }
        self.apply_mitigations();
        self.outcome.refs += 1;
        self.now += Ps::from_ns(3900);
    }

    /// Performs exactly `n` attacker ACTs without advancing refresh
    /// (scenario scripting helper; regular runs use [`interval`]).
    ///
    /// [`interval`]: HammerHarness::interval
    pub fn burst(&mut self, pattern: &mut RowPattern, n: u32) {
        for _ in 0..n {
            if self.mitigator.alert_pending() && self.acts_since_alert >= 1 {
                self.mitigator.on_rfm(true, self.now);
                self.outcome.alerts += 1;
                self.acts_since_alert = 0;
                self.apply_mitigations();
            }
            let row = pattern.next_act();
            self.act(row);
        }
    }

    /// Finishes and reports.
    pub fn finish(mut self) -> AttackOutcome {
        self.outcome.max_unmitigated_acts = self.max;
        self.outcome
    }
}

/// Runs `pattern` flat-out for `refs` REF intervals and reports.
pub fn run_hammer(
    mitigator: &mut dyn Mitigator,
    geom: &Geometry,
    timing: &TimingParams,
    bank: usize,
    pattern: &mut RowPattern,
    refs: u64,
) -> AttackOutcome {
    let mut h = HammerHarness::new(mitigator, geom, timing, bank);
    for _ in 0..refs {
        h.interval(pattern);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_core::config::MirzaConfig;
    use mirza_core::mirza::Mirza;
    use mirza_core::rct::ResetPolicy;
    use mirza_trackers::prac::PracMoat;
    use mirza_trackers::trr::Trr;

    fn geom() -> Geometry {
        Geometry::ddr5_32gb()
    }

    fn timing() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn interval_budget_is_75() {
        let mut m = Mirza::new(MirzaConfig::trhd_1000(), &geom(), 1);
        let h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
        assert_eq!(h.acts_per_interval(), 75);
    }

    #[test]
    fn mirza_bounds_double_sided_attack() {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 7);
        let mapping = *m.mapping().unwrap();
        let mut pattern = RowPattern::double_sided(&mapping, 5_000);
        // One full refresh window of flat-out hammering.
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(out.total_acts > 300_000);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
        assert!(out.alerts > 0, "the attack must be forcing ALERTs");
    }

    #[test]
    fn mirza_bounds_single_row_hammer() {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 11);
        let mut pattern = RowPattern::single_sided(9_999);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhs(),
            "max {} >= TRHS bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhs()
        );
    }

    #[test]
    fn mirza_bounds_feinting_style_queue_attack() {
        // Many rows of one region cycled to keep MIRZA-Q populated
        // (Figure 10's multi-entry pressure + Figure 12 kernel).
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 13);
        let mapping = *m.mapping().unwrap();
        let regions = *m.rct().unwrap().regions();
        let mut pattern = RowPattern::same_region(&mapping, &regions, 3, 8);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }

    #[test]
    fn prac_moat_bounds_everything_cheaply() {
        let mut p = PracMoat::new(250, &geom());
        let mut pattern = RowPattern::single_sided(4_242);
        let out = run_hammer(&mut p, &geom(), &timing(), 0, &mut pattern, 1024);
        // MOAT mitigates at ATH; slack is the ABO episode only.
        assert!(
            out.max_unmitigated_acts <= 250 + PROLOGUE_ACTS + 1,
            "max {}",
            out.max_unmitigated_acts
        );
    }

    #[test]
    fn trr_is_broken_by_decoy_pattern() {
        // 56 decoys hammered 2x per cycle keep the 28-entry table's top
        // counts; 2 real aggressors at 1x per cycle never become pop_max
        // targets and accrue unmitigated ACTs past today's TRHD of 4.8K.
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8); // decoys twice per cycle
        }
        rows.push(20_001); // aggressors once per cycle
        rows.push(20_003);
        let mut t = Trr::ddr4_like(&geom());
        let mut pattern = RowPattern::circular(rows);
        // Two refresh windows so a full window-length unmitigated run
        // (between two refreshes of the aggressor) is observed.
        let out = run_hammer(&mut t, &geom(), &timing(), 0, &mut pattern, 16384);
        assert!(
            out.max_unmitigated_acts > 4_800,
            "TRR unexpectedly held: max {}",
            out.max_unmitigated_acts
        );
    }

    #[test]
    fn mirza_stops_the_trr_breaking_pattern() {
        // The same decoy pattern against MIRZA configured for TRHD=4.8K
        // (Table XII) stays bounded.
        let cfg = MirzaConfig::trhd_4800();
        let mut m = Mirza::new(cfg, &geom(), 17);
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8);
        }
        rows.push(20_001);
        rows.push(20_003);
        let mut pattern = RowPattern::circular(rows);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }

    #[test]
    fn mirza_bounds_half_double_and_blacksmith() {
        let cfg = MirzaConfig::trhd_1000();
        for (name, mut pattern) in [
            ("half-double", {
                let m = Mirza::new(cfg, &geom(), 19);
                RowPattern::half_double(m.mapping().unwrap(), 5_000)
            }),
            ("blacksmith", {
                let m = Mirza::new(cfg, &geom(), 19);
                RowPattern::blacksmith(m.mapping().unwrap(), 7, 24, 3)
            }),
        ] {
            let mut m = Mirza::new(cfg, &geom(), 19);
            let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 4096);
            assert!(
                out.max_unmitigated_acts < cfg.safe_trhs(),
                "{name}: {} >= {}",
                out.max_unmitigated_acts,
                cfg.safe_trhs()
            );
        }
    }

    #[test]
    fn refresh_resets_counts() {
        let mut m = Mirza::new(MirzaConfig::trhd_1000(), &geom(), 3);
        let mut h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
        // Hammer row address 0 (physical row 0, refreshed by the first REF).
        let mut p = RowPattern::single_sided(0);
        h.burst(&mut p, 10);
        assert_eq!(h.count(0), 10);
        h.idle_interval(); // REF slice 0..16 covers physical row 0
        assert_eq!(h.count(0), 0);
    }

    #[test]
    fn reset_policy_attack_breaks_eager_but_not_safe() {
        // Appendix B: hammer the target FTH-1 times just before the
        // region's first REF and FTH-1 times during the walk. Eager reset
        // double-counts the budget; safe reset (RRC) does not.
        let run = |policy: ResetPolicy| {
            let fth = 300;
            let cfg = MirzaConfig {
                fth,
                mint_w: 4,
                ..MirzaConfig::trhd_1000()
            };
            let mut m = Mirza::with_reset_policy(cfg, &geom(), 23, policy);
            let mapping = *m.mapping().unwrap();
            // Region 5 covers physical rows 5120..6144; its refresh walk is
            // REF steps 320..384. Target the region's last physical row.
            let target = mapping.row_of(6143);
            let mut h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
            let mut p = RowPattern::single_sided(target);
            for _ in 0..315 {
                h.idle_interval();
            }
            // Phase 1: FTH-1 ACTs right before the region's first REF.
            for _ in 315..319 {
                h.burst(&mut p, (fth - 1) / 4);
                h.idle_interval();
            }
            h.burst(&mut p, (fth - 1) - 4 * ((fth - 1) / 4));
            h.idle_interval(); // step 319
            h.idle_interval(); // step 320: the region's first REF (reset)
                               // Phase 2: FTH-1 ACTs while the region is being walked.
            for _ in 0..8 {
                h.burst(&mut p, (fth - 1) / 8);
                h.idle_interval();
            }
            let max = h.finish().max_unmitigated_acts;
            (max, fth)
        };
        let (eager, fth) = run(ResetPolicy::Eager);
        let (safe, _) = run(ResetPolicy::Safe);
        assert!(
            eager as f64 >= 1.7 * f64::from(fth),
            "eager reset should under-count: {eager} vs FTH {fth}"
        );
        assert!(
            (safe as f64) < 1.4 * f64::from(fth),
            "safe reset must bound the count: {safe} vs FTH {fth}"
        );
    }
}
