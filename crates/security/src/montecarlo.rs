//! Monte-Carlo attack engine: replays worst-case activation patterns
//! against any [`Mitigator`](mirza_dram::mitigation::Mitigator) and
//! measures the maximum number of unmitigated activations any row accrues
//! (the quantity bounded by Section VI's `TRH_safe` equations).
//!
//! The engine itself now lives in [`mirza_attacks::rig`], where it doubles
//! as the replay loop for the composable attack framework (strategy x
//! schedule x victim). This module re-exports the legacy entry points
//! unchanged — existing callers and the seed-pinned results keep working —
//! and retains the original end-to-end security tests, which exercise the
//! moved code through these paths.
//!
//! Accounting (per DESIGN.md): a row's unmitigated count increments on each
//! of its ACTs and resets when (a) the row is mitigated as an aggressor
//! (its victims are refreshed), or (b) the refresh-pointer walk refreshes
//! the row (a <=1-REF-slice approximation of its victims' refresh).

pub use mirza_attacks::rig::{
    run_hammer, AttackOutcome, HammerHarness, PatternRef, PROLOGUE_ACTS, STALL_SLOTS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_core::config::MirzaConfig;
    use mirza_core::mirza::Mirza;
    use mirza_core::rct::ResetPolicy;
    use mirza_dram::geometry::Geometry;
    use mirza_dram::mitigation::Mitigator;
    use mirza_dram::timing::TimingParams;
    use mirza_trackers::prac::PracMoat;
    use mirza_trackers::trr::Trr;
    use mirza_workloads::attacks::RowPattern;

    fn geom() -> Geometry {
        Geometry::ddr5_32gb()
    }

    fn timing() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn interval_budget_is_75() {
        let mut m = Mirza::new(MirzaConfig::trhd_1000(), &geom(), 1);
        let h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
        assert_eq!(h.acts_per_interval(), 75);
    }

    #[test]
    fn mirza_bounds_double_sided_attack() {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 7);
        let mapping = *m.mapping().unwrap();
        let mut pattern = RowPattern::double_sided(&mapping, 5_000);
        // One full refresh window of flat-out hammering.
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(out.total_acts > 300_000);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
        assert!(out.alerts > 0, "the attack must be forcing ALERTs");
    }

    #[test]
    fn mirza_bounds_single_row_hammer() {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 11);
        let mut pattern = RowPattern::single_sided(9_999);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhs(),
            "max {} >= TRHS bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhs()
        );
    }

    #[test]
    fn mirza_bounds_feinting_style_queue_attack() {
        // Many rows of one region cycled to keep MIRZA-Q populated
        // (Figure 10's multi-entry pressure + Figure 12 kernel).
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom(), 13);
        let mapping = *m.mapping().unwrap();
        let regions = *m.rct().unwrap().regions();
        let mut pattern = RowPattern::same_region(&mapping, &regions, 3, 8);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }

    #[test]
    fn prac_moat_bounds_everything_cheaply() {
        let mut p = PracMoat::new(250, &geom());
        let mut pattern = RowPattern::single_sided(4_242);
        let out = run_hammer(&mut p, &geom(), &timing(), 0, &mut pattern, 1024);
        // MOAT mitigates at ATH; slack is the ABO episode only.
        assert!(
            out.max_unmitigated_acts <= 250 + PROLOGUE_ACTS + 1,
            "max {}",
            out.max_unmitigated_acts
        );
    }

    #[test]
    fn trr_is_broken_by_decoy_pattern() {
        // 56 decoys hammered 2x per cycle keep the 28-entry table's top
        // counts; 2 real aggressors at 1x per cycle never become pop_max
        // targets and accrue unmitigated ACTs past today's TRHD of 4.8K.
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8); // decoys twice per cycle
        }
        rows.push(20_001); // aggressors once per cycle
        rows.push(20_003);
        let mut t = Trr::ddr4_like(&geom());
        let mut pattern = RowPattern::circular(rows);
        // Two refresh windows so a full window-length unmitigated run
        // (between two refreshes of the aggressor) is observed.
        let out = run_hammer(&mut t, &geom(), &timing(), 0, &mut pattern, 16384);
        assert!(
            out.max_unmitigated_acts > 4_800,
            "TRR unexpectedly held: max {}",
            out.max_unmitigated_acts
        );
    }

    #[test]
    fn mirza_stops_the_trr_breaking_pattern() {
        // The same decoy pattern against MIRZA configured for TRHD=4.8K
        // (Table XII) stays bounded.
        let cfg = MirzaConfig::trhd_4800();
        let mut m = Mirza::new(cfg, &geom(), 17);
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8);
        }
        rows.push(20_001);
        rows.push(20_003);
        let mut pattern = RowPattern::circular(rows);
        let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 8192);
        assert!(
            out.max_unmitigated_acts < cfg.safe_trhd(),
            "max {} >= bound {}",
            out.max_unmitigated_acts,
            cfg.safe_trhd()
        );
    }

    #[test]
    fn mirza_bounds_half_double_and_blacksmith() {
        let cfg = MirzaConfig::trhd_1000();
        for (name, mut pattern) in [
            ("half-double", {
                let m = Mirza::new(cfg, &geom(), 19);
                RowPattern::half_double(m.mapping().unwrap(), 5_000)
            }),
            ("blacksmith", {
                let m = Mirza::new(cfg, &geom(), 19);
                RowPattern::blacksmith(m.mapping().unwrap(), 7, 24, 3)
            }),
        ] {
            let mut m = Mirza::new(cfg, &geom(), 19);
            let out = run_hammer(&mut m, &geom(), &timing(), 0, &mut pattern, 4096);
            assert!(
                out.max_unmitigated_acts < cfg.safe_trhs(),
                "{name}: {} >= {}",
                out.max_unmitigated_acts,
                cfg.safe_trhs()
            );
        }
    }

    #[test]
    fn refresh_resets_counts() {
        let mut m = Mirza::new(MirzaConfig::trhd_1000(), &geom(), 3);
        let mut h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
        // Hammer row address 0 (physical row 0, refreshed by the first REF).
        let mut p = RowPattern::single_sided(0);
        h.burst(&mut p, 10);
        assert_eq!(h.count(0), 10);
        h.idle_interval(); // REF slice 0..16 covers physical row 0
        assert_eq!(h.count(0), 0);
    }

    #[test]
    fn reset_policy_attack_breaks_eager_but_not_safe() {
        // Appendix B: hammer the target FTH-1 times just before the
        // region's first REF and FTH-1 times during the walk. Eager reset
        // double-counts the budget; safe reset (RRC) does not.
        let run = |policy: ResetPolicy| {
            let fth = 300;
            let cfg = MirzaConfig {
                fth,
                mint_w: 4,
                ..MirzaConfig::trhd_1000()
            };
            let mut m = Mirza::with_reset_policy(cfg, &geom(), 23, policy);
            let mapping = *m.mapping().unwrap();
            // Region 5 covers physical rows 5120..6144; its refresh walk is
            // REF steps 320..384. Target the region's last physical row.
            let target = mapping.row_of(6143);
            let mut h = HammerHarness::new(&mut m, &geom(), &timing(), 0);
            let mut p = RowPattern::single_sided(target);
            for _ in 0..315 {
                h.idle_interval();
            }
            // Phase 1: FTH-1 ACTs right before the region's first REF.
            for _ in 315..319 {
                h.burst(&mut p, (fth - 1) / 4);
                h.idle_interval();
            }
            h.burst(&mut p, (fth - 1) - 4 * ((fth - 1) / 4));
            h.idle_interval(); // step 319
            h.idle_interval(); // step 320: the region's first REF (reset)
                               // Phase 2: FTH-1 ACTs while the region is being walked.
            for _ in 0..8 {
                h.burst(&mut p, (fth - 1) / 8);
                h.idle_interval();
            }
            let max = h.finish().max_unmitigated_acts;
            (max, fth)
        };
        let (eager, fth) = run(ResetPolicy::Eager);
        let (safe, _) = run(ResetPolicy::Safe);
        assert!(
            eager as f64 >= 1.7 * f64::from(fth),
            "eager reset should under-count: {eager} vs FTH {fth}"
        );
        assert!(
            (safe as f64) < 1.4 * f64::from(fth),
            "safe reset must bound the count: {safe} vs FTH {fth}"
        );
    }
}
