//! Power model (Section VIII-B): refresh energy accounting is measured by
//! the simulator; the SRAM structures' static/dynamic power comes from the
//! paper's CACTI-7.0 estimate.

/// CACTI-7.0 estimate for MIRZA's SRAM structures, per chip (milliwatts).
pub const MIRZA_SRAM_MW_PER_CHIP: f64 = 0.6;

/// Typical DRAM chip power the paper normalizes against (milliwatts).
pub const DRAM_CHIP_MW: f64 = 240.0;

/// MIRZA SRAM power as a fraction of chip power (~0.25%).
pub fn mirza_sram_power_fraction() -> f64 {
    MIRZA_SRAM_MW_PER_CHIP / DRAM_CHIP_MW
}

/// Refresh power overhead of a mitigation given victim and demand refresh
/// row counts (the Figure 3 / Figure 13 metric).
pub fn refresh_power_overhead(victim_rows: u64, demand_rows: u64) -> f64 {
    if demand_rows == 0 {
        0.0
    } else {
        victim_rows as f64 / demand_rows as f64
    }
}

/// Expected refresh power overhead of a proactive tracker mitigating one
/// aggressor (refreshing `victims_per_mitigation` rows) every `w` ACTs, at
/// an average of `acts_per_refw` activations per bank per window with
/// `rows_per_bank` rows refreshed on demand per window.
pub fn proactive_overhead_model(
    w: u32,
    victims_per_mitigation: u32,
    acts_per_refw: f64,
    rows_per_bank: u32,
) -> f64 {
    let mitigations = acts_per_refw / f64::from(w);
    mitigations * f64::from(victims_per_mitigation) / f64::from(rows_per_bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_power_is_quarter_percent() {
        let f = mirza_sram_power_fraction();
        assert!((f - 0.0025).abs() < 0.0005);
    }

    #[test]
    fn overhead_ratio() {
        assert_eq!(refresh_power_overhead(41, 1000), 0.041);
        assert_eq!(refresh_power_overhead(1, 0), 0.0);
    }

    #[test]
    fn proactive_model_matches_figure3_scale() {
        // MINT at W=24 (TRHD=500): ~160K ACTs/bank/tREFW for busy workloads
        // -> 160K/24 mitigations x 4 victims / 128K rows ~ 21%; at W=96
        // it drops ~4x. The paper reports 16.4% -> 4.1%.
        let busy = 160_000.0;
        let w24 = proactive_overhead_model(24, 4, busy, 128 * 1024);
        let w96 = proactive_overhead_model(96, 4, busy, 128 * 1024);
        assert!((w24 / w96 - 4.0).abs() < 1e-9);
        assert!((0.1..0.3).contains(&w24), "got {w24}");
    }
}
