//! # mirza-security — security and cost analysis
//!
//! Everything in the paper that is analytic or adversarial rather than a
//! performance simulation:
//!
//! * [`proactive`] — Table II: thresholds tolerated by proactive MINT and
//!   Mithril versus mitigation rate, refresh cannibalization, and the
//!   621K-ACTs-per-tREFW worst case.
//! * [`montecarlo`] — the attack engine: replays single-sided,
//!   double-sided, many-sided, decoy and CGF-evading patterns against any
//!   [`Mitigator`](mirza_dram::mitigation::Mitigator) with a faithful
//!   REF/ALERT timeline, and measures the maximum unmitigated activation
//!   count (Section VI's bounded quantity, Appendix B's reset attack).
//! * [`dos`] — Section IX / Table XI / Appendix A: ACT-throughput models of
//!   performance (denial-of-service) attacks on MIRZA, MINT+RFM and PRAC.
//! * [`area`] — Section VIII-A / Table X: the 6F²-DRAM / 120F²-SRAM
//!   relative area model.

pub mod area;
pub mod dos;
pub mod mint_model;
pub mod montecarlo;
pub mod power;
pub mod proactive;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::area::{table10, table10_row, AreaRow};
    pub use crate::dos::{
        mint_rfm_attack_slowdown, mirza_attack_slowdown, prac_attack_slowdown, table11, Table11Row,
    };
    pub use crate::mint_model::{escape_probability, monte_carlo_max_run};
    pub use crate::montecarlo::{run_hammer, AttackOutcome, HammerHarness};
    pub use crate::power::{mirza_sram_power_fraction, refresh_power_overhead};
    pub use crate::proactive::{table2, Table2Row};
}
