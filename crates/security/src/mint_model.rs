//! MINT security model (Section II-E; the paper defers to MINT's published
//! model [33]).
//!
//! MINT picks one of every `W` candidate activations uniformly. An attacker
//! row fed `a` of the `W` activations of a window escapes that window's
//! mitigation with probability `1 - a/W`; across a refresh window the
//! escape probability decays geometrically. The *tolerated* threshold is
//! the activation count at which the attack success probability over a
//! target horizon drops below a failure budget; the paper's configurations
//! fit the linear rule `TRHD ≈ 20·W` (`TRHS ≈ 40·W`), which
//! [`mirza_core::config::mint_tolerated_trhd`] encodes. This module
//! supplies the underlying probability math plus a Monte-Carlo validator.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mirza_core::mint::MintSampler;
use rand::Rng;

/// Probability that a row which supplies `acts_per_window` of every
/// `w`-activation window escapes selection for `windows` consecutive
/// windows.
pub fn escape_probability(w: u32, acts_per_window: u32, windows: u32) -> f64 {
    assert!(acts_per_window <= w, "a window holds at most W activations");
    let per_window = 1.0 - f64::from(acts_per_window) / f64::from(w);
    per_window.powi(windows as i32)
}

/// Unmitigated activations an attacker can accumulate with failure
/// probability `p_fail`: the attacker dedicates whole windows to the row
/// (`a = W` per window would always be caught, so the optimum feeds fewer
/// rows per window; the paper's circular pattern feeds each row once per
/// `k`-row cycle). For a row fed once per window, escape per window is
/// `1 - 1/W` and the count grows by one per window:
/// `n(p) = ln(p) / ln(1 - 1/W)` activations.
pub fn unmitigated_acts_at(w: u32, p_fail: f64) -> f64 {
    assert!((0.0..1.0).contains(&p_fail) && p_fail > 0.0);
    p_fail.ln() / (1.0 - 1.0 / f64::from(w)).ln()
}

/// Monte-Carlo estimate of the maximum unmitigated activation run of a
/// single-row attacker against MINT-`w` over `trials` windows.
pub fn monte_carlo_max_run(w: u32, trials: u32, seed: u64) -> u32 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mint = MintSampler::new(w, rng.gen());
    let target = 0u32;
    let (mut run, mut max_run) = (0u32, 0u32);
    for i in 0..trials * w {
        let row = if i % w == 0 { target } else { 1 + (i % w) };
        let selected = mint.observe(row);
        if row == target {
            run += 1;
            if run > max_run {
                max_run = run;
            }
        }
        if selected == Some(target) {
            run = 0;
        }
    }
    max_run
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirza_core::config::mint_tolerated_trhd;

    #[test]
    fn escape_probability_basics() {
        assert_eq!(escape_probability(12, 12, 1), 0.0);
        assert_eq!(escape_probability(12, 0, 100), 1.0);
        let one = escape_probability(12, 1, 1);
        assert!((one - 11.0 / 12.0).abs() < 1e-12);
        // Decays geometrically.
        assert!(escape_probability(12, 1, 100) < escape_probability(12, 1, 10));
    }

    #[test]
    fn tolerated_threshold_is_conservative_against_the_probability_model() {
        // The linear rule 20*W corresponds to a failure probability below
        // ~0.2 even for a *single* window-per-ACT attacker (the realistic
        // bound is far smaller because mitigation also covers neighbors).
        for w in [8u32, 12, 16, 24] {
            let bound = f64::from(mint_tolerated_trhd(w));
            let p = escape_probability(w, 1, bound as u32);
            assert!(p < 0.2, "W={w}: escape prob {p} at bound {bound}");
        }
    }

    #[test]
    fn monte_carlo_tracks_the_analytic_tail() {
        // Over 50K windows, the longest unmitigated run should be in the
        // vicinity of n(1/50_000) and far below the 20*W bound only for
        // small failure budgets — i.e. the bound is not wildly loose.
        let w = 12u32;
        let max_run = monte_carlo_max_run(w, 50_000, 42);
        let expected = unmitigated_acts_at(w, 1.0 / 50_000.0);
        assert!(
            (f64::from(max_run) - expected).abs() < expected,
            "max run {max_run} vs expected ~{expected:.0}"
        );
        assert!(f64::from(max_run) < 1.5 * f64::from(mint_tolerated_trhd(w)));
    }

    #[test]
    #[should_panic(expected = "at most W")]
    fn rejects_overfull_window() {
        let _ = escape_probability(4, 5, 1);
    }
}
