//! Relative area model (Section VIII-A, Table X): DRAM cells cost 6F²,
//! SRAM cells 120F².

/// Area of one DRAM cell in units of F².
pub const DRAM_CELL_F2: f64 = 6.0;

/// Area of one SRAM cell in units of F².
pub const SRAM_CELL_F2: f64 = 120.0;

/// Bits a PRAC per-row counter needs for threshold `trh`
/// (Table X: 10 bits at 1K, 9 at 500, 8 at 250).
pub fn prac_counter_bits(trh: u32) -> u32 {
    assert!(trh > 1, "threshold must exceed one activation");
    32 - (trh - 1).leading_zeros()
}

/// PRAC area per subarray of `rows` rows, in F²: one DRAM counter per row.
pub fn prac_area_per_subarray(trh: u32, rows: u32) -> f64 {
    f64::from(prac_counter_bits(trh) * rows) * DRAM_CELL_F2
}

/// MIRZA area per subarray, in F²: `counter_bits` SRAM bits per region and
/// `regions_per_subarray` regions covering the subarray.
pub fn mirza_area_per_subarray(counter_bits: u32, regions_per_subarray: u32) -> f64 {
    f64::from(counter_bits * regions_per_subarray) * SRAM_CELL_F2
}

/// One Table X row: relative areas at a given threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaRow {
    /// Target threshold.
    pub trhd: u32,
    /// MIRZA SRAM bits per subarray.
    pub mirza_bits: u32,
    /// PRAC DRAM bits per subarray.
    pub prac_bits: u32,
    /// PRAC area / MIRZA area.
    pub prac_over_mirza: f64,
}

/// Computes a Table X row. `mirza_bits` is the total SRAM bits MIRZA spends
/// per 1K-row subarray (11 at TRHD=1K, 20 at 500, 36 at 250).
pub fn table10_row(trhd: u32, mirza_bits: u32) -> AreaRow {
    let rows = 1024;
    let prac_bits = prac_counter_bits(trhd) * rows;
    let prac = f64::from(prac_bits) * DRAM_CELL_F2;
    let mirza = f64::from(mirza_bits) * SRAM_CELL_F2;
    AreaRow {
        trhd,
        mirza_bits,
        prac_bits,
        prac_over_mirza: prac / mirza,
    }
}

/// The three published Table X rows.
pub fn table10() -> Vec<AreaRow> {
    vec![
        table10_row(1000, 11),
        table10_row(500, 20),
        table10_row(250, 36),
    ]
}

/// MIRZA SRAM per bank vs. Mithril (Section VIII-A): 2K entries of 28 bits
/// is 7 KB; MIRZA at TRHD=1K needs 196 B -> ~37x lower.
pub fn mithril_over_mirza_storage() -> f64 {
    7168.0 / 196.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac_counter_widths_match_table10() {
        assert_eq!(prac_counter_bits(1000), 10);
        assert_eq!(prac_counter_bits(500), 9);
        assert_eq!(prac_counter_bits(250), 8);
    }

    #[test]
    fn ratios_match_published_factors() {
        let rows = table10();
        // Paper: 45x, 22.5x, 11.2x.
        assert!((rows[0].prac_over_mirza - 45.0).abs() < 2.0, "{rows:?}");
        assert!((rows[1].prac_over_mirza - 22.5).abs() < 1.5, "{rows:?}");
        assert!((rows[2].prac_over_mirza - 11.2).abs() < 1.0, "{rows:?}");
    }

    #[test]
    fn prac_bits_per_subarray() {
        // 10-bit x 1K rows = 10 Kb of DRAM at TRHD=1K.
        assert_eq!(table10_row(1000, 11).prac_bits, 10 * 1024);
    }

    #[test]
    fn mithril_ratio_is_about_37x() {
        assert!((mithril_over_mirza_storage() - 36.6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_degenerate_threshold() {
        let _ = prac_counter_bits(1);
    }
}
