//! Performance-attack (denial-of-service) analysis (Section IX, Table XI,
//! Appendix A / Table XIII).
//!
//! The metric is *ACT throughput* of a benign striped-read application.
//! Under an ALERT, the benign app keeps issuing for `180ns - tRC = 134ns`
//! of the prologue and is stalled for the rest of the 530 ns episode.

use mirza_dram::timing::TimingParams;

/// Benign ACT throughput baseline: one ACT every 3 ns (tFAW-limited stripe
/// over 16 banks, Section IX-A).
pub const BENIGN_NS_PER_ACT: f64 = 3.0;

/// Productive prologue nanoseconds for the benign app per ALERT
/// (`180 - tRC`).
pub fn productive_prologue_ns(t: &TimingParams) -> f64 {
    (t.t_alert_prologue.as_ps() - t.t_rc.as_ps()) as f64 / 1000.0
}

/// Total ALERT episode length in nanoseconds (530 ns).
pub fn alert_episode_ns(t: &TimingParams) -> f64 {
    (t.t_alert_prologue.as_ps() + t.t_alert_stall.as_ps()) as f64 / 1000.0
}

/// Slowdown of a benign app under a *continuous* ALERT storm
/// (Section IX-A's 3.8x figure).
pub fn alert_storm_slowdown(t: &TimingParams) -> f64 {
    alert_episode_ns(t) / productive_prologue_ns(t)
}

/// Relative ACT throughput of the benign application while a MIRZA
/// performance attack runs with MINT window `w` (Table XI).
///
/// Per ALERT cycle the attacker lands 3 ACTs in the prologue and the
/// mandatory epilogue ACT, so `w - 4` ACTs (one tRC each) happen outside
/// the ALERT episode; the benign app runs freely then, plus 134 ns of each
/// episode.
pub fn mirza_attack_relative_throughput(t: &TimingParams, w: u32) -> f64 {
    assert!(w >= 4, "MINT-W must be >= 4 (Section V-D)");
    let outside_ns = f64::from(w - 4) * t.t_rc.as_ps() as f64 / 1000.0;
    (outside_ns + productive_prologue_ns(t)) / (outside_ns + alert_episode_ns(t))
}

/// Slowdown (1 / relative throughput) under the MIRZA performance attack.
pub fn mirza_attack_slowdown(t: &TimingParams, w: u32) -> f64 {
    1.0 / mirza_attack_relative_throughput(t, w)
}

/// Worst-case slowdown of MINT+RFM under an attack that maximizes RFM
/// frequency: one RFM (tRFM stall) per `bat` attacker ACTs at tRC each
/// (Appendix A).
pub fn mint_rfm_attack_slowdown(t: &TimingParams, bat: u32) -> f64 {
    let work_ns = f64::from(bat) * t.t_rc.as_ps() as f64 / 1000.0;
    let stall_ns = t.t_rfm.as_ps() as f64 / 1000.0;
    (work_ns + stall_ns) / work_ns
}

/// Worst-case slowdown of PRAC+ABO: the attacker needs `ath` ACTs per
/// ALERT episode (Appendix A; MOAT's effective per-episode budget is
/// calibrated as `TRHD/16` to match the published 1.2x/1.1x/1.05x points).
pub fn prac_attack_slowdown(t: &TimingParams, ath: u32) -> f64 {
    let work_ns = f64::from(ath) * t.t_rc.as_ps() as f64 / 1000.0;
    (work_ns + alert_episode_ns(t)) / (work_ns + productive_prologue_ns(t))
}

/// One Table XI row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table11Row {
    /// MINT window.
    pub mint_w: u32,
    /// Relative ACT throughput (percent).
    pub throughput_pct: f64,
    /// Slowdown factor.
    pub slowdown: f64,
}

/// Computes Table XI for windows 16/12/8.
pub fn table11(t: &TimingParams) -> Vec<Table11Row> {
    [16u32, 12, 8]
        .into_iter()
        .map(|w| Table11Row {
            mint_w: w,
            throughput_pct: 100.0 * mirza_attack_relative_throughput(t, w),
            slowdown: mirza_attack_slowdown(t, w),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn table11_matches_published_numbers() {
        // Paper: W=16 -> 63.4%, W=12 -> 55.9%, W=8 -> 44.5%.
        let rows = table11(&t());
        assert!((rows[0].throughput_pct - 63.4).abs() < 0.5, "{rows:?}");
        assert!((rows[1].throughput_pct - 55.9).abs() < 0.5, "{rows:?}");
        assert!((rows[2].throughput_pct - 44.5).abs() < 0.5, "{rows:?}");
        // Slowdowns: 1.6x / 1.8x / 2.25x.
        assert!((rows[0].slowdown - 1.6).abs() < 0.05);
        assert!((rows[1].slowdown - 1.8).abs() < 0.05);
        assert!((rows[2].slowdown - 2.25).abs() < 0.05);
    }

    #[test]
    fn alert_storm_is_about_3_8x() {
        let s = alert_storm_slowdown(&t());
        assert!((s - 3.955).abs() < 0.1, "got {s}");
    }

    #[test]
    fn mint_rfm_attack_slowdowns_track_appendix_a() {
        // Paper: 1.4x / 1.2x / 1.1x at BAT 24/48/96 (our model: 1.32/1.16/1.08).
        let s24 = mint_rfm_attack_slowdown(&t(), 24);
        let s48 = mint_rfm_attack_slowdown(&t(), 48);
        let s96 = mint_rfm_attack_slowdown(&t(), 96);
        assert!(s24 > s48 && s48 > s96, "monotone in BAT");
        assert!((s24 - 1.32).abs() < 0.05, "got {s24}");
        assert!((s96 - 1.08).abs() < 0.03, "got {s96}");
    }

    #[test]
    fn prac_attack_is_mildest() {
        // Appendix A ordering: PRAC < MINT+RFM < MIRZA at each threshold.
        for (trhd, bat, w) in [(500u32, 24u32, 8u32), (1000, 48, 12), (2000, 96, 16)] {
            let prac = prac_attack_slowdown(&t(), trhd / 16);
            let rfm = mint_rfm_attack_slowdown(&t(), bat);
            let mirza = mirza_attack_slowdown(&t(), w);
            assert!(
                prac < rfm && rfm < mirza,
                "TRHD {trhd}: {prac} {rfm} {mirza}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "MINT-W")]
    fn rejects_tiny_window() {
        let _ = mirza_attack_relative_throughput(&t(), 3);
    }
}
