//! Analytic models for proactive trackers (Table II): tolerated threshold
//! versus mitigation rate, and refresh cannibalization.

use mirza_dram::timing::TimingParams;

/// Maximum activations a bank can absorb between two REF commands:
/// `(tREFI - tRFC) / tRC` (75.9 for baseline DDR5-6000, the window size the
/// MINT paper calls MINT-75).
pub fn acts_per_ref_interval(t: &TimingParams) -> f64 {
    (t.t_refi.as_ps() - t.t_rfc.as_ps()) as f64 / t.t_rc.as_ps() as f64
}

/// Maximum activations per bank per refresh window (the 621K figure of
/// Section IV-C / Figure 6).
pub fn max_acts_per_bank_per_refw(t: &TimingParams) -> f64 {
    acts_per_ref_interval(t) * t.refs_per_refw() as f64
}

/// Calibration constant relating a MINT window to its tolerated TRHD
/// (fits all four published Table II points within 1%).
pub const MINT_TRHD_PER_WINDOW: f64 = 19.2;

/// TRHD tolerated by MINT mitigating one aggressor per `refs_per_mit` REFs
/// (Table II column 3).
pub fn mint_tolerated_trhd(t: &TimingParams, refs_per_mit: u64) -> f64 {
    MINT_TRHD_PER_WINDOW * acts_per_ref_interval(t) * refs_per_mit as f64
}

/// TRHD tolerated by a Mithril-style tracker with 2K entries per bank,
/// mitigating one aggressor per `refs_per_mit` REFs (Table II column 4).
///
/// The Mithril bound has no closed form the paper publishes; we interpolate
/// the published points (1K / 1.7K / 2.9K / 5.4K at rates 1/2/4/8)
/// piecewise-linearly in the mitigation period and extrapolate linearly
/// beyond them.
pub fn mithril_tolerated_trhd(refs_per_mit: u64) -> f64 {
    const POINTS: [(f64, f64); 4] = [(1.0, 1000.0), (2.0, 1700.0), (4.0, 2900.0), (8.0, 5400.0)];
    let k = refs_per_mit as f64;
    if k <= POINTS[0].0 {
        return POINTS[0].1 * k;
    }
    for w in POINTS.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if k <= x1 {
            return y0 + (y1 - y0) * (k - x0) / (x1 - x0);
        }
    }
    let (x0, y0) = POINTS[2];
    let (x1, y1) = POINTS[3];
    y1 + (y1 - y0) * (k - x1) / (x1 - x0)
}

/// Fraction of refresh time consumed by mitigations at one aggressor
/// (280 ns) per `refs_per_mit` REFs (410 ns each) — Table II column 2.
pub fn refresh_cannibalization(refs_per_mit: u64) -> f64 {
    280.0 / (410.0 * refs_per_mit as f64)
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// REFs between mitigations.
    pub refs_per_mitigation: u64,
    /// Fraction of REF time consumed (column 2).
    pub refresh_cannibalization: f64,
    /// MINT tolerated TRHD (column 3).
    pub mint_trhd: f64,
    /// Mithril tolerated TRHD (column 4).
    pub mithril_trhd: f64,
}

/// Computes all four Table II rows for the given timing.
pub fn table2(t: &TimingParams) -> Vec<Table2Row> {
    [1u64, 2, 4, 8]
        .into_iter()
        .map(|k| Table2Row {
            refs_per_mitigation: k,
            refresh_cannibalization: refresh_cannibalization(k),
            mint_trhd: mint_tolerated_trhd(t, k),
            mithril_trhd: mithril_tolerated_trhd(k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr5_6000()
    }

    #[test]
    fn window_per_ref_is_about_76() {
        let w = acts_per_ref_interval(&t());
        assert!((75.0..77.0).contains(&w), "got {w}");
    }

    #[test]
    fn max_acts_matches_621k() {
        let m = max_acts_per_bank_per_refw(&t());
        assert!((610_000.0..640_000.0).contains(&m), "got {m}");
    }

    #[test]
    fn table2_mint_column() {
        // Paper: 1.5K / 2.9K / 5.8K / 11.6K.
        let rows = table2(&t());
        let expect = [1500.0, 2900.0, 5800.0, 11600.0];
        for (row, e) in rows.iter().zip(expect) {
            let rel = (row.mint_trhd - e).abs() / e;
            assert!(
                rel < 0.03,
                "rate {}: {} vs {e}",
                row.refs_per_mitigation,
                row.mint_trhd
            );
        }
    }

    #[test]
    fn table2_mithril_column_hits_published_points() {
        assert_eq!(mithril_tolerated_trhd(1), 1000.0);
        assert_eq!(mithril_tolerated_trhd(2), 1700.0);
        assert_eq!(mithril_tolerated_trhd(4), 2900.0);
        assert_eq!(mithril_tolerated_trhd(8), 5400.0);
        // Interpolation and extrapolation are monotone.
        assert!(mithril_tolerated_trhd(3) > 1700.0);
        assert!(mithril_tolerated_trhd(3) < 2900.0);
        assert!(mithril_tolerated_trhd(16) > 5400.0);
    }

    #[test]
    fn cannibalization_column() {
        // Paper: 68% / 34% / 17% / 8.5%.
        assert!((refresh_cannibalization(1) - 0.683).abs() < 0.01);
        assert!((refresh_cannibalization(2) - 0.341).abs() < 0.01);
        assert!((refresh_cannibalization(4) - 0.171).abs() < 0.01);
        assert!((refresh_cannibalization(8) - 0.085).abs() < 0.01);
    }

    #[test]
    fn practical_rates_cannot_protect_current_trh() {
        // Section II-F: the tolerated TRHD is the *lowest* threshold the
        // tracker protects. At practical rates (1 per 4-8 REF) MINT's
        // tolerated TRHD exceeds today's 4.8K, so it cannot protect such
        // devices; Mithril at 1 per 8 REF (5.4K) cannot either.
        assert!(mint_tolerated_trhd(&t(), 4) > 4800.0);
        assert!(mint_tolerated_trhd(&t(), 8) > 4800.0);
        assert!(mithril_tolerated_trhd(8) > 4800.0);
        assert!(mithril_tolerated_trhd(4) < 4800.0);
    }
}
