//! Embeds build provenance: the git revision and cargo profile become
//! `env!("MIRZA_GIT_REV")` / `env!("MIRZA_BUILD_PROFILE")` for the
//! `provenance` module. Best-effort — a tarball build without git still
//! compiles, stamped "unknown".

use std::process::Command;

fn git_rev() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

fn main() {
    let rev = git_rev().unwrap_or_else(|| "unknown".to_string());
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .map(|o| o.status.success() && !o.stdout.is_empty())
        .unwrap_or(false);
    let rev = if dirty { format!("{rev}-dirty") } else { rev };
    println!("cargo:rustc-env=MIRZA_GIT_REV={rev}");
    println!(
        "cargo:rustc-env=MIRZA_BUILD_PROFILE={}",
        std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string())
    );
    // Re-stamp when HEAD moves (direct or via a ref update).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
}
