//! Criterion bench regenerating table12 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table12(c: &mut Criterion) {
    c.bench_function("table12", |b| {
        b.iter(|| std::hint::black_box(analytic::table12()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table12
}
criterion_main!(benches);
