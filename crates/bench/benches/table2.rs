//! Criterion bench regenerating table2 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2", |b| {
        b.iter(|| std::hint::black_box(analytic::table2_report()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
