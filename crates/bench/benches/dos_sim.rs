//! Criterion bench regenerating dos_sim at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp, experiments};

fn bench_dos_sim(c: &mut Criterion) {
    c.bench_function("dos_sim", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::bench());
            std::hint::black_box(attacks_exp::dos_sim(&mut lab))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dos_sim
}
criterion_main!(benches);
