//! Criterion bench regenerating fig11a at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp, experiments};

fn bench_fig11a(c: &mut Criterion) {
    c.bench_function("fig11a", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::bench());
            std::hint::black_box(experiments::fig11a(&mut lab))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11a
}
criterion_main!(benches);
