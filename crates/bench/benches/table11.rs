//! Criterion bench regenerating table11 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table11(c: &mut Criterion) {
    c.bench_function("table11", |b| {
        b.iter(|| std::hint::black_box(analytic::table11_report()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table11
}
criterion_main!(benches);
