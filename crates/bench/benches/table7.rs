//! Criterion bench regenerating table7 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table7(c: &mut Criterion) {
    c.bench_function("table7", |b| {
        b.iter(|| std::hint::black_box(analytic::table7()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table7
}
criterion_main!(benches);
