//! Criterion bench regenerating fig14 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14", |b| {
        b.iter(|| std::hint::black_box(attacks_exp::fig14()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig14
}
criterion_main!(benches);
