//! Criterion bench regenerating table13 at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp, experiments};

fn bench_table13(c: &mut Criterion) {
    c.bench_function("table13", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::bench());
            std::hint::black_box(experiments::table13(&mut lab))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table13
}
criterion_main!(benches);
