//! Criterion bench regenerating table3 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3", |b| {
        b.iter(|| std::hint::black_box(analytic::table3()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3
}
criterion_main!(benches);
