//! Criterion bench regenerating security_sweep (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_security_sweep(c: &mut Criterion) {
    c.bench_function("security_sweep", |b| {
        b.iter(|| std::hint::black_box(attacks_exp::security_sweep(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_security_sweep
}
criterion_main!(benches);
