//! Criterion bench regenerating fig11b at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp, experiments};

fn bench_fig11b(c: &mut Criterion) {
    c.bench_function("fig11b", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::bench());
            std::hint::black_box(experiments::fig11b(&mut lab))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11b
}
criterion_main!(benches);
