//! Criterion bench regenerating table10 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_table10(c: &mut Criterion) {
    c.bench_function("table10", |b| {
        b.iter(|| std::hint::black_box(analytic::table10_report()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table10
}
criterion_main!(benches);
