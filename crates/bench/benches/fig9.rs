//! Criterion bench regenerating fig9 (analytic).
use criterion::{criterion_group, criterion_main, Criterion};
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp};

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9", |b| {
        b.iter(|| std::hint::black_box(analytic::fig9()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
