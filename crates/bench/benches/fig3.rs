//! Criterion bench regenerating fig3 at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
#[allow(unused_imports)]
use mirza_bench::{analytic, attacks_exp, experiments};

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::bench());
            std::hint::black_box(experiments::fig3(&mut lab))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
