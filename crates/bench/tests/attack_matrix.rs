//! Integration tests for the attack-matrix sweep: same-seed determinism of
//! the CSV artifact and purity (running the matrix must not perturb the
//! baseline experiments).

use mirza_bench::attack_matrix::{
    run_matrix, MatrixSpec, MitigatorKind, ScheduleKind, StrategyKind, CSV_HEADER,
};
use mirza_bench::experiments;
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
use mirza_telemetry::Telemetry;

fn small_spec(seed: u64) -> MatrixSpec {
    let mut scale = Scale::smoke();
    scale.seed = seed;
    let mut spec = MatrixSpec::for_scale(scale);
    // Trim to one representative per axis quadrant so the determinism run
    // stays sub-second; full rosters are covered by the CLI smoke job.
    spec.strategies = vec![
        StrategyKind::DoubleSided,
        StrategyKind::Blacksmith,
        StrategyKind::DecoyFlood,
    ];
    spec.schedules = vec![ScheduleKind::Burst, ScheduleKind::Paced(2)];
    spec.mitigators = vec![MitigatorKind::Mirza1000, MitigatorKind::Trr];
    spec.trials = 2;
    spec.walks = 1;
    spec
}

#[test]
fn same_seed_matrix_runs_are_bit_identical() {
    let a = run_matrix(&small_spec(7), &Telemetry::disabled()).to_csv();
    let b = run_matrix(&small_spec(7), &Telemetry::disabled()).to_csv();
    assert_eq!(a, b, "same-seed sweeps must replay bit-identically");
    let c = run_matrix(&small_spec(8), &Telemetry::disabled()).to_csv();
    assert_ne!(a, c, "the seed must actually steer the Monte-Carlo runs");
}

#[test]
fn csv_schema_is_pinned() {
    let csv = run_matrix(&small_spec(7), &Telemetry::disabled()).to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(CSV_HEADER));
    for line in lines {
        assert_eq!(
            line.split(',').count(),
            CSV_HEADER.split(',').count(),
            "row arity must match the header: {line}"
        );
    }
}

#[test]
fn matrix_run_leaves_baseline_experiments_untouched() {
    // The acceptance bar: with the attack subsystem exercised in the same
    // process, the canonical table4 output is bit-identical to a run that
    // never touched it. Smoke scale keeps this test in seconds.
    let before = {
        let mut lab = Lab::new(Scale::smoke());
        experiments::table4(&mut lab)
    };
    let _ = run_matrix(&small_spec(7), &Telemetry::disabled());
    let after = {
        let mut lab = Lab::new(Scale::smoke());
        experiments::table4(&mut lab)
    };
    assert_eq!(
        before, after,
        "attack-matrix execution must not perturb table4"
    );
}
