//! Parallel-equivalence and crash-recovery tests for the supervised
//! runner: outputs at any `--jobs` count must be bit-identical to the
//! serial path, and a killed campaign must resume from its journal to the
//! byte-identical artifact.

use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use mirza_bench::attack_matrix::{
    run_matrix_supervised, MatrixRunConfig, MatrixSpec, MitigatorKind, ScheduleKind, StrategyKind,
};
use mirza_bench::experiments;
use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
use mirza_telemetry::{Json, Telemetry};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mirza-parallel-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn small_spec(seed: u64) -> MatrixSpec {
    let mut scale = Scale::smoke();
    scale.seed = seed;
    let mut spec = MatrixSpec::for_scale(scale);
    spec.strategies = vec![StrategyKind::DoubleSided, StrategyKind::DecoyFlood];
    spec.schedules = vec![ScheduleKind::Burst, ScheduleKind::Paced(2)];
    spec.mitigators = vec![MitigatorKind::Mirza1000, MitigatorKind::Trr];
    spec.trials = 2;
    spec.walks = 1;
    spec
}

/// Flattens the deterministic manifest sections exactly as
/// `scripts/bench_gate.py` gates them: every run's `config` and `report`
/// byte-for-byte. Wall-clock sections (`host_profile`) are legitimately
/// nondeterministic and excluded, same as the gate.
fn gated_sections(manifest: &Json) -> String {
    let mut out = String::new();
    for exp in manifest.get("experiments").unwrap().as_arr().unwrap() {
        let name = exp.get("name").unwrap().as_str().unwrap();
        for run in exp.get("runs").unwrap().as_arr().unwrap() {
            out.push_str(name);
            out.push('/');
            out.push_str(run.get("label").unwrap().as_str().unwrap());
            out.push('/');
            out.push_str(run.get("workload").unwrap().as_str().unwrap());
            out.push('\n');
            out.push_str(&run.get("config").unwrap().to_string_pretty());
            out.push_str(&run.get("report").unwrap().to_string_pretty());
            out.push('\n');
        }
    }
    out
}

/// The tentpole contract on the experiment path: a prewarmed (parallel)
/// table4 produces the byte-identical CSV, rendered table, and gated
/// manifest sections the serial path does.
#[test]
fn table4_smoke_is_bit_identical_across_job_counts() {
    let dir = temp_dir("table4");
    let mut artifacts = Vec::new();
    for jobs in [1usize, 4] {
        let csv_path = dir.join(format!("table4_j{jobs}.csv"));
        let mut lab = Lab::new(Scale::smoke());
        lab.jobs = jobs;
        lab.verbose = false;
        lab.csv_path = Some(csv_path.clone());
        lab.enable_manifest();
        lab.begin_experiment("table4");
        lab.prewarm(&experiments::planned_runs("table4", &lab));
        let table = experiments::table4(&mut lab);
        let manifest = lab.manifest_json().expect("manifest mode is on");
        let experiments_section = gated_sections(&manifest);
        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        artifacts.push((jobs, table, experiments_section, csv));
    }
    let (_, table_1, exp_1, csv_1) = &artifacts[0];
    let (_, table_4, exp_4, csv_4) = &artifacts[1];
    assert_eq!(table_1, table_4, "rendered table diverged at jobs=4");
    assert_eq!(exp_1, exp_4, "manifest experiments section diverged");
    assert_eq!(csv_1, csv_4, "CSV artifact diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The matrix path: CSV and JSON artifacts are identical at jobs 1/2/8.
#[test]
fn matrix_outputs_are_bit_identical_across_job_counts() {
    let spec = small_spec(7);
    let reference = run_matrix_supervised(
        &spec,
        &Telemetry::disabled(),
        &MatrixRunConfig {
            jobs: 1,
            journal: None,
            resume: false,
        },
    );
    assert!(reference.complete());
    let ref_csv = reference.result.to_csv();
    let ref_json = reference.result.to_json().to_string_pretty();
    for jobs in [2usize, 8] {
        let outcome = run_matrix_supervised(
            &spec,
            &Telemetry::disabled(),
            &MatrixRunConfig {
                jobs,
                journal: None,
                resume: false,
            },
        );
        assert!(outcome.complete(), "jobs={jobs} campaign degraded");
        assert_eq!(
            ref_csv,
            outcome.result.to_csv(),
            "CSV diverged, jobs={jobs}"
        );
        assert_eq!(
            ref_json,
            outcome.result.to_json().to_string_pretty(),
            "JSON diverged, jobs={jobs}"
        );
    }
}

/// A journal that is not this campaign's (foreign header, or plain
/// garbage) must be ignored on `--resume`, not misparsed: the run
/// recomputes every cell and still matches the reference.
#[test]
fn resume_ignores_foreign_and_corrupt_journals() {
    let dir = temp_dir("journal");
    let spec = small_spec(7);
    let reference = run_matrix_supervised(
        &spec,
        &Telemetry::disabled(),
        &MatrixRunConfig {
            jobs: 2,
            journal: None,
            resume: false,
        },
    )
    .result
    .to_csv();
    for (tag, contents) in [
        ("garbage", "not json at all\n{\"cell\":\"zz\"}\n"),
        (
            "foreign",
            "{\"journal\":\"mirza-runner-journal-v1\",\"campaign\":\"00000000deadbeef\"}\n\
             {\"cell\":\"0011223344556677\",\"id\":\"x\",\"result\":{}}\n",
        ),
    ] {
        let journal = dir.join(format!("{tag}.journal.jsonl"));
        std::fs::write(&journal, contents).unwrap();
        let outcome = run_matrix_supervised(
            &spec,
            &Telemetry::disabled(),
            &MatrixRunConfig {
                jobs: 2,
                journal: Some(journal.clone()),
                resume: true,
            },
        );
        assert!(outcome.complete(), "{tag}: campaign degraded");
        assert_eq!(
            outcome.resumed, 0,
            "{tag}: journal must contribute zero cells"
        );
        assert_eq!(reference, outcome.result.to_csv(), "{tag}: CSV diverged");
        assert!(
            !journal.exists(),
            "{tag}: journal must be finalized after a clean completion"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A valid journal prefix from an interrupted run seeds `--resume`:
/// completed cells replay from disk and the final artifact is
/// byte-identical to an uninterrupted campaign. The "interruption" is a
/// mid-run snapshot of the live journal taken from a second thread —
/// every record is fsync'd before its cell counts as complete, so any
/// snapshot is a valid prefix (a torn trailing line is dropped by the
/// parser, never misparsed).
#[test]
fn matrix_resumes_from_a_prior_journal_bit_identically() {
    let dir = temp_dir("resume-lib");
    let spec = small_spec(7);
    let reference = run_matrix_supervised(
        &spec,
        &Telemetry::disabled(),
        &MatrixRunConfig {
            jobs: 1,
            journal: None,
            resume: false,
        },
    )
    .result
    .to_csv();

    let journal = dir.join("m.journal.jsonl");
    let snapshot = std::thread::scope(|s| {
        let journal_ref = &journal;
        let watcher = s.spawn(move || {
            // Poll the live journal and keep the last prefix seen before
            // the run completes (completion finalizes = deletes the file).
            let mut best = Vec::new();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
            while std::time::Instant::now() < deadline {
                if let Ok(bytes) = std::fs::read(journal_ref) {
                    if bytes.len() > best.len() {
                        best = bytes;
                    }
                    // Stop early once a real prefix exists: header + some
                    // records but (statistically) not the whole campaign.
                    if best.iter().filter(|&&b| b == b'\n').count() >= 4 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            best
        });
        let full = run_matrix_supervised(
            &spec,
            &Telemetry::disabled(),
            &MatrixRunConfig {
                jobs: 1,
                journal: Some(journal.clone()),
                resume: false,
            },
        );
        assert!(full.complete());
        assert!(!journal.exists(), "clean completion finalizes the journal");
        watcher.join().expect("watcher thread")
    });
    assert!(
        snapshot.iter().filter(|&&b| b == b'\n').count() >= 2,
        "snapshot caught no journal records; campaign too fast to observe"
    );

    // "Crash recovery": restore the prefix and resume from it.
    std::fs::write(&journal, &snapshot).unwrap();
    let resumed = run_matrix_supervised(
        &spec,
        &Telemetry::disabled(),
        &MatrixRunConfig {
            jobs: 2,
            journal: Some(journal.clone()),
            resume: true,
        },
    );
    assert!(resumed.complete());
    assert!(
        resumed.resumed > 0,
        "prefix journal must contribute completed cells"
    );
    assert_eq!(reference, resumed.result.to_csv(), "resumed CSV diverged");
    assert!(!journal.exists(), "clean resume finalizes the journal");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Process-level crash recovery: SIGKILL a parallel matrix run mid-
/// campaign, rerun with `--resume`, and the final CSV and event stream
/// are byte-identical to an uninterrupted run. Uses the compiled `repro`
/// binary, exactly as CI's kill/resume smoke job does.
#[test]
fn cli_kill_resume_reproduces_uninterrupted_csv() {
    let repro = env!("CARGO_BIN_EXE_repro");
    let dir = temp_dir("resume-cli");
    let ref_dir = dir.join("ref");
    let kill_dir = dir.join("kill");
    std::fs::create_dir_all(&ref_dir).unwrap();
    std::fs::create_dir_all(&kill_dir).unwrap();
    let run = |csv: &std::path::Path, resume: bool| {
        let mut cmd = Command::new(repro);
        cmd.args(["attack-matrix", "--fast", "--quiet", "--jobs", "2", "--csv"])
            .arg(csv)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if resume {
            cmd.arg("--resume");
        }
        cmd
    };
    let ref_csv = ref_dir.join("m.csv");
    assert!(run(&ref_csv, false).status().unwrap().success());

    let kill_csv = kill_dir.join("m.csv");
    let journal = kill_dir.join("m.journal.jsonl");
    let mut interrupted = false;
    for _attempt in 0..3 {
        let mut child = run(&kill_csv, false).spawn().unwrap();
        // Kill as soon as a few cells are journaled but before the CSV
        // lands; each record is fsync'd so the prefix survives the kill.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            if kill_csv.exists() || std::time::Instant::now() > deadline {
                break;
            }
            let lines = std::fs::File::open(&journal)
                .map(|mut f| {
                    let mut s = String::new();
                    let _ = f.read_to_string(&mut s);
                    s.lines().count()
                })
                .unwrap_or(0);
            if lines >= 4 {
                let _ = child.kill();
                interrupted = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let _ = child.wait();
        if interrupted {
            break;
        }
        let _ = std::fs::remove_file(&kill_csv);
        let _ = std::fs::remove_file(&journal);
    }
    assert!(
        interrupted,
        "never caught the campaign mid-journal; widen the matrix spec"
    );
    assert!(journal.exists(), "kill must leave the journal behind");
    assert!(!kill_csv.exists(), "kill must precede the CSV write");

    assert!(run(&kill_csv, true).status().unwrap().success());
    let reference = std::fs::read_to_string(&ref_csv).unwrap();
    let resumed = std::fs::read_to_string(&kill_csv).unwrap();
    assert_eq!(reference, resumed, "resumed CSV diverged");
    let ref_events = std::fs::read_to_string(ref_dir.join("attack_events.jsonl")).unwrap();
    let res_events = std::fs::read_to_string(kill_dir.join("attack_events.jsonl")).unwrap();
    assert_eq!(ref_events, res_events, "resumed event stream diverged");
    assert!(!journal.exists(), "clean resume finalizes the journal");
    let _ = std::fs::remove_dir_all(&dir);
}
