//! Analytic experiment regenerators: the tables that need no simulation
//! (Tables I, II, III, VII, X, XI, XII and the Figure 9 decomposition).

use mirza_core::config::{mint_tolerated_trhd, MirzaConfig, ABO_EXTRA_ACTS, DEFAULT_QTH};
use mirza_dram::geometry::Geometry;
use mirza_dram::timing::TimingParams;
use mirza_security::area::table10;
use mirza_security::dos::{
    alert_storm_slowdown, mint_rfm_attack_slowdown, mirza_attack_slowdown, prac_attack_slowdown,
    table11,
};
use mirza_security::proactive::table2;
use mirza_trackers::mint_ref::MintRef;
use std::fmt::Write as _;

/// Table I: DRAM timing parameters, baseline vs PRAC.
pub fn table1() -> String {
    let b = TimingParams::ddr5_6000();
    let p = TimingParams::ddr5_6000_prac();
    let mut out = String::from(
        "Table I: DRAM timings (DDR5-6000AN)\n\
         param   baseline   PRAC\n",
    );
    let rows = [
        ("tRCD", b.t_rcd, p.t_rcd),
        ("tRP", b.t_rp, p.t_rp),
        ("tRAS", b.t_ras, p.t_ras),
        ("tRC", b.t_rc, p.t_rc),
        ("tREFW", b.t_refw, p.t_refw),
        ("tREFI", b.t_refi, p.t_refi),
        ("tRFC", b.t_rfc, p.t_rfc),
    ];
    for (name, base, prac) in rows {
        let _ = writeln!(out, "{name:<7} {base:>9} {prac:>9}");
    }
    out
}

/// Table II: TRHD tolerated by proactive MINT and Mithril.
pub fn table2_report() -> String {
    let t = TimingParams::ddr5_6000();
    let mut out = String::from(
        "Table II: tolerated TRHD of proactive trackers\n\
         rate           cannibal.   MINT     Mithril(2K)\n",
    );
    for row in table2(&t) {
        let _ = writeln!(
            out,
            "1 per {:<2} REF   {:>6.1}%   {:>6.0}   {:>8.0}",
            row.refs_per_mitigation,
            100.0 * row.refresh_cannibalization,
            row.mint_trhd,
            row.mithril_trhd
        );
    }
    out
}

/// Table III: baseline system configuration.
pub fn table3() -> String {
    let g = Geometry::ddr5_32gb();
    format!(
        "Table III: baseline system configuration\n\
         cores            8 OOO, 4 GHz, 4-wide, 392-entry ROB\n\
         LLC              16 MB, 16-way, 64 B lines\n\
         memory           {} GB DDR5, {} sub-channels x {} banks\n\
         rows per bank    {}K rows of {} B\n\
         tALERT           180 ns (prologue) + 350 ns (stall)\n\
         address mapping  MOP4, soft close-page policy\n",
        g.total_bytes() >> 30,
        g.subchannels,
        g.banks,
        g.rows_per_bank / 1024,
        g.row_bytes,
    )
}

/// Table VII: MIRZA configurations per target TRHD.
pub fn table7() -> String {
    let mut out = String::from(
        "Table VII: MIRZA configurations\n\
         TRHD   FTH    MINT-W   regions/bank   SRAM/bank (B)\n",
    );
    for cfg in [
        MirzaConfig::trhd_2000(),
        MirzaConfig::trhd_1000(),
        MirzaConfig::trhd_500(),
    ] {
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:<8} {:<14} {}",
            cfg.target_trhd,
            cfg.fth,
            cfg.mint_w,
            cfg.regions_per_bank,
            cfg.sram_bytes_per_bank()
        );
    }
    out
}

/// Figure 9: safe-TRH phase decomposition.
pub fn fig9() -> String {
    let mut out = String::from(
        "Figure 9: unmitigated-ACT budget by phase (double-sided bound)\n\
         TRHD   Phase-A(FTH/2)  Phase-B(MINT)  Phase-C(QTH)  Phase-D(ABO)  bound\n",
    );
    for cfg in [
        MirzaConfig::trhd_2000(),
        MirzaConfig::trhd_1000(),
        MirzaConfig::trhd_500(),
    ] {
        let _ = writeln!(
            out,
            "{:<6} {:<15} {:<14} {:<13} {:<13} {}",
            cfg.target_trhd,
            cfg.fth / 2,
            mint_tolerated_trhd(cfg.mint_w),
            DEFAULT_QTH,
            ABO_EXTRA_ACTS,
            cfg.safe_trhd()
        );
    }
    out
}

/// Table X: relative area of MIRZA and PRAC per subarray.
pub fn table10_report() -> String {
    let mut out = String::from(
        "Table X: relative area per 1K-row subarray (6F^2 DRAM / 120F^2 SRAM)\n\
         TRHD   MIRZA SRAM bits   PRAC DRAM bits   PRAC/MIRZA area\n",
    );
    for row in table10() {
        let _ = writeln!(
            out,
            "{:<6} {:<17} {:<16} {:.1}x",
            row.trhd, row.mirza_bits, row.prac_bits, row.prac_over_mirza
        );
    }
    out
}

/// Table XI: ACT throughput under the MIRZA performance attack.
pub fn table11_report() -> String {
    let t = TimingParams::ddr5_6000();
    let mut out = String::from(
        "Table XI: benign ACT throughput under performance attack\n\
         MINT-W   throughput   slowdown\n",
    );
    for row in table11(&t) {
        let _ = writeln!(
            out,
            "{:<8} {:>6.1}%      {:.2}x",
            row.mint_w, row.throughput_pct, row.slowdown
        );
    }
    let _ = writeln!(
        out,
        "(continuous ALERT storm bound: {:.1}x)",
        alert_storm_slowdown(&t)
    );
    out
}

/// Table XII: storage and refresh cannibalization at TRHD = 4.8K.
pub fn table12() -> String {
    let geom = Geometry::ddr5_32gb();
    let mirza = MirzaConfig::trhd_4800();
    // TRR: 28 entries x 3 B, one mitigation per 4 REF.
    // MINT: ~20 B (sampler + delayed-mitigation queue), one per 3 REF.
    let trr_cannibal = 100.0 * 280.0 / (410.0 * 4.0);
    let mint_cannibal = 100.0 * MintRef::new(3, &geom, 0).refresh_cannibalization();
    format!(
        "Table XII: in-DRAM trackers at the current TRHD of 4.8K\n\
         tracker   storage/bank   secure?   refresh cannibalization\n\
         TRR       84 B           no        {trr_cannibal:.0}%\n\
         MINT      20 B           yes       {mint_cannibal:.0}%\n\
         MIRZA     {} B           yes       0%\n",
        mirza.sram_bytes_per_bank()
    )
}

/// Appendix A / Table XIII analytic columns: worst-case (performance
/// attack) slowdowns for the three designs.
pub fn table13_attack_column(trhd: u32) -> (f64, f64, f64) {
    let t = TimingParams::ddr5_6000();
    let (bat, w) = match trhd {
        500 => (24, 8),
        1000 => (48, 12),
        _ => (96, 16),
    };
    (
        prac_attack_slowdown(&t, trhd / 16),
        mint_rfm_attack_slowdown(&t, bat),
        mirza_attack_slowdown(&t, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_tables_render() {
        for s in [
            table1(),
            table2_report(),
            table3(),
            table7(),
            fig9(),
            table10_report(),
            table11_report(),
            table12(),
        ] {
            assert!(s.lines().count() >= 3, "table too short:\n{s}");
        }
    }

    #[test]
    fn table7_text_contains_paper_budgets() {
        let t = table7();
        assert!(t.contains("196"));
        assert!(t.contains("116"));
        assert!(t.contains("340"));
    }

    #[test]
    fn attack_columns_are_ordered() {
        for trhd in [500, 1000, 2000] {
            let (prac, rfm, mirza) = table13_attack_column(trhd);
            assert!(prac < rfm && rfm < mirza, "{trhd}: {prac} {rfm} {mirza}");
        }
    }
}
