//! Run cache: experiments share simulation runs (the baseline run of each
//! workload backs every slowdown column), so the lab memoizes reports by
//! (mitigation label, workload).

use std::collections::HashMap;

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_sim::config::MitigationConfig;
use mirza_sim::report::SimReport;
use mirza_sim::runner::run_workload;

use crate::scale::Scale;

/// Memoizing experiment runner.
pub struct Lab {
    scale: Scale,
    cache: HashMap<String, SimReport>,
    /// Print progress lines while running (on for the CLI, off in tests).
    pub verbose: bool,
    /// Append one CSV row per completed run to this file.
    pub csv_path: Option<std::path::PathBuf>,
}

impl Lab {
    /// Creates a lab at the given scale.
    pub fn new(scale: Scale) -> Self {
        Lab {
            scale,
            cache: HashMap::new(),
            verbose: false,
            csv_path: None,
        }
    }

    fn append_csv(&self, report: &SimReport) {
        use std::io::Write as _;
        let Some(path) = &self.csv_path else {
            return;
        };
        let new = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            eprintln!("warning: cannot open {}", path.display());
            return;
        };
        if new {
            let _ = writeln!(f, "{}", SimReport::csv_header());
        }
        let _ = writeln!(f, "{}", report.csv_row());
    }

    /// The scale in force.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The workloads in scope.
    pub fn workloads(&self) -> Vec<&'static str> {
        self.scale.workloads.clone()
    }

    /// Runs (or recalls) `workload` under `mitigation`.
    pub fn run(&mut self, mitigation: MitigationConfig, workload: &str) -> SimReport {
        let key = format!("{}/{workload}", mitigation.label());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if self.verbose {
            eprintln!("  running {key} ...");
        }
        let cfg = self.scale.sim_config(mitigation);
        let report = run_workload(&cfg, workload);
        self.append_csv(&report);
        self.cache.insert(key, report.clone());
        report
    }

    /// The unprotected baseline report for `workload`.
    pub fn baseline(&mut self, workload: &str) -> SimReport {
        self.run(MitigationConfig::None, workload)
    }

    /// Percent slowdown of `mitigation` on `workload` versus baseline.
    pub fn slowdown(&mut self, mitigation: MitigationConfig, workload: &str) -> f64 {
        let base = self.baseline(workload);
        self.run(mitigation, workload).slowdown_pct(&base)
    }

    /// Mean percent slowdown over all in-scope workloads.
    pub fn avg_slowdown(&mut self, mitigation: MitigationConfig) -> f64 {
        let ws = self.workloads();
        let sum: f64 = ws.iter().map(|w| self.slowdown(mitigation, w)).sum();
        sum / ws.len() as f64
    }

    /// MIRZA mitigation config for a target TRHD, scaled to this lab.
    pub fn mirza(&self, trhd: u32) -> MitigationConfig {
        let cfg = match trhd {
            500 => MirzaConfig::trhd_500(),
            1000 => MirzaConfig::trhd_1000(),
            2000 => MirzaConfig::trhd_2000(),
            4800 => MirzaConfig::trhd_4800(),
            _ => panic!("no Table VII preset for TRHD {trhd}"),
        };
        MitigationConfig::Mirza {
            cfg: self.scale.mirza_config(cfg),
            policy: ResetPolicy::Safe,
        }
    }

    /// MIRZA sensitivity config (Table IX) for a MINT window, scaled.
    pub fn mirza_sensitivity(&self, mint_w: u32) -> MitigationConfig {
        MitigationConfig::Mirza {
            cfg: self.scale.mirza_config(MirzaConfig::sensitivity_1000(mint_w)),
            policy: ResetPolicy::Safe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_reports() {
        let mut lab = Lab::new(Scale::smoke());
        let a = lab.run(MitigationConfig::None, "lbm");
        let b = lab.run(MitigationConfig::None, "lbm");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.device.acts, b.device.acts);
    }

    #[test]
    fn baseline_slowdown_is_zero() {
        let mut lab = Lab::new(Scale::smoke());
        let s = lab.slowdown(MitigationConfig::None, "lbm");
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn mirza_config_is_scaled() {
        let lab = Lab::new(Scale::smoke());
        match lab.mirza(1000) {
            MitigationConfig::Mirza { cfg, .. } => {
                assert_eq!(cfg.fth, 1500 / 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no Table VII preset")]
    fn unknown_trhd_panics() {
        let lab = Lab::new(Scale::smoke());
        let _ = lab.mirza(750);
    }
}
