//! Run cache: experiments share simulation runs (the baseline run of each
//! workload backs every slowdown column), so the lab memoizes reports by
//! (mitigation label, workload).
//!
//! With `jobs > 1` the lab also fronts the supervised work-pool
//! (`mirza-runner`): [`Lab::prewarm`] executes a set of (mitigation,
//! workload) cells on worker threads and parks the finished runs in a
//! pending map. The experiment drivers stay serial and call [`Lab::run`]
//! in their natural order; a pending hit replays the parked run through
//! the exact serial bookkeeping sequence (audit warnings, epoch streams,
//! manifest record, CSV append, cache insert), so manifests and CSVs are
//! bit-identical to a `jobs = 1` run in their gated sections regardless of
//! worker completion order. Prewarming a pair no driver ever asks for
//! wastes compute but cannot alter any output.

use std::collections::{HashMap, HashSet};

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_runner::{scale_wall_budget, Cell, CellFailure, Pool};
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::faults::{FaultInjector, FaultPlan};
use mirza_sim::report::SimReport;
use mirza_sim::runner::try_run_workload_with;
use mirza_sim::SimError;
use mirza_telemetry::{
    names, progress, ChromeTraceSink, EpochSampler, Json, SpanCollector, Telemetry,
};

use crate::scale::Scale;

/// Memoizing experiment runner.
pub struct Lab {
    scale: Scale,
    cache: HashMap<String, SimReport>,
    /// Print progress lines while running (on for the CLI, off in tests).
    pub verbose: bool,
    /// Append one CSV row per completed run to this file.
    pub csv_path: Option<std::path::PathBuf>,
    /// Progress heartbeat period in retired instructions (`None` = silent).
    pub heartbeat_every: Option<u64>,
    /// Epoch sampling period in picoseconds (`None` = sampler off). Each
    /// simulated run leaves `epochs_<label>_<workload>.jsonl` in
    /// [`Lab::epoch_dir`] and a per-series summary in the manifest.
    pub epoch_ps: Option<u64>,
    /// Directory for epoch JSONL streams (created on demand).
    pub epoch_dir: std::path::PathBuf,
    /// Attach the independent DDR5 protocol auditor to every run.
    pub audit: bool,
    /// Runs that flagged protocol violations, as `(run key, count)`.
    audit_failures: Vec<(String, u64)>,
    /// Per-experiment run records, collected when manifest mode is on.
    manifest: Option<Vec<(String, Vec<Json>)>>,
    /// Fault plan injected into every fresh simulation (`None` = no
    /// faults). Turning a plan on also arms the auditor's per-row ACT
    /// census so each run record carries a security verdict.
    pub fault_plan: Option<FaultPlan>,
    /// Wall-clock watchdog budget per simulation, in seconds.
    pub watchdog_wall_secs: Option<u64>,
    /// Attach the request-lifecycle span collector to every fresh run, so
    /// each report carries per-bucket stall attribution.
    pub attribution: bool,
    /// Arm the hot-path opportunity counters (`mc.opp_*`, `dram.opp_*`)
    /// on every fresh run; each run record then carries an `opportunity`
    /// summary sizing the next-event skip-ahead win.
    pub opportunity: bool,
    /// Base path for Chrome trace-event JSON. Each fresh run writes
    /// `<stem>_<label>-<workload>.<ext>` next to it (implies spans).
    pub trace_chrome: Option<std::path::PathBuf>,
    /// Drive every fresh run with the legacy eager per-quantum loop
    /// instead of the next-event core (escape hatch; bit-identical by
    /// contract, see `sim/tests/event_core.rs`).
    pub legacy_loop: bool,
    /// Where the manifest will be written; a fatal error flushes the
    /// partial document here before exiting.
    pub manifest_path: Option<std::path::PathBuf>,
    /// Worker threads for [`Lab::prewarm`] campaigns (1 = fully serial;
    /// the CLI stamps `--jobs` here). Any value preserves serial output:
    /// see the module docs.
    pub jobs: usize,
    /// Completed parallel runs awaiting their serial-order replay.
    prewarmed: HashMap<String, PrewarmedRun>,
    /// Cells that failed in the pool after supervision. The serial pass
    /// re-attempts each on demand; persistent errors still end in
    /// [`Lab::fatal`] with the underlying error's exit code, and the
    /// manifest carries this list as a top-level `failures` section.
    prewarm_failures: Vec<CellFailure>,
    /// Aggregate pool statistics across prewarm campaigns (manifest
    /// top-level `runner` section; absent when no pool ever ran).
    runner_stats: Option<RunnerStats>,
}

/// Pool rollup stamped into the manifest (top level, like `provenance`,
/// so neither gate ever diffs it).
#[derive(Debug, Default, Clone)]
struct RunnerStats {
    campaigns: u64,
    cells: u64,
    retries: u64,
    failures: u64,
    wall_secs: f64,
    per_worker: Vec<u64>,
}

impl RunnerStats {
    fn absorb<T>(&mut self, outcome: &mirza_runner::Outcome<T>) {
        self.campaigns += 1;
        self.cells += outcome.results.len() as u64;
        self.retries += outcome.retries;
        self.failures += outcome.failures.len() as u64;
        self.wall_secs += outcome.wall.as_secs_f64();
        if self.per_worker.len() < outcome.per_worker.len() {
            self.per_worker.resize(outcome.per_worker.len(), 0);
        }
        for (slot, cells) in outcome.per_worker.iter().enumerate() {
            self.per_worker[slot] += cells;
        }
    }

    fn to_json(&self, jobs: usize) -> Json {
        let mut doc = Json::obj();
        doc.push("jobs", jobs as u64)
            .push("campaigns", self.campaigns)
            .push("cells", self.cells)
            .push("retries", self.retries)
            .push("failures", self.failures)
            .push("wall_secs", self.wall_secs)
            .push(
                "per_worker",
                Json::Arr(self.per_worker.iter().map(|&c| Json::U64(c)).collect()),
            );
        doc
    }
}

/// Everything a worker needs to execute one (mitigation, workload) cell —
/// plain data, shareable across threads.
struct LabCellSpec {
    key: String,
    label: String,
    workload: String,
    cfg: SimConfig,
    manifest_on: bool,
    epoch_ps: Option<u64>,
    opportunity: bool,
    spanning: bool,
    chrome_path: Option<std::path::PathBuf>,
    fault_plan: Option<FaultPlan>,
    verbose: bool,
}

/// A completed run carried from a worker back to the serial replay: the
/// report plus every manifest section precomputed, so the replay touches
/// no telemetry and stays byte-deterministic.
struct PrewarmedRun {
    label: String,
    workload: String,
    cfg: SimConfig,
    report: SimReport,
    sections: RunSections,
    violations: u64,
    epochs_jsonl: Option<String>,
}

/// The optional per-run manifest sections, gathered while the run's
/// telemetry is still live (worker-side for pooled runs, inline for
/// serial ones).
struct RunSections {
    telemetry: Json,
    epochs: Option<Json>,
    host_profile: Option<Json>,
    audit_violations: Option<u64>,
    faults: Option<Json>,
    verdict: Option<Json>,
    opportunity: Option<Json>,
}

/// [`Cell`] adapter for the pool.
struct LabCell {
    spec: LabCellSpec,
}

impl Cell for LabCell {
    type Out = PrewarmedRun;

    fn id(&self) -> String {
        self.spec.key.clone()
    }

    fn run(&self) -> Result<PrewarmedRun, SimError> {
        // Partial epoch streams of failed cells are dropped here; the
        // serial retry regenerates (and on a persistent error, flushes)
        // them via `Lab::fatal`.
        Lab::execute_spec(&self.spec).map_err(|(err, _epochs)| err)
    }
}

impl Lab {
    /// Creates a lab at the given scale.
    pub fn new(scale: Scale) -> Self {
        Lab {
            scale,
            cache: HashMap::new(),
            verbose: false,
            csv_path: None,
            heartbeat_every: None,
            epoch_ps: None,
            epoch_dir: std::path::PathBuf::from("epochs"),
            audit: false,
            audit_failures: Vec::new(),
            manifest: None,
            fault_plan: None,
            watchdog_wall_secs: None,
            manifest_path: None,
            attribution: false,
            opportunity: false,
            trace_chrome: None,
            legacy_loop: false,
            jobs: 1,
            prewarmed: HashMap::new(),
            prewarm_failures: Vec::new(),
            runner_stats: None,
        }
    }

    /// Starts collecting run manifests: every simulation from here on runs
    /// with telemetry enabled and leaves a JSON record (config, report,
    /// metric summaries) in the document returned by [`Lab::manifest_json`].
    pub fn enable_manifest(&mut self) {
        if self.manifest.is_none() {
            self.manifest = Some(Vec::new());
        }
    }

    /// Opens a new experiment group; subsequent runs are recorded under
    /// `name`. No-op unless manifest mode is on.
    pub fn begin_experiment(&mut self, name: &str) {
        if let Some(groups) = &mut self.manifest {
            groups.push((name.to_string(), Vec::new()));
        }
    }

    /// Gathers every optional manifest section from a run's live
    /// telemetry. Each is attached only when its collector ran, so
    /// probe-off manifests stay byte-compatible with earlier versions.
    /// Static (no `&self`) so pool workers can call it for prewarmed runs.
    fn collect_sections(
        opportunity_on: bool,
        cfg: &SimConfig,
        telemetry: &Telemetry,
        injector: Option<&FaultInjector>,
    ) -> RunSections {
        RunSections {
            telemetry: telemetry.to_json().unwrap_or(Json::Null),
            epochs: telemetry.epochs_summary_json(),
            host_profile: telemetry.profile_json(),
            audit_violations: cfg
                .audit
                .then(|| telemetry.counter(names::AUDIT_VIOLATIONS)),
            faults: injector.map(FaultInjector::summary_json),
            verdict: injector
                .is_some()
                .then(|| Self::security_verdict(cfg, telemetry)),
            opportunity: opportunity_on.then(|| Self::opportunity_summary(telemetry)),
        }
    }

    fn record_run(
        &mut self,
        label: &str,
        workload: &str,
        cfg: &SimConfig,
        report: &SimReport,
        sections: RunSections,
    ) {
        let Some(groups) = &mut self.manifest else {
            return;
        };
        if groups.is_empty() {
            groups.push(("ungrouped".to_string(), Vec::new()));
        }
        let mut run = Json::obj();
        run.push("label", label)
            .push("workload", workload)
            .push("config", cfg.to_json())
            .push("report", report.to_json())
            .push("telemetry", sections.telemetry);
        if let Some(e) = sections.epochs {
            run.push("epochs", e);
        }
        if let Some(h) = sections.host_profile {
            run.push("host_profile", h);
        }
        if let Some(v) = sections.audit_violations {
            run.push("audit_violations", v);
        }
        if let Some(f) = sections.faults {
            run.push("faults", f);
        }
        if let Some(v) = sections.verdict {
            run.push("security_verdict", v);
        }
        if let Some(o) = sections.opportunity {
            run.push("opportunity", o);
        }
        groups
            .last_mut()
            .expect("just ensured non-empty")
            .1
            .push(run);
    }

    /// Compares the auditor's maximum per-row ACT census against the NBO
    /// activation bound of the configured mitigation. The census is a
    /// conservative upper bound (targeted mitigations are not credited),
    /// so `holds == true` means the Rowhammer guarantee survived the
    /// injected faults; `holds == false` flags a run for inspection, not
    /// a proven break. Non-MIRZA mitigations have no NBO bound, so the
    /// verdict degrades to reporting the observed maximum.
    fn security_verdict(cfg: &SimConfig, telemetry: &Telemetry) -> Json {
        let max_row_acts = telemetry.counter(names::AUDIT_MAX_ROW_ACTS);
        let nbo_bound = match &cfg.mitigation {
            MitigationConfig::Mirza { cfg: mirza, .. } => Some(u64::from(mirza.safe_trhd())),
            _ => None,
        };
        let mut v = Json::obj();
        v.push("max_row_acts", max_row_acts);
        match nbo_bound {
            Some(bound) => {
                v.push("nbo_bound", bound)
                    .push("holds", max_row_acts <= bound);
            }
            None => {
                v.push("nbo_bound", Json::Null).push("holds", Json::Null);
            }
        }
        v
    }

    /// Distills the run's opportunity counters into the manifest section
    /// that audits the next-event core: how many scheduler passes still do
    /// no work (visited windows that held no device event), how far ahead
    /// the next pending command sat when a pass went idle, and how much
    /// simulated time the event loop actually skipped.
    fn opportunity_summary(telemetry: &Telemetry) -> Json {
        let passes = telemetry.counter(names::MC_OPP_SCHED_PASSES);
        let idle = telemetry.counter(names::MC_OPP_IDLE_PASSES);
        let mut o = Json::obj();
        o.push("sched_passes", passes)
            .push("idle_passes", idle)
            .push(
                "idle_pass_frac",
                if passes > 0 {
                    idle as f64 / passes as f64
                } else {
                    0.0
                },
            );
        let hist_summary = |name: &'static str| {
            telemetry
                .with_recorder(|r| {
                    r.registry
                        .histogram(name)
                        .map(mirza_telemetry::Histogram::summary)
                })
                .flatten()
        };
        for (key, name) in [
            ("skip_gap_ns", names::MC_OPP_SKIP_GAP_NS),
            ("skip_taken_ns", names::SIM_OPP_SKIP_TAKEN_NS),
        ] {
            match hist_summary(name) {
                Some(s) => {
                    let mut g = Json::obj();
                    g.push("count", s.count)
                        .push("p50", s.p50)
                        .push("p90", s.p90)
                        .push("p99", s.p99)
                        .push("max", s.max);
                    o.push(key, g);
                }
                None => {
                    o.push(key, Json::Null);
                }
            }
        }
        o
    }

    /// The manifest document collected so far (`None` unless enabled).
    /// Cache recalls are not re-recorded: each simulated run appears once,
    /// under the experiment that first triggered it.
    pub fn manifest_json(&self) -> Option<Json> {
        let groups = self.manifest.as_ref()?;
        let experiments: Vec<Json> = groups
            .iter()
            .map(|(name, runs)| {
                let mut e = Json::obj();
                e.push("name", name.as_str()).push("runs", runs.clone());
                e
            })
            .collect();
        let mut doc = Json::obj();
        doc.push("scale", self.scale.to_json())
            .push("seed", self.scale.seed)
            // Top-level only: both gates (compare.rs, bench_gate.py) key on
            // scale/seed/runs, so provenance never trips a regression diff.
            .push(
                "provenance",
                crate::provenance::to_json_with_jobs(self.jobs),
            )
            .push("experiments", experiments);
        if let Some(stats) = &self.runner_stats {
            doc.push("runner", stats.to_json(self.jobs));
        }
        if !self.prewarm_failures.is_empty() {
            let failures: Vec<Json> = self
                .prewarm_failures
                .iter()
                .map(|f| {
                    let mut j = Json::obj();
                    j.push("cell", f.id.as_str())
                        .push("attempts", u64::from(f.attempts))
                        .push("error", f.error.to_string());
                    j
                })
                .collect();
            doc.push("failures", Json::Arr(failures));
        }
        Some(doc)
    }

    /// Writes the collected manifest to `path` as pretty-printed JSON.
    pub fn write_manifest(&self, path: &std::path::Path) -> std::io::Result<()> {
        let doc = self.manifest_json().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "manifest mode is off")
        })?;
        std::fs::write(path, doc.to_string_pretty() + "\n")
    }

    /// Rotates `path` to `path.old` when its first line is not the current
    /// [`SimReport::csv_header`]: appending rows to a file written by an
    /// older binary would silently shift every column under the stale
    /// header.
    fn rotate_stale_csv(path: &std::path::Path) {
        use std::io::BufRead as _;
        let Ok(f) = std::fs::File::open(path) else {
            return; // absent (or unreadable): the append path handles it
        };
        let mut first = String::new();
        if std::io::BufReader::new(f).read_line(&mut first).is_err() {
            return;
        }
        let first = first.trim_end_matches(['\r', '\n']);
        if first.is_empty() || first == SimReport::csv_header() {
            return;
        }
        let mut old = path.as_os_str().to_os_string();
        old.push(".old");
        match std::fs::rename(path, &old) {
            Ok(()) => eprintln!(
                "warning: {} had a stale CSV header; rotated to {}",
                path.display(),
                std::path::Path::new(&old).display()
            ),
            Err(e) => eprintln!("warning: cannot rotate stale CSV {}: {e}", path.display()),
        }
    }

    fn append_csv(&self, report: &SimReport) {
        use std::io::Write as _;
        let Some(path) = &self.csv_path else {
            return;
        };
        Self::rotate_stale_csv(path);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        else {
            eprintln!("warning: cannot open {}", path.display());
            return;
        };
        // Header iff the file is empty *after* opening: probing `exists()`
        // beforehand writes a second header when the path appears between
        // the probe and the open, and skips it for pre-created empty files.
        let empty = f.metadata().map(|m| m.len() == 0).unwrap_or(false);
        if empty {
            let _ = writeln!(f, "{}", SimReport::csv_header());
        }
        let _ = writeln!(f, "{}", report.csv_row());
    }

    /// The scale in force.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The workloads in scope.
    pub fn workloads(&self) -> Vec<&'static str> {
        self.scale.workloads.clone()
    }

    /// Runs (or recalls) `workload` under `mitigation`. Probe collectors
    /// (epoch sampler, host profiler, protocol auditor) attach only to
    /// fresh simulations — cache recalls return the memoized report, and a
    /// [`Lab::prewarm`]-completed run replays its parked result through
    /// the same serial bookkeeping a fresh run would perform.
    pub fn run(&mut self, mitigation: MitigationConfig, workload: &str) -> SimReport {
        let key = format!("{}/{workload}", mitigation.label());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if let Some(p) = self.prewarmed.remove(&key) {
            return self.replay(key, p);
        }
        let spec = self.cell_spec(mitigation, workload, key.clone());
        match Self::execute_spec(&spec) {
            Ok(p) => self.replay(key, p),
            Err((err, epochs_jsonl)) => self.fatal(&key, epochs_jsonl.as_deref(), &err),
        }
    }

    /// Builds the plain-data execution spec for one cell. The wall-clock
    /// watchdog budget scales with the active job count so oversubscribed
    /// hosts don't trip spurious aborts; the simulated-time idle budget is
    /// per-cell and deliberately unscaled.
    fn cell_spec(&self, mitigation: MitigationConfig, workload: &str, key: String) -> LabCellSpec {
        let mut cfg = self.scale.sim_config(mitigation);
        cfg.heartbeat_every = self.heartbeat_every;
        // Fault injection arms the auditor (and its per-row ACT census) so
        // the security verdict has shadow state to compare against.
        cfg.audit = self.audit || self.fault_plan.is_some();
        cfg.track_row_acts = self.fault_plan.is_some();
        cfg.watchdog_wall = self
            .watchdog_wall_secs
            .map(|s| scale_wall_budget(std::time::Duration::from_secs(s), self.jobs));
        cfg.legacy_loop = self.legacy_loop;
        LabCellSpec {
            label: mitigation.label(),
            workload: workload.to_string(),
            cfg,
            manifest_on: self.manifest.is_some(),
            epoch_ps: self.epoch_ps,
            opportunity: self.opportunity,
            spanning: self.attribution || self.trace_chrome.is_some(),
            chrome_path: self.chrome_path(&key),
            fault_plan: self.fault_plan.clone(),
            verbose: self.verbose,
            key,
        }
    }

    /// Executes one cell: telemetry session, optional fault injector, the
    /// simulation itself, and the section gathering — everything that
    /// needs the run's live telemetry. Runs on the caller thread for
    /// serial cells and on pool workers for prewarmed ones (each worker
    /// builds its own `Telemetry`; the handle is single-threaded by
    /// design and never crosses). On error, any partial epoch stream rides
    /// along so the fatal path can still flush it.
    fn execute_spec(spec: &LabCellSpec) -> Result<PrewarmedRun, (SimError, Option<String>)> {
        if spec.verbose {
            progress::line(&format!("  running {} ...", spec.key));
        }
        let probing = spec.epoch_ps.is_some() || spec.cfg.audit;
        let mut telemetry = if spec.manifest_on || probing || spec.spanning || spec.opportunity {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        if spec.opportunity {
            telemetry = telemetry.with_opportunity();
        }
        if let Some(ps) = spec.epoch_ps {
            telemetry = telemetry.with_epochs(EpochSampler::new(ps));
        }
        if spec.manifest_on {
            telemetry = telemetry.with_profiler();
        }
        if spec.spanning {
            let mut spans = SpanCollector::new();
            if let Some(sink) = Self::open_chrome(spec.chrome_path.as_deref(), spec.verbose) {
                spans = spans.with_chrome(sink);
            }
            telemetry = telemetry.with_spans(spans);
        }
        let injector = spec
            .fault_plan
            .clone()
            .map(|plan| FaultInjector::new(plan, telemetry.clone()));
        let report = match try_run_workload_with(
            &spec.cfg,
            &spec.workload,
            telemetry.clone(),
            injector.as_ref(),
        ) {
            Ok(r) => r,
            Err(err) => {
                let epochs = telemetry.epochs_jsonl();
                telemetry.flush();
                return Err((err, epochs));
            }
        };
        let violations = if spec.cfg.audit {
            telemetry.counter(names::AUDIT_VIOLATIONS)
        } else {
            0
        };
        let sections =
            Self::collect_sections(spec.opportunity, &spec.cfg, &telemetry, injector.as_ref());
        let epochs_jsonl = telemetry.epochs_jsonl();
        telemetry.flush();
        Ok(PrewarmedRun {
            label: spec.label.clone(),
            workload: spec.workload.clone(),
            cfg: spec.cfg.clone(),
            report,
            sections,
            violations,
            epochs_jsonl,
        })
    }

    /// The serial bookkeeping tail every completed run goes through, in
    /// the exact order the pre-pool serial path used: audit warning,
    /// epoch stream, manifest record, CSV append, cache insert. Pooled
    /// runs pass through here at `Lab::run` time, which is what pins
    /// manifest grouping and CSV row order to the drivers' call order.
    fn replay(&mut self, key: String, p: PrewarmedRun) -> SimReport {
        if p.violations > 0 {
            eprintln!(
                "warning: {key}: {} protocol violation(s) flagged",
                p.violations
            );
            self.audit_failures.push((key.clone(), p.violations));
        }
        if let Some(jsonl) = &p.epochs_jsonl {
            self.write_epoch_jsonl(&key, jsonl);
        }
        let PrewarmedRun {
            label,
            workload,
            cfg,
            report,
            sections,
            ..
        } = p;
        self.record_run(&label, &workload, &cfg, &report, sections);
        self.append_csv(&report);
        self.cache.insert(key, report.clone());
        report
    }

    /// Runs the given (mitigation, workload) cells on the supervised pool
    /// and parks the results for later [`Lab::run`] replay. No-op at
    /// `jobs <= 1` (the serial path stays byte-for-byte untouched) and for
    /// pairs already cached, parked, or duplicated in `pairs`. Cells that
    /// fail after supervision are recorded in the manifest `failures`
    /// section and retried serially when (and if) a driver asks for them.
    pub fn prewarm(&mut self, pairs: &[(MitigationConfig, &'static str)]) {
        if self.jobs <= 1 {
            return;
        }
        let mut seen = HashSet::new();
        let mut cells = Vec::new();
        for &(mitigation, workload) in pairs {
            let key = format!("{}/{workload}", mitigation.label());
            if self.cache.contains_key(&key)
                || self.prewarmed.contains_key(&key)
                || !seen.insert(key.clone())
            {
                continue;
            }
            cells.push(LabCell {
                spec: self.cell_spec(mitigation, workload, key),
            });
        }
        if cells.is_empty() {
            return;
        }
        let outcome = Pool::with_jobs(self.jobs).run(&cells, None);
        self.runner_stats
            .get_or_insert_with(RunnerStats::default)
            .absorb(&outcome);
        for (cell, result) in cells.iter().zip(outcome.results) {
            if let Some(p) = result {
                self.prewarmed.insert(cell.spec.key.clone(), p);
            }
        }
        for f in &outcome.failures {
            eprintln!(
                "warning: cell {} failed after {} attempt(s): {} (will retry serially on demand)",
                f.id, f.attempts, f.error
            );
        }
        self.prewarm_failures.extend(outcome.failures);
    }

    /// Terminal error path: flush what the run produced (epoch stream,
    /// partial manifest) so a crashed sweep still leaves evidence on disk,
    /// then exit with the error's dedicated code. Never returns. Sinks
    /// were already flushed inside [`Lab::execute_spec`] before the error
    /// propagated here; only the lab-level artifacts remain.
    fn fatal(&self, key: &str, epochs_jsonl: Option<&str>, err: &SimError) -> ! {
        eprintln!("error: {err}");
        if let Some(jsonl) = epochs_jsonl {
            self.write_epoch_jsonl(key, jsonl);
        }
        if let Some(path) = &self.manifest_path {
            if self.manifest.is_some() {
                match self.write_manifest(path) {
                    Ok(()) => eprintln!("wrote partial manifest to {}", path.display()),
                    Err(e) => eprintln!("warning: cannot write partial manifest: {e}"),
                }
            }
        }
        std::process::exit(i32::from(err.exit_code()));
    }

    /// Runs that the protocol auditor flagged, as `(mitigation/workload,
    /// violation count)` pairs. Empty when auditing is off or clean.
    pub fn audit_failures(&self) -> &[(String, u64)] {
        &self.audit_failures
    }

    /// Computes the per-run Chrome trace path derived from `trace_chrome`
    /// (`<stem>_<label>-<workload>.<ext>` in the same directory) and
    /// creates the parent. Path computation stays on the serial side so
    /// cell specs carry a finished path; the worker only opens it.
    fn chrome_path(&self, key: &str) -> Option<std::path::PathBuf> {
        let base = self.trace_chrome.as_ref()?;
        let sanitized: String = key
            .chars()
            .map(|c| if c == '/' || c == ' ' { '-' } else { c })
            .collect();
        let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
        let name = format!("{stem}_{sanitized}.{ext}");
        match base.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("warning: cannot create {}: {e}", dir.display());
                    return None;
                }
                Some(dir.join(name))
            }
            _ => Some(std::path::PathBuf::from(name)),
        }
    }

    /// Opens a Chrome trace sink at `path` (worker-safe: no `&self`).
    fn open_chrome(path: Option<&std::path::Path>, verbose: bool) -> Option<ChromeTraceSink> {
        let path = path?;
        match std::fs::File::create(path) {
            Ok(f) => {
                if verbose {
                    progress::line(&format!("  tracing to {}", path.display()));
                }
                Some(ChromeTraceSink::new(Box::new(std::io::BufWriter::new(f))))
            }
            Err(e) => {
                eprintln!(
                    "warning: cannot create chrome trace {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    fn write_epoch_jsonl(&self, key: &str, jsonl: &str) {
        let name: String = format!("epochs_{key}.jsonl")
            .chars()
            .map(|c| if c == '/' || c == ' ' { '-' } else { c })
            .collect();
        let path = self.epoch_dir.join(name);
        let write =
            std::fs::create_dir_all(&self.epoch_dir).and_then(|()| std::fs::write(&path, jsonl));
        if let Err(e) = write {
            eprintln!("warning: cannot write epoch stream {}: {e}", path.display());
        } else if self.verbose {
            eprintln!("  wrote {}", path.display());
        }
    }

    /// The unprotected baseline report for `workload`.
    pub fn baseline(&mut self, workload: &str) -> SimReport {
        self.run(MitigationConfig::None, workload)
    }

    /// Percent slowdown of `mitigation` on `workload` versus baseline.
    pub fn slowdown(&mut self, mitigation: MitigationConfig, workload: &str) -> f64 {
        let base = self.baseline(workload);
        self.run(mitigation, workload).slowdown_pct(&base)
    }

    /// Mean percent slowdown over all in-scope workloads.
    pub fn avg_slowdown(&mut self, mitigation: MitigationConfig) -> f64 {
        let ws = self.workloads();
        let sum: f64 = ws.iter().map(|w| self.slowdown(mitigation, w)).sum();
        sum / ws.len() as f64
    }

    /// MIRZA mitigation config for a target TRHD, scaled to this lab.
    pub fn mirza(&self, trhd: u32) -> MitigationConfig {
        let cfg = match trhd {
            500 => MirzaConfig::trhd_500(),
            1000 => MirzaConfig::trhd_1000(),
            2000 => MirzaConfig::trhd_2000(),
            4800 => MirzaConfig::trhd_4800(),
            _ => panic!("no Table VII preset for TRHD {trhd}"),
        };
        MitigationConfig::Mirza {
            cfg: self.scale.mirza_config(cfg),
            policy: ResetPolicy::Safe,
        }
    }

    /// MIRZA sensitivity config (Table IX) for a MINT window, scaled.
    pub fn mirza_sensitivity(&self, mint_w: u32) -> MitigationConfig {
        MitigationConfig::Mirza {
            cfg: self
                .scale
                .mirza_config(MirzaConfig::sensitivity_1000(mint_w)),
            policy: ResetPolicy::Safe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_reports() {
        let mut lab = Lab::new(Scale::smoke());
        let a = lab.run(MitigationConfig::None, "lbm");
        let b = lab.run(MitigationConfig::None, "lbm");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.device.acts, b.device.acts);
    }

    #[test]
    fn baseline_slowdown_is_zero() {
        let mut lab = Lab::new(Scale::smoke());
        let s = lab.slowdown(MitigationConfig::None, "lbm");
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn mirza_config_is_scaled() {
        let lab = Lab::new(Scale::smoke());
        match lab.mirza(1000) {
            MitigationConfig::Mirza { cfg, .. } => {
                assert_eq!(cfg.fth, 1500 / 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no Table VII preset")]
    fn unknown_trhd_panics() {
        let lab = Lab::new(Scale::smoke());
        let _ = lab.mirza(750);
    }

    #[test]
    fn manifest_groups_runs_by_experiment_without_duplicating_cache_hits() {
        let mut lab = Lab::new(Scale::smoke());
        lab.enable_manifest();
        lab.begin_experiment("exp-a");
        let _ = lab.run(MitigationConfig::None, "lbm");
        lab.begin_experiment("exp-b");
        let _ = lab.run(MitigationConfig::None, "bc");
        let _ = lab.run(MitigationConfig::None, "lbm"); // cache recall
        let doc = lab.manifest_json().expect("manifest mode is on");
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(0xC0FFEE));
        assert!(doc.get("scale").unwrap().get("shrink").is_some());
        let exps = doc.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").unwrap().as_str(), Some("exp-a"));
        let runs_a = exps[0].get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs_a.len(), 1);
        let run = &runs_a[0];
        assert_eq!(run.get("workload").unwrap().as_str(), Some("lbm"));
        assert!(run.get("config").unwrap().get("seed").is_some());
        assert!(run.get("report").unwrap().get("instructions").is_some());
        let hists = run.get("telemetry").unwrap().get("histograms").unwrap();
        assert!(hists.get("mc.read_latency_ns").is_some());
        let runs_b = exps[1].get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs_b.len(), 1, "cache recall must not add a run record");
    }

    #[test]
    fn manifest_off_means_no_document() {
        let lab = Lab::new(Scale::smoke());
        assert!(lab.manifest_json().is_none());
    }

    #[test]
    fn stale_csv_header_rotates_old_file_aside() {
        let path = std::env::temp_dir().join(format!("mirza_lab_stale_{}.csv", std::process::id()));
        let old = std::path::PathBuf::from(format!("{}.old", path.display()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&old);
        std::fs::write(&path, "ancient,header,layout\n1,2,3\n").unwrap();
        let mut lab = Lab::new(Scale::smoke());
        lab.csv_path = Some(path.clone());
        let _ = lab.run(MitigationConfig::None, "lbm");
        let rotated = std::fs::read_to_string(&old).expect("stale file rotated to .old");
        assert!(rotated.starts_with("ancient,header,layout"));
        let fresh = std::fs::read_to_string(&path).unwrap();
        assert_eq!(fresh.lines().next(), Some(SimReport::csv_header()));
        assert_eq!(fresh.lines().count(), 2, "header + one data row");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&old);
    }

    #[test]
    fn matching_csv_header_is_not_rotated() {
        let path = std::env::temp_dir().join(format!("mirza_lab_keep_{}.csv", std::process::id()));
        let old = std::path::PathBuf::from(format!("{}.old", path.display()));
        let _ = std::fs::remove_file(&old);
        let mut lab = Lab::new(Scale::smoke());
        lab.csv_path = Some(path.clone());
        let _ = lab.run(MitigationConfig::None, "lbm");
        let _ = lab.run(MitigationConfig::None, "bc");
        assert!(
            !old.exists(),
            "current-header file must be appended, not rotated"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two data rows");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn probe_sections_land_in_the_manifest() {
        let dir = std::env::temp_dir().join(format!("mirza_lab_epochs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut lab = Lab::new(Scale::smoke());
        lab.enable_manifest();
        lab.epoch_ps = Some(1_000_000);
        lab.epoch_dir = dir.clone();
        lab.audit = true;
        lab.begin_experiment("probe");
        let _ = lab.run(MitigationConfig::None, "lbm");
        assert!(lab.audit_failures().is_empty(), "clean run must stay clean");
        let doc = lab.manifest_json().unwrap();
        let run = &doc.get("experiments").unwrap().as_arr().unwrap()[0]
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        let epochs = run.get("epochs").expect("epoch summary section");
        assert!(epochs.get("epochs").unwrap().as_u64().unwrap() > 0);
        let host = run.get("host_profile").expect("host profiler section");
        assert!(host.get("total_secs").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(run.get("audit_violations").unwrap().as_u64(), Some(0));
        let stream = dir.join("epochs_baseline-lbm.jsonl");
        let text = std::fs::read_to_string(&stream).expect("epoch JSONL written");
        assert!(text.lines().count() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_chrome_writes_one_loadable_file_per_run() {
        let dir = std::env::temp_dir().join(format!("mirza_lab_chrome_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut lab = Lab::new(Scale::bench());
        lab.trace_chrome = Some(dir.join("trace.json"));
        let report = lab.run(MitigationConfig::None, "lbm");
        let a = report.attribution.expect("chrome tracing implies spans");
        assert!(a.conserved);
        let text = std::fs::read_to_string(dir.join("trace_baseline-lbm.json"))
            .expect("per-run chrome trace written");
        let doc = mirza_telemetry::Json::parse(&text).expect("loadable trace-event array");
        assert!(!doc.as_arr().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attribution_lands_inside_the_manifest_report() {
        let mut lab = Lab::new(Scale::bench());
        lab.enable_manifest();
        lab.attribution = true;
        lab.begin_experiment("attribution");
        let _ = lab.run(MitigationConfig::None, "lbm");
        let doc = lab.manifest_json().unwrap();
        let run = &doc.get("experiments").unwrap().as_arr().unwrap()[0]
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        let attribution = run
            .get("report")
            .expect("run record carries the report")
            .get("attribution")
            .expect("report carries the attribution section");
        assert_eq!(
            attribution.get("conserved").unwrap(),
            &mirza_telemetry::Json::Bool(true)
        );
    }

    #[test]
    fn csv_header_written_once_even_into_a_precreated_empty_file() {
        let path = std::env::temp_dir().join(format!("mirza_lab_csv_{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Pre-created empty file, as a shell redirect would leave behind:
        // the old `!path.exists()` probe never wrote the header here.
        std::fs::write(&path, "").unwrap();
        let mut lab = Lab::new(Scale::smoke());
        lab.csv_path = Some(path.clone());
        let _ = lab.run(MitigationConfig::None, "lbm");
        let _ = lab.run(MitigationConfig::None, "bc");
        let text = std::fs::read_to_string(&path).unwrap();
        let headers = text
            .lines()
            .filter(|l| *l == SimReport::csv_header())
            .count();
        assert_eq!(headers, 1, "exactly one header:\n{text}");
        assert_eq!(text.lines().count(), 3, "header + two data rows");
        let _ = std::fs::remove_file(&path);
    }
}
