//! Run cache: experiments share simulation runs (the baseline run of each
//! workload backs every slowdown column), so the lab memoizes reports by
//! (mitigation label, workload).

use std::collections::HashMap;

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_sim::report::SimReport;
use mirza_sim::runner::run_workload_with;
use mirza_telemetry::{Json, Telemetry};

use crate::scale::Scale;

/// Memoizing experiment runner.
pub struct Lab {
    scale: Scale,
    cache: HashMap<String, SimReport>,
    /// Print progress lines while running (on for the CLI, off in tests).
    pub verbose: bool,
    /// Append one CSV row per completed run to this file.
    pub csv_path: Option<std::path::PathBuf>,
    /// Progress heartbeat period in retired instructions (`None` = silent).
    pub heartbeat_every: Option<u64>,
    /// Per-experiment run records, collected when manifest mode is on.
    manifest: Option<Vec<(String, Vec<Json>)>>,
}

impl Lab {
    /// Creates a lab at the given scale.
    pub fn new(scale: Scale) -> Self {
        Lab {
            scale,
            cache: HashMap::new(),
            verbose: false,
            csv_path: None,
            heartbeat_every: None,
            manifest: None,
        }
    }

    /// Starts collecting run manifests: every simulation from here on runs
    /// with telemetry enabled and leaves a JSON record (config, report,
    /// metric summaries) in the document returned by [`Lab::manifest_json`].
    pub fn enable_manifest(&mut self) {
        if self.manifest.is_none() {
            self.manifest = Some(Vec::new());
        }
    }

    /// Opens a new experiment group; subsequent runs are recorded under
    /// `name`. No-op unless manifest mode is on.
    pub fn begin_experiment(&mut self, name: &str) {
        if let Some(groups) = &mut self.manifest {
            groups.push((name.to_string(), Vec::new()));
        }
    }

    fn record_run(
        &mut self,
        label: &str,
        workload: &str,
        cfg: &SimConfig,
        report: &SimReport,
        telemetry: &Telemetry,
    ) {
        let Some(groups) = &mut self.manifest else {
            return;
        };
        if groups.is_empty() {
            groups.push(("ungrouped".to_string(), Vec::new()));
        }
        let mut run = Json::obj();
        run.push("label", label)
            .push("workload", workload)
            .push("config", cfg.to_json())
            .push("report", report.to_json())
            .push("telemetry", telemetry.to_json().unwrap_or(Json::Null));
        groups
            .last_mut()
            .expect("just ensured non-empty")
            .1
            .push(run);
    }

    /// The manifest document collected so far (`None` unless enabled).
    /// Cache recalls are not re-recorded: each simulated run appears once,
    /// under the experiment that first triggered it.
    pub fn manifest_json(&self) -> Option<Json> {
        let groups = self.manifest.as_ref()?;
        let experiments: Vec<Json> = groups
            .iter()
            .map(|(name, runs)| {
                let mut e = Json::obj();
                e.push("name", name.as_str()).push("runs", runs.clone());
                e
            })
            .collect();
        let mut doc = Json::obj();
        doc.push("scale", self.scale.to_json())
            .push("seed", self.scale.seed)
            .push("experiments", experiments);
        Some(doc)
    }

    /// Writes the collected manifest to `path` as pretty-printed JSON.
    pub fn write_manifest(&self, path: &std::path::Path) -> std::io::Result<()> {
        let doc = self.manifest_json().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "manifest mode is off")
        })?;
        std::fs::write(path, doc.to_string_pretty() + "\n")
    }

    fn append_csv(&self, report: &SimReport) {
        use std::io::Write as _;
        let Some(path) = &self.csv_path else {
            return;
        };
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        else {
            eprintln!("warning: cannot open {}", path.display());
            return;
        };
        // Header iff the file is empty *after* opening: probing `exists()`
        // beforehand writes a second header when the path appears between
        // the probe and the open, and skips it for pre-created empty files.
        let empty = f.metadata().map(|m| m.len() == 0).unwrap_or(false);
        if empty {
            let _ = writeln!(f, "{}", SimReport::csv_header());
        }
        let _ = writeln!(f, "{}", report.csv_row());
    }

    /// The scale in force.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The workloads in scope.
    pub fn workloads(&self) -> Vec<&'static str> {
        self.scale.workloads.clone()
    }

    /// Runs (or recalls) `workload` under `mitigation`.
    pub fn run(&mut self, mitigation: MitigationConfig, workload: &str) -> SimReport {
        let key = format!("{}/{workload}", mitigation.label());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if self.verbose {
            eprintln!("  running {key} ...");
        }
        let mut cfg = self.scale.sim_config(mitigation);
        cfg.heartbeat_every = self.heartbeat_every;
        let telemetry = if self.manifest.is_some() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let report = run_workload_with(&cfg, workload, telemetry.clone());
        self.record_run(&mitigation.label(), workload, &cfg, &report, &telemetry);
        self.append_csv(&report);
        self.cache.insert(key, report.clone());
        report
    }

    /// The unprotected baseline report for `workload`.
    pub fn baseline(&mut self, workload: &str) -> SimReport {
        self.run(MitigationConfig::None, workload)
    }

    /// Percent slowdown of `mitigation` on `workload` versus baseline.
    pub fn slowdown(&mut self, mitigation: MitigationConfig, workload: &str) -> f64 {
        let base = self.baseline(workload);
        self.run(mitigation, workload).slowdown_pct(&base)
    }

    /// Mean percent slowdown over all in-scope workloads.
    pub fn avg_slowdown(&mut self, mitigation: MitigationConfig) -> f64 {
        let ws = self.workloads();
        let sum: f64 = ws.iter().map(|w| self.slowdown(mitigation, w)).sum();
        sum / ws.len() as f64
    }

    /// MIRZA mitigation config for a target TRHD, scaled to this lab.
    pub fn mirza(&self, trhd: u32) -> MitigationConfig {
        let cfg = match trhd {
            500 => MirzaConfig::trhd_500(),
            1000 => MirzaConfig::trhd_1000(),
            2000 => MirzaConfig::trhd_2000(),
            4800 => MirzaConfig::trhd_4800(),
            _ => panic!("no Table VII preset for TRHD {trhd}"),
        };
        MitigationConfig::Mirza {
            cfg: self.scale.mirza_config(cfg),
            policy: ResetPolicy::Safe,
        }
    }

    /// MIRZA sensitivity config (Table IX) for a MINT window, scaled.
    pub fn mirza_sensitivity(&self, mint_w: u32) -> MitigationConfig {
        MitigationConfig::Mirza {
            cfg: self
                .scale
                .mirza_config(MirzaConfig::sensitivity_1000(mint_w)),
            policy: ResetPolicy::Safe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_reports() {
        let mut lab = Lab::new(Scale::smoke());
        let a = lab.run(MitigationConfig::None, "lbm");
        let b = lab.run(MitigationConfig::None, "lbm");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.device.acts, b.device.acts);
    }

    #[test]
    fn baseline_slowdown_is_zero() {
        let mut lab = Lab::new(Scale::smoke());
        let s = lab.slowdown(MitigationConfig::None, "lbm");
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn mirza_config_is_scaled() {
        let lab = Lab::new(Scale::smoke());
        match lab.mirza(1000) {
            MitigationConfig::Mirza { cfg, .. } => {
                assert_eq!(cfg.fth, 1500 / 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no Table VII preset")]
    fn unknown_trhd_panics() {
        let lab = Lab::new(Scale::smoke());
        let _ = lab.mirza(750);
    }

    #[test]
    fn manifest_groups_runs_by_experiment_without_duplicating_cache_hits() {
        let mut lab = Lab::new(Scale::smoke());
        lab.enable_manifest();
        lab.begin_experiment("exp-a");
        let _ = lab.run(MitigationConfig::None, "lbm");
        lab.begin_experiment("exp-b");
        let _ = lab.run(MitigationConfig::None, "bc");
        let _ = lab.run(MitigationConfig::None, "lbm"); // cache recall
        let doc = lab.manifest_json().expect("manifest mode is on");
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(0xC0FFEE));
        assert!(doc.get("scale").unwrap().get("shrink").is_some());
        let exps = doc.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").unwrap().as_str(), Some("exp-a"));
        let runs_a = exps[0].get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs_a.len(), 1);
        let run = &runs_a[0];
        assert_eq!(run.get("workload").unwrap().as_str(), Some("lbm"));
        assert!(run.get("config").unwrap().get("seed").is_some());
        assert!(run.get("report").unwrap().get("instructions").is_some());
        let hists = run.get("telemetry").unwrap().get("histograms").unwrap();
        assert!(hists.get("mc.read_latency_ns").is_some());
        let runs_b = exps[1].get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs_b.len(), 1, "cache recall must not add a run record");
    }

    #[test]
    fn manifest_off_means_no_document() {
        let lab = Lab::new(Scale::smoke());
        assert!(lab.manifest_json().is_none());
    }

    #[test]
    fn csv_header_written_once_even_into_a_precreated_empty_file() {
        let path = std::env::temp_dir().join(format!("mirza_lab_csv_{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Pre-created empty file, as a shell redirect would leave behind:
        // the old `!path.exists()` probe never wrote the header here.
        std::fs::write(&path, "").unwrap();
        let mut lab = Lab::new(Scale::smoke());
        lab.csv_path = Some(path.clone());
        let _ = lab.run(MitigationConfig::None, "lbm");
        let _ = lab.run(MitigationConfig::None, "bc");
        let text = std::fs::read_to_string(&path).unwrap();
        let headers = text
            .lines()
            .filter(|l| *l == SimReport::csv_header())
            .count();
        assert_eq!(headers, 1, "exactly one header:\n{text}");
        assert_eq!(text.lines().count(), 3, "header + two data rows");
        let _ = std::fs::remove_file(&path);
    }
}
