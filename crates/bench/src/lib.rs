//! # mirza-bench — experiment regeneration harness
//!
//! One regenerator per table and figure of the paper's evaluation, shared
//! between the `repro` binary (`cargo run -p mirza-bench --bin repro --release -- <exp>`)
//! and the criterion benches.
//!
//! * [`analytic`] — Tables I, II, III, VII, X, XI, XII; Figure 9.
//! * [`experiments`] — Tables IV, V, VI, VIII, IX, XIII; Figures 3, 6,
//!   11a, 11b, 13 (full-system simulation, memoized in a [`lab::Lab`]).
//! * [`attacks_exp`] — Figure 14 (reset policies), the security sweep, and
//!   the simulated DoS cross-check of Table XI.
//! * [`attack_matrix`] — the strategy x schedule x mitigator sweep over
//!   the composable attack framework (`repro attack-matrix`).
//! * [`extensions`] — ablations beyond the published tables (mapping, QTH,
//!   queue capacity, region count, PARA comparison).
//! * [`scale`] — the consistent 1/N scaling of the evaluation setup
//!   (`--smoke`, `--fast`, `--full`).
//! * [`compare`] — manifest regression diffing for `repro --compare` and
//!   the CI bench gate.
//! * [`perfbench`] — the wall-clock/throughput benchmark harness behind
//!   `repro perfbench`, emitting schema'd `BENCH_<gitrev>.json` documents.
//! * [`trajectory`] — loads committed `BENCH_*.json` documents and renders
//!   the perf trajectory table plus soft regression flags.
//! * [`report`] — assembles `results/report.html` from whatever artifacts
//!   are present (`repro report`).
//! * [`provenance`] — git revision, cargo profile, and host fingerprint
//!   stamped into manifests and bench documents.

pub mod analytic;
pub mod attack_matrix;
pub mod attacks_exp;
pub mod attribution;
pub mod compare;
pub mod experiments;
pub mod extensions;
pub mod lab;
pub mod perfbench;
pub mod provenance;
pub mod report;
pub mod scale;
pub mod trajectory;
