//! Adversarial experiment regenerators: the Appendix-B reset-policy attack
//! (Figure 14), the worst-case security sweep across trackers, and the
//! simulated denial-of-service kernel (Figure 12 / Table XI cross-check).

use std::fmt::Write as _;

use mirza_attacks::rig::{run_attack, run_hammer, HammerHarness};
use mirza_attacks::schedule::Burst;
use mirza_attacks::strategy::PatternStrategy;
use mirza_attacks::victim::AnyRow;
use mirza_core::config::MirzaConfig;
use mirza_core::mirza::Mirza;
use mirza_core::rct::ResetPolicy;
use mirza_dram::address::BankId;
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::Mitigator;
use mirza_dram::timing::TimingParams;
use mirza_sim::runner::{run_with_attacker, run_workload};
use mirza_trackers::mithril::Mithril;
use mirza_trackers::prac::PracMoat;
use mirza_trackers::trr::Trr;
use mirza_workloads::attacks::RowPattern;

use crate::lab::Lab;

/// Appendix-B scenario against *eager* reset: FTH-1 ACTs on the region's
/// last row just before the region's first REF, plus FTH-1 during its
/// walk. Returns the max unmitigated count.
pub fn reset_policy_attack(policy: ResetPolicy, fth: u32) -> u32 {
    let geom = Geometry::ddr5_32gb();
    let timing = TimingParams::ddr5_6000();
    let cfg = MirzaConfig {
        fth,
        mint_w: 4,
        ..MirzaConfig::trhd_1000()
    };
    let mut m = Mirza::with_reset_policy(cfg, &geom, 23, policy);
    let mapping = *m.mapping().expect("MIRZA exposes its mapping");
    // Region 5 covers physical rows 5120..6144 (REF steps 320..384);
    // target its last physical row.
    let target = mapping.row_of(6143);
    let mut h = HammerHarness::new(&mut m, &geom, &timing, 0);
    let mut p = RowPattern::single_sided(target);
    for _ in 0..315 {
        h.idle_interval();
    }
    for _ in 0..4 {
        h.burst(&mut p, (fth - 1) / 4);
        h.idle_interval();
    }
    h.burst(&mut p, (fth - 1) - 4 * ((fth - 1) / 4));
    h.idle_interval(); // step 319
    h.idle_interval(); // step 320: region 5's first REF
    for _ in 0..8 {
        h.burst(&mut p, (fth - 1) / 8);
        h.idle_interval();
    }
    h.finish().max_unmitigated_acts
}

/// Appendix-B scenario against *lazy* reset: FTH-1 ACTs on the region's
/// first row while the region walk runs, plus FTH-1 after the last REF
/// clears the counter. Returns the max unmitigated count.
pub fn reset_policy_attack_early_row(policy: ResetPolicy, fth: u32) -> u32 {
    let geom = Geometry::ddr5_32gb();
    let timing = TimingParams::ddr5_6000();
    let cfg = MirzaConfig {
        fth,
        mint_w: 4,
        ..MirzaConfig::trhd_1000()
    };
    let mut m = Mirza::with_reset_policy(cfg, &geom, 29, policy);
    let mapping = *m.mapping().expect("MIRZA exposes its mapping");
    // Region 5's first physical row; it is refreshed by REF step 320, so
    // the attack window opens clean.
    let target = mapping.row_of(5120);
    let mut h = HammerHarness::new(&mut m, &geom, &timing, 0);
    let mut p = RowPattern::single_sided(target);
    for _ in 0..321 {
        h.idle_interval(); // through step 320 (region 5 walk begins)
    }
    // Phase 1: FTH-1 ACTs during the walk (steps 321..384).
    for _ in 0..8 {
        h.burst(&mut p, (fth - 1) / 8);
        h.idle_interval();
    }
    h.burst(&mut p, (fth - 1) - 8 * ((fth - 1) / 8));
    // Finish the walk: the region's last REF is step 383.
    for _ in 329..384 {
        h.idle_interval();
    }
    // Phase 2: FTH-1 ACTs after the (lazy) reset.
    for _ in 0..4 {
        h.burst(&mut p, (fth - 1) / 4);
        h.idle_interval();
    }
    h.finish().max_unmitigated_acts
}

/// Figure 14 / Appendix B: unmitigated ACTs under each RCT reset policy.
/// Each policy faces both straddle variants; the worst is reported.
pub fn fig14() -> String {
    let fth = 300;
    let mut out = format!(
        "Figure 14 / Appendix B: RCT reset policies under the straddle attacks (FTH={fth})\n\
         policy   max unmitigated ACTs   verdict\n"
    );
    for (policy, name) in [
        (ResetPolicy::Safe, "safe"),
        (ResetPolicy::Eager, "eager"),
        (ResetPolicy::Lazy, "lazy"),
    ] {
        let max = reset_policy_attack(policy, fth).max(reset_policy_attack_early_row(policy, fth));
        let verdict = if f64::from(max) >= 1.7 * f64::from(fth) {
            "UNSAFE (near 2xFTH)"
        } else {
            "bounded"
        };
        let _ = writeln!(out, "{name:<8} {max:<22} {verdict}");
    }
    out
}

/// Security sweep: worst-case unmitigated ACTs per tracker under its
/// strongest implemented pattern, against the Section VI bounds.
pub fn security_sweep(windows: u64) -> String {
    let geom = Geometry::ddr5_32gb();
    let timing = TimingParams::ddr5_6000();
    let refs = windows * u64::from(geom.refs_per_full_walk());
    let mut out = String::from(
        "Security sweep: max unmitigated ACTs (attack patterns at full rate)\n\
         tracker        pattern          max ACTs   bound     holds?\n",
    );
    let mut report = |name: &str, pattern: &str, max: u32, bound: u32| {
        let holds = if max < bound { "yes" } else { "NO" };
        let _ = writeln!(out, "{name:<14} {pattern:<16} {max:<10} {bound:<9} {holds}");
    };

    // MIRZA at each Table VII threshold, double-sided — expressed through
    // the composed strategy/schedule API (a Burst schedule over a pattern
    // strategy replays the legacy flat-out loop bit-for-bit; the rig has a
    // test pinning the equivalence).
    for cfg in [
        MirzaConfig::trhd_500(),
        MirzaConfig::trhd_1000(),
        MirzaConfig::trhd_2000(),
    ] {
        let mut m = Mirza::new(cfg, &geom, 7);
        let mapping = *m.mapping().expect("mapping");
        let mut strategy = PatternStrategy::double_sided(&mapping, 5_000);
        let o = run_attack(
            &mut m,
            &geom,
            &timing,
            0,
            &mut strategy,
            &mut Burst,
            &AnyRow,
            cfg.safe_trhd(),
            refs,
        );
        report(
            &format!("mirza-{}", cfg.target_trhd),
            "double-sided",
            o.outcome.max_unmitigated_acts,
            cfg.safe_trhd(),
        );
    }
    // MIRZA same-region CGF-evasion pattern.
    {
        let cfg = MirzaConfig::trhd_1000();
        let mut m = Mirza::new(cfg, &geom, 13);
        let mapping = *m.mapping().expect("mapping");
        let regions = *m.rct().expect("rct").regions();
        let mut p = RowPattern::same_region(&mapping, &regions, 3, 8);
        let o = run_hammer(&mut m, &geom, &timing, 0, &mut p, refs);
        report(
            "mirza-1000",
            "same-region",
            o.max_unmitigated_acts,
            cfg.safe_trhd(),
        );
    }
    // PRAC/MOAT.
    {
        let mut p = PracMoat::for_trhd(1000, &geom);
        let mut pat = RowPattern::single_sided(4_242);
        let o = run_hammer(&mut p, &geom, &timing, 0, &mut pat, refs);
        report("prac-moat", "single-sided", o.max_unmitigated_acts, 1000);
    }
    // Mithril holds; TRR breaks under the decoy flood.
    let decoy_pattern = || {
        let mut rows = Vec::new();
        for d in 0..56u32 {
            rows.push(40_000 + d * 8);
            rows.push(40_000 + d * 8);
        }
        rows.push(20_001);
        rows.push(20_003);
        RowPattern::circular(rows)
    };
    {
        let mut m = Mithril::new(2048, 1, &geom);
        let mut pat = decoy_pattern();
        let o = run_hammer(&mut m, &geom, &timing, 0, &mut pat, refs.max(16384));
        report("mithril-2K", "decoy flood", o.max_unmitigated_acts, 4800);
    }
    {
        let mut t = Trr::ddr4_like(&geom);
        let mut pat = decoy_pattern();
        let o = run_hammer(&mut t, &geom, &timing, 0, &mut pat, refs.max(16384));
        report("trr", "decoy flood", o.max_unmitigated_acts, 4800);
    }
    out
}

/// Simulated DoS cross-check of Table XI: one attacker core replays the
/// Figure-12 same-region kernel against MIRZA; benign slowdown is compared
/// with the analytic model.
pub fn dos_sim(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Simulated performance attack (Figure 12 kernel, benign = lbm x7)\n\
         MINT-W   measured slowdown   analytic bound\n",
    );
    let timing = TimingParams::ddr5_6000();
    for w in [8u32, 12, 16] {
        let base_cfg = MirzaConfig::sensitivity_1000(w);
        let mitigation = mirza_sim::config::MitigationConfig::Mirza {
            cfg: lab.scale().mirza_config(base_cfg),
            policy: ResetPolicy::Safe,
        };
        let cfg = lab.scale().sim_config(mitigation);
        let geom = cfg.geometry;
        let mapping = mirza_dram::address::RowMapping::new(
            base_cfg.mapping,
            geom.rows_per_bank,
            geom.subarrays_per_bank,
        );
        let regions =
            mirza_dram::address::RegionMap::new(geom.rows_per_bank, base_cfg.regions_per_bank);
        let pattern = RowPattern::same_region(&mapping, &regions, 3, 16);
        let attacked = run_with_attacker(&cfg, "lbm", BankId::new(0, 0, 0), &pattern);
        let mut solo_cfg = cfg.clone();
        solo_cfg.cores -= 1;
        let solo = run_workload(&solo_cfg, "lbm");
        let slowdown = 1.0 / (attacked.weighted_speedup(&solo) / solo.core_ipc.len() as f64);
        let bound = mirza_security::dos::mirza_attack_slowdown(&timing, w);
        let _ = writeln!(out, "{w:<8} {slowdown:>8.2}x           {bound:.2}x");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn fig14_flags_eager_and_lazy_as_unsafe() {
        let t = fig14();
        for policy in ["eager", "lazy"] {
            let line = t.lines().find(|l| l.starts_with(policy)).unwrap();
            assert!(line.contains("UNSAFE"), "{t}");
        }
        let safe = t.lines().find(|l| l.starts_with("safe")).unwrap();
        assert!(safe.contains("bounded"), "{t}");
    }

    #[test]
    fn dos_sim_renders() {
        let mut lab = Lab::new(Scale::smoke());
        let t = dos_sim(&mut lab);
        assert!(t.contains("MINT-W"));
        assert_eq!(t.lines().count(), 5);
    }
}
