//! Performance benchmark harness: times end-to-end `table4`-style
//! baseline runs per workload (warmup + N repeats) and writes one
//! schema'd `BENCH_<gitrev>.json` document per invocation.
//!
//! Timed repeats run with `Telemetry::disabled()` so they measure the
//! production hot path. One extra *profiled* pass over the suite runs
//! with the host-phase profiler and the opportunity counters armed,
//! supplying the phase breakdown and skip-ahead sizing that the timed
//! numbers alone cannot give. The documents accumulate in `results/` and
//! feed [`crate::trajectory`] and `scripts/perf_gate.py`.

use std::time::Instant;

use mirza_sim::config::MitigationConfig;
use mirza_sim::runner::run_workload_with;
use mirza_telemetry::{names, Json, Telemetry};

use crate::provenance;
use crate::scale::Scale;

/// Document schema identifier; bump on incompatible layout changes.
pub const SCHEMA: &str = "mirza-perfbench-v1";

/// Order statistics over one sample vector. The kernel under golden-value
/// test: median (midpoint-averaged), sample stddev, nearest-rank p99.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Raw samples in recording order.
    pub samples: Vec<f64>,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median; mean of the two middle samples for even counts.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub stddev: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl Stats {
    /// Computes all statistics; panics on an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "stats over zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let stddev = if n > 1 {
            let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        Stats {
            samples: samples.to_vec(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            mean,
            stddev,
            p99: sorted[rank - 1],
        }
    }

    /// Serializes as `{samples, min, max, median, mean, stddev, p99}`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push(
            "samples",
            Json::Arr(self.samples.iter().map(|&v| Json::F64(v)).collect()),
        )
        .push("min", self.min)
        .push("max", self.max)
        .push("median", self.median)
        .push("mean", self.mean)
        .push("stddev", self.stddev)
        .push("p99", self.p99);
        o
    }

    /// Parses a value produced by [`Stats::to_json`].
    pub fn from_json(v: &Json) -> Option<Stats> {
        let samples: Vec<f64> = v
            .get("samples")?
            .as_arr()?
            .iter()
            .map(|s| s.as_f64())
            .collect::<Option<_>>()?;
        Some(Stats {
            samples,
            min: v.get("min")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
            median: v.get("median")?.as_f64()?,
            mean: v.get("mean")?.as_f64()?,
            stddev: v.get("stddev")?.as_f64()?,
            p99: v.get("p99")?.as_f64()?,
        })
    }
}

/// Result of one benchmark target (one workload's baseline run).
#[derive(Debug, Clone)]
pub struct Target {
    /// Target name, `table4/<workload>`.
    pub name: String,
    /// Wall-clock seconds per repeat.
    pub wall_secs: Stats,
    /// Simulated DRAM nanoseconds advanced per wall-clock second, per
    /// repeat — the "simulated cycles per second" throughput axis.
    pub sim_ns_per_sec: Stats,
    /// Simulated time covered by one run, picoseconds.
    pub sim_time_ps: u64,
    /// Instructions retired by one run.
    pub instructions: u64,
    /// DRAM commands issued by one run (ACT+PRE+RD+WR+REF+RFM).
    pub commands: u64,
    /// Simulation quanta stepped by one run.
    pub quanta: u64,
}

impl Target {
    fn throughput_json(&self) -> Json {
        // Derived rates use the median repeat so one noisy sample cannot
        // skew the trajectory.
        let med = self.wall_secs.median.max(1e-12);
        let mut t = Json::obj();
        t.push("instructions_per_sec", self.instructions as f64 / med)
            .push("commands_per_sec", self.commands as f64 / med)
            .push("quanta_per_sec", self.quanta as f64 / med);
        t
    }

    /// Serializes one target entry.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("name", self.name.as_str())
            .push("wall_secs", self.wall_secs.to_json())
            .push("sim_ns_per_sec", self.sim_ns_per_sec.to_json())
            .push("sim_time_ps", self.sim_time_ps)
            .push("instructions", self.instructions)
            .push("commands", self.commands)
            .push("quanta", self.quanta)
            .push("throughput", self.throughput_json());
        o
    }

    /// Parses a value produced by [`Target::to_json`].
    pub fn from_json(v: &Json) -> Option<Target> {
        Some(Target {
            name: v.get("name")?.as_str()?.to_string(),
            wall_secs: Stats::from_json(v.get("wall_secs")?)?,
            sim_ns_per_sec: Stats::from_json(v.get("sim_ns_per_sec")?)?,
            sim_time_ps: v.get("sim_time_ps")?.as_u64()?,
            instructions: v.get("instructions")?.as_u64()?,
            commands: v.get("commands")?.as_u64()?,
            quanta: v.get("quanta")?.as_u64()?,
        })
    }
}

/// One complete `BENCH_<gitrev>.json` document.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// Provenance object (`{git_rev, cargo_profile, host}`).
    pub provenance: Json,
    /// Seconds since the Unix epoch when the run started (trajectory
    /// ordering key; the only nondeterministic field besides timings).
    pub unix_time: u64,
    /// The scale preset serialized (`Scale::to_json`).
    pub scale: Json,
    /// Warmup repeats discarded per target.
    pub warmup: u64,
    /// Timed repeats per target.
    pub repeats: u64,
    /// Per-workload timing results.
    pub targets: Vec<Target>,
    /// Wall-clock seconds for the whole invocation (warmup + timed +
    /// profiled passes).
    pub total_wall_secs: f64,
    /// Suite-wide host-phase breakdown (`PhaseProfiler::to_json` over the
    /// profiled pass), `Null` if the pass was skipped.
    pub phase_breakdown: Json,
    /// Suite-wide opportunity summary from the profiled pass, `Null` if
    /// the pass was skipped.
    pub opportunity: Json,
    /// Parallel-suite measurement (`{jobs, wall_secs, speedup_vs_serial}`)
    /// when the harness ran with `jobs > 1`, `Null` otherwise. Informative
    /// only: it is deliberately not a perf-gate target, so serial medians
    /// stay comparable across hosts and job counts.
    pub parallel: Json,
}

impl BenchDoc {
    /// The git revision this document was produced from.
    pub fn git_rev(&self) -> &str {
        self.provenance
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
    }

    /// Canonical file name, `BENCH_<gitrev>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.git_rev())
    }

    /// Sum of per-target median wall seconds — the headline trajectory
    /// number (per-invocation `total_wall_secs` includes warmup and the
    /// profiled pass, so it is not comparable across repeat counts).
    pub fn suite_median_secs(&self) -> f64 {
        self.targets.iter().map(|t| t.wall_secs.median).sum()
    }

    /// Serializes the full document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", SCHEMA)
            .push("provenance", self.provenance.clone())
            .push("unix_time", self.unix_time)
            .push("scale", self.scale.clone())
            .push("warmup", self.warmup)
            .push("repeats", self.repeats)
            .push(
                "targets",
                Json::Arr(self.targets.iter().map(Target::to_json).collect()),
            )
            .push("total_wall_secs", self.total_wall_secs)
            .push("phase_breakdown", self.phase_breakdown.clone())
            .push("opportunity", self.opportunity.clone())
            .push("parallel", self.parallel.clone());
        doc
    }

    /// Parses a document, rejecting unknown schemas.
    pub fn from_json(v: &Json) -> Option<BenchDoc> {
        if v.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        Some(BenchDoc {
            provenance: v.get("provenance")?.clone(),
            unix_time: v.get("unix_time")?.as_u64()?,
            scale: v.get("scale")?.clone(),
            warmup: v.get("warmup")?.as_u64()?,
            repeats: v.get("repeats")?.as_u64()?,
            targets: v
                .get("targets")?
                .as_arr()?
                .iter()
                .map(Target::from_json)
                .collect::<Option<_>>()?,
            total_wall_secs: v.get("total_wall_secs")?.as_f64()?,
            phase_breakdown: v.get("phase_breakdown").cloned().unwrap_or(Json::Null),
            opportunity: v.get("opportunity").cloned().unwrap_or(Json::Null),
            parallel: v.get("parallel").cloned().unwrap_or(Json::Null),
        })
    }

    /// Writes the document to `path` as pretty-printed JSON.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PerfBench {
    /// Scale preset (workload set, shrink, instruction budget).
    pub scale: Scale,
    /// Discarded repeats per target before timing starts.
    pub warmup: u64,
    /// Timed repeats per target.
    pub repeats: u64,
    /// Skip the extra profiled pass (phase breakdown + opportunity).
    pub skip_profile: bool,
    /// Work-pool width for the extra parallel-suite measurement; `1`
    /// (the default) skips that pass. Timed per-target repeats are always
    /// serial — parallel numbers land in the separate `parallel` field.
    pub jobs: usize,
    /// Print one progress line per target.
    pub verbose: bool,
}

impl PerfBench {
    /// Default harness at the given scale: 1 warmup, 3 timed repeats,
    /// profiled pass on.
    pub fn new(scale: Scale) -> Self {
        PerfBench {
            scale,
            warmup: 1,
            repeats: 3,
            skip_profile: false,
            jobs: 1,
            verbose: false,
        }
    }

    /// Runs the whole suite and assembles the document.
    pub fn run(&self) -> BenchDoc {
        let started = Instant::now();
        let cfg = self.scale.sim_config(MitigationConfig::None);
        let quantum_ps = cfg.quantum.as_ps().max(1);
        let mut targets = Vec::new();
        for w in &self.scale.workloads {
            if self.verbose {
                eprintln!("  perfbench table4/{w} ...");
            }
            for _ in 0..self.warmup {
                let _ = run_workload_with(&cfg, w, Telemetry::disabled());
            }
            let mut wall = Vec::new();
            let mut rates = Vec::new();
            let mut last = None;
            for _ in 0..self.repeats.max(1) {
                let t0 = Instant::now();
                let report = run_workload_with(&cfg, w, Telemetry::disabled());
                let secs = t0.elapsed().as_secs_f64();
                wall.push(secs);
                rates.push(report.elapsed.as_ps() as f64 / 1000.0 / secs.max(1e-12));
                last = Some(report);
            }
            let report = last.expect("at least one repeat");
            let d = &report.device;
            let commands =
                d.acts + d.pres + d.reads + d.writes + d.refs + d.rfms_proactive + d.rfms_alert;
            targets.push(Target {
                name: format!("table4/{w}"),
                wall_secs: Stats::from_samples(&wall),
                sim_ns_per_sec: Stats::from_samples(&rates),
                sim_time_ps: report.elapsed.as_ps(),
                instructions: report.instructions,
                commands,
                quanta: report.elapsed.as_ps().div_ceil(quantum_ps),
            });
        }
        // One profiled pass over the suite with a single shared recorder:
        // the phase profiler and opportunity counters accumulate across
        // workloads into suite-level totals.
        let (phase_breakdown, opportunity) = if self.skip_profile {
            (Json::Null, Json::Null)
        } else {
            if self.verbose {
                eprintln!("  perfbench profiled pass ...");
            }
            let tel = Telemetry::enabled().with_profiler().with_opportunity();
            for w in &self.scale.workloads {
                let _ = run_workload_with(&cfg, w, tel.clone());
            }
            (
                tel.profile_json().unwrap_or(Json::Null),
                opportunity_json(&tel),
            )
        };
        // Optional parallel pass: the whole suite once on the work pool,
        // reported as wall time + speedup over the sum of serial medians.
        let parallel = if self.jobs > 1 {
            if self.verbose {
                eprintln!("  perfbench parallel pass ({} jobs) ...", self.jobs);
            }
            let t0 = Instant::now();
            let _ = mirza_runner::parallel_map(&self.scale.workloads, self.jobs, |_, w| {
                run_workload_with(&cfg, w, Telemetry::disabled())
            });
            let wall = t0.elapsed().as_secs_f64();
            let serial: f64 = targets.iter().map(|t| t.wall_secs.median).sum();
            let mut p = Json::obj();
            p.push("jobs", self.jobs as u64)
                .push("wall_secs", wall)
                .push("speedup_vs_serial", serial / wall.max(1e-12));
            p
        } else {
            Json::Null
        };
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        BenchDoc {
            provenance: provenance::to_json(),
            unix_time,
            scale: self.scale.to_json(),
            warmup: self.warmup,
            repeats: self.repeats.max(1),
            targets,
            total_wall_secs: started.elapsed().as_secs_f64(),
            phase_breakdown,
            opportunity,
            parallel,
        }
    }
}

/// Suite-level opportunity rollup (same shape as the Lab's per-run
/// manifest section).
fn opportunity_json(tel: &Telemetry) -> Json {
    let passes = tel.counter(names::MC_OPP_SCHED_PASSES);
    let idle = tel.counter(names::MC_OPP_IDLE_PASSES);
    let mut o = Json::obj();
    o.push("sched_passes", passes)
        .push("idle_passes", idle)
        .push(
            "idle_pass_frac",
            if passes > 0 {
                idle as f64 / passes as f64
            } else {
                0.0
            },
        );
    for (key, name) in [
        ("skip_gap_ns", names::MC_OPP_SKIP_GAP_NS),
        ("skip_taken_ns", names::SIM_OPP_SKIP_TAKEN_NS),
    ] {
        let summary = tel
            .with_recorder(|r| {
                r.registry
                    .histogram(name)
                    .map(mirza_telemetry::Histogram::summary)
            })
            .flatten();
        match summary {
            Some(s) => {
                let mut g = Json::obj();
                g.push("count", s.count)
                    .push("p50", s.p50)
                    .push("p90", s.p90)
                    .push("p99", s.p99)
                    .push("max", s.max);
                o.push(key, g);
            }
            None => {
                o.push(key, Json::Null);
            }
        }
    }
    o
}

/// Formats the per-target summary table printed by `repro perfbench`.
pub fn summary_table(doc: &BenchDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "perfbench @ {} ({} targets, {} warmup + {} repeats)\n",
        doc.git_rev(),
        doc.targets.len(),
        doc.warmup,
        doc.repeats
    ));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>12}\n",
        "target", "min_s", "median_s", "mean_s", "stddev_s", "sim_ns/s"
    ));
    for t in &doc.targets {
        out.push_str(&format!(
            "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>9.4} {:>12.3e}\n",
            t.name,
            t.wall_secs.min,
            t.wall_secs.median,
            t.wall_secs.mean,
            t.wall_secs.stddev,
            t.sim_ns_per_sec.median
        ));
    }
    out.push_str(&format!(
        "suite median {:.3}s, invocation total {:.1}s\n",
        doc.suite_median_secs(),
        doc.total_wall_secs
    ));
    if let Some(frac) = doc.opportunity.get("idle_pass_frac").and_then(Json::as_f64) {
        out.push_str(&format!(
            "opportunity: {:.1}% idle scheduler passes, skip-gap p50 {} ns\n",
            frac * 100.0,
            doc.opportunity
                .get("skip_gap_ns")
                .and_then(|g| g.get("p50"))
                .and_then(Json::as_f64)
                .map_or_else(|| "?".to_string(), |v| format!("{v:.0}"))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_golden_values_odd() {
        let s = Stats::from_samples(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        // Sample stddev of 1..5 = sqrt(2.5).
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-12);
        // Nearest-rank p99 of 5 samples = the maximum.
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn stats_golden_values_even_and_singleton() {
        let s = Stats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let one = Stats::from_samples(&[7.5]);
        assert_eq!(one.median, 7.5);
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.p99, 7.5);
    }

    #[test]
    fn stats_p99_uses_nearest_rank_on_large_sets() {
        let samples: Vec<f64> = (1..=200).map(f64::from).collect();
        let s = Stats::from_samples(&samples);
        // ceil(0.99 * 200) = 198th order statistic.
        assert_eq!(s.p99, 198.0);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let s = Stats::from_samples(&[0.25, 0.5, 0.125]);
        let back = Stats::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bench_doc_round_trips_and_rejects_foreign_schemas() {
        let bench = PerfBench {
            scale: Scale::bench(),
            warmup: 0,
            repeats: 2,
            skip_profile: false,
            jobs: 2,
            verbose: false,
        };
        let doc = bench.run();
        assert_eq!(doc.targets.len(), 1, "bench scale has one workload");
        let t = &doc.targets[0];
        assert_eq!(t.name, "table4/lbm");
        assert_eq!(t.wall_secs.samples.len(), 2);
        assert!(t.sim_time_ps > 0 && t.commands > 0 && t.quanta > 0);
        assert!(
            doc.opportunity
                .get("sched_passes")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0,
            "profiled pass arms the opportunity counters"
        );
        assert!(doc
            .phase_breakdown
            .get("phases")
            .and_then(|p| p.get("device"))
            .is_some());
        assert!(doc.file_name().starts_with("BENCH_"));
        let speedup = doc
            .parallel
            .get("speedup_vs_serial")
            .and_then(Json::as_f64)
            .expect("jobs > 1 produces the parallel field");
        assert!(speedup > 0.0);

        let text = doc.to_json().to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = BenchDoc::from_json(&parsed).expect("round trip");
        assert_eq!(back.targets.len(), doc.targets.len());
        assert_eq!(
            back.parallel.get("jobs").and_then(Json::as_u64),
            Some(2),
            "parallel field survives the round trip"
        );
        assert_eq!(back.targets[0].wall_secs, doc.targets[0].wall_secs);
        assert_eq!(back.unix_time, doc.unix_time);
        assert_eq!(back.git_rev(), doc.git_rev());
        assert!(
            (back.suite_median_secs() - doc.suite_median_secs()).abs() < 1e-12,
            "suite rollup survives the round trip"
        );

        let mut foreign = parsed.clone();
        if let Json::Obj(pairs) = &mut foreign {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::Str("someone-elses-v9".to_string());
                }
            }
        }
        assert!(BenchDoc::from_json(&foreign).is_none());
    }
}
