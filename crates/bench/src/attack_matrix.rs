//! Attack-matrix sweep: strategy x schedule x mitigator, Monte-Carlo over
//! seeds (`repro attack-matrix`).
//!
//! Each cell of the matrix composes one [`AddressStrategy`], one
//! [`Schedule`] and one mitigator, runs `trials` seeded trials of the
//! [`mirza_attacks::rig`], and reports the success probability — the
//! fraction of trials in which the victim model's worst row met the
//! mitigation's NBO bound — plus the worst per-row ACT burden observed.
//! The swept schedule axis includes two pacings of the inter-ACT gap, so
//! the matrix doubles as a one-parameter sweep (burst, paced-1, paced-4
//! are gap = 0, 1, 4).
//!
//! Determinism: a cell's trials derive their seeds from the cell seed
//! alone, every strategy draws randomness only from those seeds, and the
//! rig is RNG-free — so a re-run with the same master seed produces a
//! bit-identical CSV (there is an integration test pinning this).
//!
//! Supervision: [`run_matrix_supervised`] executes the cells on the
//! `mirza-runner` work-pool (any `--jobs`), checkpoints each completed
//! cell into a fsync'd journal, and merges results back into canonical
//! enumeration order — so the CSV, JSON, and `attack_cell` event stream
//! are bit-identical to a serial run, and a `kill -9` mid-campaign loses
//! at most the in-flight cells (`--resume` replays the rest).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use mirza_attacks::rig::{monte_carlo, run_attack};
use mirza_attacks::schedule::{AlertAdaptive, Burst, Paced, Schedule};
use mirza_attacks::strategy::{
    AddressStrategy, DecoyFlood, Feinting, PatternStrategy, RefreshSyncStrategy,
};
use mirza_attacks::victim::{AnyRow, TargetRows};
use mirza_core::config::MirzaConfig;
use mirza_core::mirza::Mirza;
use mirza_dram::address::{RegionMap, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::Mitigator;
use mirza_dram::timing::TimingParams;
use mirza_runner::{cell_hash, Cell, CellFailure, Journal, Pool};
use mirza_sim::SimError;
use mirza_telemetry::{names, Json, Telemetry};
use mirza_trackers::mithril::Mithril;
use mirza_trackers::prac::PracMoat;
use mirza_trackers::trr::Trr;

use crate::scale::Scale;

/// Fixed CSV header; `scripts/attack_gate.py` fails CI on any drift.
pub const CSV_HEADER: &str =
    "strategy,schedule,mitigator,seed,trials,successes,success_prob,max_row_acts,bound,total_acts,alerts";

/// Strategy roster entries: constructors deferred so each trial gets a
/// fresh instance built from its own derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Classic double-sided pair around a mid-bank victim.
    DoubleSided,
    /// TRRespass-style many-sided pattern.
    ManySided,
    /// Blacksmith-style non-uniform pattern (uses the trial seed).
    Blacksmith,
    /// CGF-evading same-region kernel.
    SameRegion,
    /// Feinting attack on the mitigation queue.
    Feint,
    /// Decoy flood that breaks sampling trackers.
    DecoyFlood,
    /// Refresh-pointer chasing attack.
    RefreshSync,
}

impl StrategyKind {
    /// Every implemented strategy.
    pub fn all() -> Vec<StrategyKind> {
        vec![
            StrategyKind::DoubleSided,
            StrategyKind::ManySided,
            StrategyKind::Blacksmith,
            StrategyKind::SameRegion,
            StrategyKind::Feint,
            StrategyKind::DecoyFlood,
            StrategyKind::RefreshSync,
        ]
    }

    /// Builds the strategy for one trial. Parameters derive from the
    /// geometry so every scale hosts the pattern.
    pub fn build(
        &self,
        mapping: &RowMapping,
        regions: &RegionMap,
        trial_seed: u64,
    ) -> Box<dyn AddressStrategy> {
        let rps = mapping.rows_per_subarray();
        // A mid-bank, mid-subarray victim: away from subarray edges at
        // every supported shrink.
        let victim = mapping.rows_per_bank() / 2 + rps / 2;
        match self {
            StrategyKind::DoubleSided => Box::new(PatternStrategy::double_sided(mapping, victim)),
            StrategyKind::ManySided => {
                let pairs = (rps / 8).max(1);
                Box::new(PatternStrategy::many_sided(mapping, 3, pairs))
            }
            StrategyKind::Blacksmith => {
                let k = (rps / 4).max(2);
                Box::new(PatternStrategy::blacksmith(mapping, 5, k, trial_seed))
            }
            StrategyKind::SameRegion => {
                let k = (regions.rows_per_region() / 4).max(2);
                Box::new(PatternStrategy::same_region(mapping, regions, 3, k))
            }
            StrategyKind::Feint => {
                let feints = (regions.rows_per_region() - 4).clamp(1, 4);
                Box::new(Feinting::new(mapping, regions, 3, feints, 6))
            }
            StrategyKind::DecoyFlood => {
                let decoys = (mapping.rows_per_bank() / 128).clamp(8, 56);
                Box::new(DecoyFlood::new(mapping, victim, decoys, 2))
            }
            StrategyKind::RefreshSync => Box::new(RefreshSyncStrategy::new(*mapping)),
        }
    }
}

/// Schedule roster entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Hammer every slot.
    Burst,
    /// Hammer once every `gap + 1` slots (the swept parameter).
    Paced(u32),
    /// Back off while ALERT is asserted plus a cooldown.
    Adaptive(u64),
}

impl ScheduleKind {
    /// The default swept roster: flat-out, two pacings, ALERT-adaptive.
    pub fn roster() -> Vec<ScheduleKind> {
        vec![
            ScheduleKind::Burst,
            ScheduleKind::Paced(1),
            ScheduleKind::Paced(4),
            ScheduleKind::Adaptive(64),
        ]
    }

    /// Builds the schedule for one trial.
    pub fn build(&self) -> Box<dyn Schedule> {
        match self {
            ScheduleKind::Burst => Box::new(Burst),
            ScheduleKind::Paced(gap) => Box::new(Paced::new(*gap)),
            ScheduleKind::Adaptive(cooldown) => Box::new(AlertAdaptive::new(*cooldown)),
        }
    }
}

/// Mitigator roster entries, with the NBO bound each is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigatorKind {
    /// MIRZA at the Table VII TRHD=1000 design point (FTH scaled).
    Mirza1000,
    /// PRAC + MOAT provisioned for the scaled TRHD.
    PracMoat,
    /// Mithril with a 2K-entry (scaled) table.
    Mithril,
    /// DDR4-era sampling TRR (known-broken baseline).
    Trr,
}

impl MitigatorKind {
    /// Every implemented mitigator.
    pub fn all() -> Vec<MitigatorKind> {
        vec![
            MitigatorKind::Mirza1000,
            MitigatorKind::PracMoat,
            MitigatorKind::Mithril,
            MitigatorKind::Trr,
        ]
    }

    /// Stable CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            MitigatorKind::Mirza1000 => "mirza-1000",
            MitigatorKind::PracMoat => "prac-moat",
            MitigatorKind::Mithril => "mithril-2k",
            MitigatorKind::Trr => "trr",
        }
    }

    /// Builds the mitigator for one trial and returns it with the bound
    /// its guarantee promises at this scale. Tracker design thresholds
    /// divide by `shrink` like every other per-window quantity.
    pub fn build(
        &self,
        scale: &Scale,
        geom: &Geometry,
        trial_seed: u64,
    ) -> (Box<dyn Mitigator>, u32) {
        let scaled_trh = ((4_800 / scale.shrink) as u32).max(16);
        match self {
            MitigatorKind::Mirza1000 => {
                let cfg = scale.mirza_config(MirzaConfig::trhd_1000());
                let bound = cfg.safe_trhd();
                (Box::new(Mirza::new(cfg, geom, trial_seed)), bound)
            }
            MitigatorKind::PracMoat => {
                let trhd = ((1_000 / scale.shrink) as u32).max(16);
                (Box::new(PracMoat::for_trhd(trhd, geom)), trhd)
            }
            MitigatorKind::Mithril => {
                let entries = (2_048 / scale.shrink as usize).max(64);
                (Box::new(Mithril::new(entries, 1, geom)), scaled_trh)
            }
            MitigatorKind::Trr => (Box::new(Trr::ddr4_like(geom)), scaled_trh),
        }
    }
}

/// One matrix sweep specification.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Evaluation scale (geometry shrink and master seed).
    pub scale: Scale,
    /// Strategy axis.
    pub strategies: Vec<StrategyKind>,
    /// Schedule axis.
    pub schedules: Vec<ScheduleKind>,
    /// Mitigator axis.
    pub mitigators: Vec<MitigatorKind>,
    /// Monte-Carlo cell seeds (derived from the master seed).
    pub seeds: Vec<u64>,
    /// Trials per cell.
    pub trials: u32,
    /// Full refresh-pointer walks per trial.
    pub walks: u64,
}

impl MatrixSpec {
    /// The standard roster at `scale`: full strategy/schedule/mitigator
    /// axes, two seeds, three trials per cell, two walks per trial.
    pub fn for_scale(scale: Scale) -> Self {
        let seeds = vec![scale.seed, scale.seed.wrapping_add(1)];
        MatrixSpec {
            scale,
            strategies: StrategyKind::all(),
            schedules: ScheduleKind::roster(),
            mitigators: MitigatorKind::all(),
            seeds,
            trials: 3,
            walks: 2,
        }
    }

    /// Number of matrix cells (rows of the CSV).
    pub fn cells(&self) -> usize {
        self.strategies.len() * self.schedules.len() * self.mitigators.len() * self.seeds.len()
    }
}

/// One evaluated matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Strategy label (from the built strategy, so it carries parameters).
    pub strategy: String,
    /// Schedule label.
    pub schedule: String,
    /// Mitigator label.
    pub mitigator: &'static str,
    /// Cell seed.
    pub seed: u64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose victim reached the bound.
    pub successes: u32,
    /// Worst per-row unmitigated ACT burden across trials.
    pub max_row_acts: u32,
    /// The bound the cell was judged against.
    pub bound: u32,
    /// Attacker ACTs summed over trials.
    pub total_acts: u64,
    /// ALERT back-offs summed over trials.
    pub alerts: u64,
}

impl MatrixCell {
    /// Success probability over the cell's trials.
    pub fn success_prob(&self) -> f64 {
        f64::from(self.successes) / f64::from(self.trials.max(1))
    }

    /// Serializes the cell (manifest `cells` entries and journal records).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("strategy", self.strategy.as_str())
            .push("schedule", self.schedule.as_str())
            .push("mitigator", self.mitigator)
            .push("seed", self.seed)
            .push("trials", self.trials)
            .push("successes", self.successes)
            .push("success_prob", self.success_prob())
            .push("max_row_acts", self.max_row_acts)
            .push("bound", self.bound)
            .push("total_acts", self.total_acts)
            .push("alerts", self.alerts);
        j
    }

    /// Parses a [`MatrixCell::to_json`] document back (journal replay).
    /// `None` on any missing field or an unknown mitigator label — a
    /// record the current roster cannot own is corruption, not data.
    pub fn from_json(doc: &Json) -> Option<MatrixCell> {
        let label = doc.get("mitigator")?.as_str()?;
        let mitigator = MitigatorKind::all()
            .into_iter()
            .map(|m| m.label())
            .find(|l| *l == label)?;
        Some(MatrixCell {
            strategy: doc.get("strategy")?.as_str()?.to_string(),
            schedule: doc.get("schedule")?.as_str()?.to_string(),
            mitigator,
            seed: doc.get("seed")?.as_u64()?,
            trials: u32::try_from(doc.get("trials")?.as_u64()?).ok()?,
            successes: u32::try_from(doc.get("successes")?.as_u64()?).ok()?,
            max_row_acts: u32::try_from(doc.get("max_row_acts")?.as_u64()?).ok()?,
            bound: u32::try_from(doc.get("bound")?.as_u64()?).ok()?,
            total_acts: doc.get("total_acts")?.as_u64()?,
            alerts: doc.get("alerts")?.as_u64()?,
        })
    }
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Every cell, in deterministic roster order.
    pub cells: Vec<MatrixCell>,
    /// The spec that produced it.
    pub spec: MatrixSpec,
}

/// Supervision policy for a matrix campaign: worker count plus optional
/// checkpoint journal. The default (`jobs <= 1`, no journal) reproduces
/// the historical serial sweep exactly.
#[derive(Debug, Clone, Default)]
pub struct MatrixRunConfig {
    /// Pool workers (`0` or `1` = serial on the caller thread).
    pub jobs: usize,
    /// Checkpoint journal path (`results/<run>.journal.jsonl`); every
    /// completed cell is fsync'd here as it lands.
    pub journal: Option<PathBuf>,
    /// Replay completed cells from an existing journal of the same
    /// campaign and schedule only the remainder.
    pub resume: bool,
}

/// A supervised sweep: the (possibly partial) result in canonical order,
/// plus whatever failed after retry and how many cells the journal
/// replayed.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// Completed cells, canonical enumeration order.
    pub result: MatrixResult,
    /// Cells that failed after the pool's bounded retry, enumeration
    /// order. Non-empty means `result` is partial (degraded campaign).
    pub failures: Vec<CellFailure>,
    /// Cells replayed from the journal instead of re-run.
    pub resumed: usize,
}

impl MatrixOutcome {
    /// True when every cell of the spec completed.
    pub fn complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Stable cell identity — the journal key (via [`cell_hash`]) and the
/// failure label. Derived purely from the cell's coordinates.
fn matrix_cell_id(
    strat: StrategyKind,
    sched: ScheduleKind,
    mit: MitigatorKind,
    seed: u64,
) -> String {
    format!("{strat:?}/{sched:?}/{}/{seed}", mit.label())
}

/// Campaign identity string: every input that shapes a cell's result.
/// Hashing it binds a journal to one exact sweep, so `--resume` can never
/// graft records from a different scale, roster, or seed set.
fn campaign_id(spec: &MatrixSpec) -> String {
    format!(
        "attack-matrix/v1/shrink={}/seed={}/trials={}/walks={}/strategies={:?}/schedules={:?}/mitigators={:?}/seeds={:?}",
        spec.scale.shrink,
        spec.scale.seed,
        spec.trials,
        spec.walks,
        spec.strategies,
        spec.schedules,
        spec.mitigators,
        spec.seeds,
    )
}

/// One matrix cell as a pool task: plain data, pure compute.
struct MatrixTask<'a> {
    spec: &'a MatrixSpec,
    geom: &'a Geometry,
    timing: &'a TimingParams,
    regions_per_bank: u32,
    refs: u64,
    strat: StrategyKind,
    sched: ScheduleKind,
    mit: MitigatorKind,
    seed: u64,
}

impl Cell for MatrixTask<'_> {
    type Out = MatrixCell;

    fn id(&self) -> String {
        matrix_cell_id(self.strat, self.sched, self.mit, self.seed)
    }

    fn run(&self) -> Result<MatrixCell, SimError> {
        Ok(run_cell(
            self.spec,
            self.geom,
            self.timing,
            self.regions_per_bank,
            self.strat,
            self.sched,
            self.mit,
            self.seed,
            self.refs,
        ))
    }
}

/// Runs the full matrix serially. Emits one `attack_cell` event per cell
/// through `telemetry` (greppable from the JSONL event stream).
pub fn run_matrix(spec: &MatrixSpec, telemetry: &Telemetry) -> MatrixResult {
    run_matrix_supervised(spec, telemetry, &MatrixRunConfig::default()).result
}

/// Runs the matrix on the supervised work-pool. Completion order is up to
/// the scheduler; the reduction is not: results (pooled or journal-
/// replayed) merge by cell id into canonical enumeration order, and the
/// `attack_cell` events are emitted at reduction time in that same order —
/// so CSV, JSON, and event stream are bit-identical to a serial run. On a
/// fully-successful campaign the journal is deleted; a degraded or killed
/// one leaves it behind for `--resume`.
pub fn run_matrix_supervised(
    spec: &MatrixSpec,
    telemetry: &Telemetry,
    cfg: &MatrixRunConfig,
) -> MatrixOutcome {
    let geom = spec.scale.geometry();
    let timing = TimingParams::ddr5_6000();
    let refs = spec.walks * u64::from(geom.refs_per_full_walk());
    let regions_per_bank = MirzaConfig::trhd_1000().regions_per_bank;
    let mut tasks = Vec::with_capacity(spec.cells());
    for strat in &spec.strategies {
        for sched in &spec.schedules {
            for mit in &spec.mitigators {
                for &seed in &spec.seeds {
                    tasks.push(MatrixTask {
                        spec,
                        geom: &geom,
                        timing: &timing,
                        regions_per_bank,
                        refs,
                        strat: *strat,
                        sched: *sched,
                        mit: *mit,
                        seed,
                    });
                }
            }
        }
    }

    let campaign = cell_hash(&campaign_id(spec));
    let mut completed: Vec<Option<MatrixCell>> = vec![None; tasks.len()];
    let mut resumed = 0usize;
    let journal = match &cfg.journal {
        Some(path) => match Journal::open(path, campaign, cfg.resume) {
            Ok((journal, records)) => {
                if !records.is_empty() {
                    let index_of: HashMap<String, usize> =
                        tasks.iter().enumerate().map(|(i, t)| (t.id(), i)).collect();
                    for record in &records {
                        if let (Some(&i), Some(cell)) = (
                            index_of.get(&record.id),
                            MatrixCell::from_json(&record.result),
                        ) {
                            if completed[i].is_none() {
                                resumed += 1;
                            }
                            completed[i] = Some(cell);
                        }
                    }
                }
                Some(journal)
            }
            Err(e) => {
                eprintln!(
                    "warning: cannot open journal {}: {e} (running without checkpoints)",
                    path.display()
                );
                None
            }
        },
        None => None,
    };

    let pending_indices: Vec<usize> = (0..tasks.len())
        .filter(|&i| completed[i].is_none())
        .collect();
    let pending: Vec<&MatrixTask> = pending_indices.iter().map(|&i| &tasks[i]).collect();
    let checkpoint = |_: usize, id: &str, cell: &MatrixCell| {
        if let Some(j) = &journal {
            if let Err(e) = j.append(id, &cell.to_json()) {
                eprintln!("warning: journal append failed for {id}: {e}");
            }
        }
    };
    let outcome = Pool::with_jobs(cfg.jobs.max(1)).run(&pending, Some(&checkpoint));
    outcome.record(telemetry, resumed as u64);
    let mut failures = Vec::new();
    for f in outcome.failures {
        failures.push(CellFailure {
            index: pending_indices[f.index],
            ..f
        });
    }
    for (slot, result) in pending_indices.iter().zip(outcome.results) {
        completed[*slot] = result;
    }

    // Deterministic reduction: canonical enumeration order, events at
    // reduction time (bit-identical to the historical serial stream).
    let mut cells = Vec::with_capacity(tasks.len());
    for cell in completed.into_iter().flatten() {
        telemetry.event(
            0,
            names::EV_ATTACK_CELL,
            &[
                ("strategy", Json::from(cell.strategy.as_str())),
                ("schedule", Json::from(cell.schedule.as_str())),
                ("mitigator", Json::from(cell.mitigator)),
                ("seed", Json::from(cell.seed)),
                ("trials", Json::from(cell.trials)),
                ("successes", Json::from(cell.successes)),
                ("success", Json::from(cell.successes > 0)),
                ("max_row_acts", Json::from(cell.max_row_acts)),
                ("bound", Json::from(cell.bound)),
            ],
        );
        cells.push(cell);
    }
    if let Some(journal) = journal {
        if failures.is_empty() {
            if let Err(e) = journal.finalize() {
                eprintln!("warning: cannot remove finished journal: {e}");
            }
        }
        // Degraded: the journal stays on disk; `--resume` replays its
        // completed cells and retries only the failures.
    }
    MatrixOutcome {
        result: MatrixResult {
            cells,
            spec: spec.clone(),
        },
        failures,
        resumed,
    }
}

/// What one Monte-Carlo trial reports back to the cell reduction.
struct TrialOutcome {
    strategy_label: String,
    schedule_label: String,
    bound: u32,
    success: bool,
    max_row_acts: u32,
    total_acts: u64,
    alerts: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    spec: &MatrixSpec,
    geom: &Geometry,
    timing: &TimingParams,
    regions_per_bank: u32,
    strat: StrategyKind,
    sched: ScheduleKind,
    mit: MitigatorKind,
    seed: u64,
    refs: u64,
) -> MatrixCell {
    // The rig's Monte-Carlo sweep runs the trials inline (jobs = 1): the
    // matrix already parallelizes at cell granularity, so nesting worker
    // pools would only fight over the same cores.
    let trial_seeds: Vec<u64> = (0..spec.trials)
        .map(|trial| seed.wrapping_mul(1_000).wrapping_add(u64::from(trial)))
        .collect();
    let trials = monte_carlo(&trial_seeds, 1, |trial_seed| {
        let (mut mitigator, cell_bound) = mit.build(&spec.scale, geom, trial_seed);
        // Strategies address rows through the mitigator's own mapping when
        // it exposes one (MIRZA randomizes R2SA), else the plain geometry.
        let mapping = mitigator
            .mapping()
            .copied()
            .unwrap_or_else(|| RowMapping::for_geometry(Default::default(), geom));
        let regions = RegionMap::new(geom.rows_per_bank, regions_per_bank);
        let mut strategy = strat.build(&mapping, &regions, trial_seed);
        let mut schedule = sched.build();
        let strategy_label = strategy.label();
        let schedule_label = schedule.label();
        let targets = strategy.target_rows();
        let report = if targets.is_empty() {
            run_attack(
                mitigator.as_mut(),
                geom,
                timing,
                0,
                strategy.as_mut(),
                schedule.as_mut(),
                &AnyRow,
                cell_bound,
                refs,
            )
        } else {
            run_attack(
                mitigator.as_mut(),
                geom,
                timing,
                0,
                strategy.as_mut(),
                schedule.as_mut(),
                &TargetRows::new(targets),
                cell_bound,
                refs,
            )
        };
        TrialOutcome {
            strategy_label,
            schedule_label,
            bound: report.bound,
            success: report.success,
            max_row_acts: report.max_row_acts,
            total_acts: report.outcome.total_acts,
            alerts: report.outcome.alerts,
        }
    });
    let mut cell = MatrixCell {
        strategy: String::new(),
        schedule: String::new(),
        mitigator: mit.label(),
        seed,
        trials: spec.trials,
        successes: 0,
        max_row_acts: 0,
        bound: 0,
        total_acts: 0,
        alerts: 0,
    };
    for t in trials {
        cell.strategy = t.strategy_label;
        cell.schedule = t.schedule_label;
        cell.bound = t.bound;
        cell.successes += u32::from(t.success);
        cell.max_row_acts = cell.max_row_acts.max(t.max_row_acts);
        cell.total_acts += t.total_acts;
        cell.alerts += t.alerts;
    }
    cell
}

impl MatrixResult {
    /// Serializes the matrix as CSV with the pinned [`CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.4},{},{},{},{}",
                c.strategy,
                c.schedule,
                c.mitigator,
                c.seed,
                c.trials,
                c.successes,
                c.success_prob(),
                c.max_row_acts,
                c.bound,
                c.total_acts,
                c.alerts
            );
        }
        out
    }

    /// Human-readable summary: per (strategy, mitigator), the schedules
    /// that succeeded, worst burden vs bound.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "Attack matrix: {} cells ({} strategies x {} schedules x {} mitigators x {} seeds, {} trials each)\n\
             strategy             schedule      mitigator    p(success)  max row ACTs  bound\n",
            self.cells.len(),
            self.spec.strategies.len(),
            self.spec.schedules.len(),
            self.spec.mitigators.len(),
            self.spec.seeds.len(),
            self.spec.trials,
        );
        // One line per (strategy, schedule, mitigator): pool the seeds.
        let mut i = 0;
        while i < self.cells.len() {
            let group_end = i + self.spec.seeds.len().min(self.cells.len() - i);
            let group = &self.cells[i..group_end];
            let first = &group[0];
            let trials: u32 = group.iter().map(|c| c.trials).sum();
            let successes: u32 = group.iter().map(|c| c.successes).sum();
            let max: u32 = group.iter().map(|c| c.max_row_acts).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<20} {:<13} {:<12} {:>9.2}   {:>12}  {:>5}",
                first.strategy,
                first.schedule,
                first.mitigator,
                f64::from(successes) / f64::from(trials.max(1)),
                max,
                first.bound,
            );
            i = group_end;
        }
        let broken: Vec<&MatrixCell> = self.cells.iter().filter(|c| c.successes > 0).collect();
        let _ = writeln!(
            out,
            "\n{} of {} cells compromised their mitigator",
            broken.len(),
            self.cells.len()
        );
        out
    }

    /// JSON summary for run manifests.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        let cells: Vec<Json> = self.cells.iter().map(MatrixCell::to_json).collect();
        doc.push("scale", self.spec.scale.to_json())
            .push("cells", cells);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        let mut spec = MatrixSpec::for_scale(Scale::smoke());
        spec.strategies = vec![StrategyKind::DoubleSided, StrategyKind::DecoyFlood];
        spec.schedules = vec![ScheduleKind::Burst, ScheduleKind::Paced(4)];
        spec.mitigators = vec![MitigatorKind::Mirza1000, MitigatorKind::Trr];
        spec.seeds = vec![1];
        spec.trials = 1;
        spec.walks = 1;
        spec
    }

    #[test]
    fn matrix_covers_the_roster() {
        let spec = tiny_spec();
        let r = run_matrix(&spec, &Telemetry::disabled());
        assert_eq!(r.cells.len(), spec.cells());
        let csv = r.to_csv();
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 1 + spec.cells());
    }

    #[test]
    fn mirza_holds_where_trr_breaks() {
        let spec = tiny_spec();
        let r = run_matrix(&spec, &Telemetry::disabled());
        let cell = |strategy: &str, mitigator: &str, schedule: &str| {
            r.cells
                .iter()
                .find(|c| {
                    c.strategy.starts_with(strategy)
                        && c.mitigator == mitigator
                        && c.schedule == schedule
                })
                .unwrap()
        };
        assert_eq!(cell("double-sided", "mirza-1000", "burst").successes, 0);
        assert!(
            cell("decoy", "trr", "burst").successes > 0,
            "decoy flood must break sampling TRR: {:?}",
            cell("decoy", "trr", "burst")
        );
    }

    #[test]
    fn default_fast_spec_meets_the_issue_floor() {
        let spec = MatrixSpec::for_scale(Scale::fast());
        assert!(spec.cells() >= 48);
        assert!(spec.strategies.len() >= 4);
        assert!(spec.schedules.len() >= 3);
        assert!(spec.mitigators.len() >= 2);
        assert!(spec.seeds.len() >= 2);
    }

    #[test]
    fn attack_cell_events_are_emitted() {
        let mut spec = tiny_spec();
        spec.strategies = vec![StrategyKind::DoubleSided];
        spec.schedules = vec![ScheduleKind::Burst];
        spec.mitigators = vec![MitigatorKind::Trr];
        let t = Telemetry::enabled();
        let _ = run_matrix(&spec, &t);
        let n = t
            .with_recorder(|r| r.event_counts.get("attack_cell").copied())
            .unwrap();
        assert_eq!(n, Some(spec.cells() as u64));
    }
}
